//! Near-Clifford simulation with the sum-over-Cliffords channel
//! (paper Sec. 4.2): sample a Clifford+T circuit using only stabilizer
//! states, and measure how the sampled distribution's overlap with the
//! ideal one degrades as T gates are added.
//!
//! ```text
//! cargo run --release --example near_clifford
//! ```

use bgls_apps::{empirical_distribution, overlap};
use bgls_circuit::{
    generate_random_circuit, replace_single_qubit_gates, Gate, RandomCircuitParams,
};
use bgls_stabilizer::{near_clifford_simulator, stabilizer_extent_rz};
use bgls_statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn main() {
    let n = 6;
    let samples = 2000u64;
    println!("sum-over-Cliffords on {n}-qubit random circuits, {samples} samples per point");
    println!(
        "stabilizer extent of a single T gate: {:.5}\n",
        stabilizer_extent_rz(PI / 4.0)
    );
    println!("{:>6}  {:>10}", "#T", "overlap");

    let mut rng = StdRng::seed_from_u64(7);
    let base = generate_random_circuit(&RandomCircuitParams::clifford(n, 40), &mut rng);
    for n_t in [0usize, 2, 4, 8, 12, 16] {
        let (circuit, made) = replace_single_qubit_gates(&base, &Gate::T, n_t, &mut rng);
        assert_eq!(made, n_t);
        // ideal Born distribution from the dense simulator
        let ideal = StateVector::from_circuit(&circuit, n)
            .expect("unitary circuit")
            .born_distribution();
        // BGLS sampling purely with stabilizer states: each repetition
        // stochastically explores one of the 2^{n_t} Clifford branches
        let sim = near_clifford_simulator(n).with_seed(n_t as u64);
        let got = sim
            .sample_final_bitstrings(&circuit, samples)
            .expect("sample");
        let ov = overlap(&empirical_distribution(&got, n), &ideal);
        println!("{:>6}  {:>10.4}", n_t, ov);
    }
    println!(
        "\n(overlap decays with the T count — the circuit needs 2^#T stabilizer\n terms, and each sample explores only one branch; cf. paper Fig. 5)"
    );
}

//! Fault drill: the async serving front door under a deterministic
//! fault storm.
//!
//! ```text
//! cargo run --release --example fault_drill
//! ```
//!
//! A worker pool serves a mixed traffic stream while a seeded
//! [`FaultPlan`] injects panics, mid-circuit backend faults, and budget
//! exhaustion into first attempts. The drill demonstrates the serving
//! contract: every ticket resolves — recovered by a retry, re-planned
//! down the degradation ladder, or failed with a typed error — and the
//! workers survive every injected fault. Run it twice: the outcome
//! table is identical, because fault injection is a pure function of
//! `(seed, job, attempt)`.

use bgls_circuit::{Channel, Circuit, Gate, Operation, Qubit};
use bgls_plan::{FaultPlan, ServePolicy, ServiceConfig, ServiceHandle, SimRequest};

fn measured(mut c: Circuit, n: u32) -> Circuit {
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

fn noisy(n: u32) -> Circuit {
    let mut c = ghz(n).without_measurements();
    c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![Qubit(0)]).unwrap());
    measured(c, n)
}

fn t_ladder(n: u32) -> Circuit {
    let mut c = Circuit::new();
    for i in 0..n {
        c.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(i)]).unwrap());
    }
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

fn main() {
    // The storm below injects real panics that the workers catch; keep
    // the default hook from spraying backtraces over the report.
    std::panic::set_hook(Box::new(|info| eprintln!("  [worker caught] {info}")));

    let fault = FaultPlan {
        panic_probability: 0.3,
        backend_failure_probability: 0.25,
        budget_exhaustion_probability: 0.2,
        fail_at_op: 4,
        stop_after_attempts: 2,
        ..FaultPlan::seeded(2023)
    };
    println!("fault plan: {fault:?}\n");

    let handle = ServiceHandle::start(
        ServiceConfig {
            fault: Some(fault),
            ..ServiceConfig::default()
        },
        ServePolicy::default(),
    )
    .expect("start serving pool");

    let classes: Vec<(&str, Circuit)> = vec![
        ("clifford ghz(8)", ghz(8)),
        ("noisy ghz(13)", noisy(13)),
        ("t-ladder(8)", t_ladder(8)),
    ];
    let mut tickets = Vec::new();
    for seed in 0..6u64 {
        for (label, c) in &classes {
            let ticket = handle
                .submit(SimRequest::histogram(c.clone(), 100).with_seed(seed))
                .expect("submit");
            tickets.push((*label, seed, ticket));
        }
    }

    println!("{:24} {:>4}  outcome", "circuit", "seed");
    for (label, seed, ticket) in tickets {
        match handle.wait(ticket) {
            Ok(report) => {
                let how = if report.degraded() {
                    format!(
                        "degraded to {}/{} ({} hops)",
                        report.backend.name(),
                        report.path,
                        report.degradations.len()
                    )
                } else if report.attempts > 1 {
                    format!("recovered on attempt {}", report.attempts)
                } else {
                    "clean".to_string()
                };
                let rewrite = if report.rewrite.ops_after < report.rewrite.ops_before {
                    format!(
                        ", optimized {} -> {} ops",
                        report.rewrite.ops_before, report.rewrite.ops_after
                    )
                } else {
                    String::new()
                };
                let timing = match (report.predicted_ms, report.measured_ms) {
                    (Some(p), Some(m)) => format!(", {p:.2} ms predicted / {m:.2} ms measured"),
                    (None, Some(m)) => format!(", {m:.2} ms measured"),
                    _ => String::new(),
                };
                println!("{label:24} {seed:>4}  ok: {how}{rewrite}{timing}");
            }
            Err(e) => println!("{label:24} {seed:>4}  failed (typed): {e}"),
        }
    }

    let stats = handle.shutdown();
    println!("\nfinal counters: {stats:?}");
    println!(
        "conservation: {} submitted = {} completed + {} failed",
        stats.submitted, stats.completed, stats.failed
    );
    assert_eq!(stats.submitted, stats.completed + stats.failed);
}

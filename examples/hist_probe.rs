//! Determinism probe: prints seeded sampling histograms for the
//! chain-MPS (chi=32) and lazy-network backends. Diff the output across
//! revisions (or across `RAYON_NUM_THREADS` settings) to check that a
//! kernel change left seeded sampling behaviour bit-identical:
//!
//! ```text
//! cargo run --release --example hist_probe > before.txt
//! # ... apply changes ...
//! cargo run --release --example hist_probe | diff before.txt -
//! ```

use bgls_apps::{brickwork_circuit, random_u2_brickwork};
use bgls_core::Simulator;
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(32);
    let chain_circuit = random_u2_brickwork(20, 8, &mut rng);
    let sim = Simulator::new(ChainMps::zero(20, MpsOptions::with_max_bond(32))).with_seed(1);
    let samples = sim.sample_final_bitstrings(&chain_circuit, 200).unwrap();
    let mut hist: std::collections::BTreeMap<String, u64> = Default::default();
    for b in &samples {
        *hist.entry(format!("{b}")).or_insert(0) += 1;
    }
    println!("chain_chi32:");
    for (b, c) in &hist {
        println!("  {b} {c}");
    }

    let mut rng = StdRng::seed_from_u64(9);
    let lazy_circuit = brickwork_circuit(14, 4, &mut rng);
    let sim = Simulator::new(LazyNetworkState::zero(14)).with_seed(2);
    let samples = sim.sample_final_bitstrings(&lazy_circuit, 200).unwrap();
    let mut hist: std::collections::BTreeMap<String, u64> = Default::default();
    for b in &samples {
        *hist.entry(format!("{b}")).or_insert(0) += 1;
    }
    println!("lazy:");
    for (b, c) in &hist {
        println!("  {b} {c}");
    }
}

//! Observable estimation: exact vs grouped-shot expectation of a
//! transverse-field Ising energy across the runtime-selected backends.
//!
//! ```text
//! cargo run --release --example observable_estimation            # all backends
//! cargo run --release --example observable_estimation mps:8 12   # one backend, 12 qubits
//! ```
//!
//! The circuit is a Trotter-style layer of `Rzz` bonds and `Rx` fields
//! (non-Clifford, so the stabilizer backend demonstrates its typed
//! rejection instead); the observable is
//! `H = -J sum Z_i Z_{i+1} - h sum X_i`. For each backend the example
//! prints:
//!
//! * the **exact** energy from `Simulator::expectation_value` — the
//!   per-backend native expectation (amplitude inner product,
//!   density-matrix trace, MPS transfer matrix, doubled-network
//!   contraction), identical across backends to 1e-10;
//! * the **grouped shot estimate** from
//!   `Simulator::estimate_expectation` — the ZZ terms and the X terms
//!   land in two qubit-wise-commuting groups, each measured from one
//!   basis-rotated sampling run, with the standard error reported.

use bgls_apps::{tfim_layer_circuit, transverse_field_ising};
use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{Circuit, PauliSum};
use bgls_core::{Simulator, SimulatorOptions};

fn estimate(kind: BackendKind, n: usize, shots: u64, observable: &PauliSum, circuit: &Circuit) {
    let sim = Simulator::for_backend(kind, n, SimulatorOptions::default()).with_seed(5);
    let start = std::time::Instant::now();
    let exact = match sim.expectation_value(circuit, observable) {
        Ok(e) => e,
        Err(e) => {
            println!("{:>12}  rejected: {e}", kind.name());
            return;
        }
    };
    let t_exact = start.elapsed().as_secs_f64();
    let start = std::time::Instant::now();
    let est = sim
        .estimate_expectation(circuit, observable, shots)
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    let t_shots = start.elapsed().as_secs_f64();
    println!(
        "{:>12}  exact: {exact:+.6} ({t_exact:.3} s)   shots: {:+.4} +- {:.4} \
         ({} groups x {shots} shots, {t_shots:.3} s)",
        kind.name(),
        est.value,
        est.std_error,
        est.num_groups,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shots = 20_000;
    match args.as_slice() {
        [] => {
            let n = 10;
            let h = transverse_field_ising(n, 1.0, 0.6, false);
            let circuit = tfim_layer_circuit(n);
            println!(
                "transverse-field Ising energy on {n} qubits \
                 (J = 1, h = 0.6; exact vs {shots}-shot groups):"
            );
            estimate(BackendKind::StateVector, n, shots, &h, &circuit);
            estimate(BackendKind::DensityMatrix, n, shots, &h, &circuit);
            estimate(BackendKind::ChForm, n, shots, &h, &circuit);
            estimate(BackendKind::ChainMps { chi: None }, n, shots, &h, &circuit);
            estimate(
                BackendKind::ChainMps { chi: Some(8) },
                n,
                shots,
                &h,
                &circuit,
            );
            estimate(BackendKind::LazyNetwork, n, shots, &h, &circuit);
        }
        [kind, rest @ ..] => {
            let kind: BackendKind = kind.parse().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            let n: usize = rest
                .first()
                .map(|s| s.parse().expect("qubit count"))
                .unwrap_or(10);
            let h = transverse_field_ising(n, 1.0, 0.6, false);
            let circuit = tfim_layer_circuit(n);
            println!(
                "transverse-field Ising energy on {n} qubits \
                 (J = 1, h = 0.6; exact vs {shots}-shot groups):"
            );
            estimate(kind, n, shots, &h, &circuit);
        }
    }
}

//! Linear cross-entropy benchmarking of planner-routed sampling.
//!
//! Samples a Haar-random brickwork circuit through whatever backend the
//! planner picks and scores the samples against the exact Born
//! distribution. Deep ideal runs land near `F_XEB = 1` (Porter–Thomas
//! anticoncentration); a trailing depolarizing layer drags the score
//! toward the fully-mixed floor of 0. The noisy row is kept narrower —
//! the planner routes channel circuits with a histogram deliverable to
//! the density matrix, whose evolution cost is O(ops * 4^n).
//!
//! Run with `cargo run --release --example xeb_score`.

use bgls_suite::apps::xeb_experiment;

fn main() {
    const LAYERS: usize = 24;
    const SEED: u64 = 11;

    println!(
        "{:>3} {:>7} {:>6} {:>8} {:>9} {:>14}",
        "n", "layers", "shots", "noise", "F_XEB", "backend"
    );
    for n in [12usize, 14, 16] {
        let ideal = xeb_experiment(n, LAYERS, 2000, SEED, None).expect("ideal run");
        println!(
            "{:>3} {:>7} {:>6} {:>8} {:>9.4} {:>14}",
            n, LAYERS, ideal.shots, "none", ideal.fidelity, ideal.backend
        );
    }
    let noisy = xeb_experiment(10, 8, 400, SEED, Some(0.15)).expect("noisy run");
    println!(
        "{:>3} {:>7} {:>6} {:>8} {:>9.4} {:>14}",
        10, 8, noisy.shots, "p=0.15", noisy.fidelity, noisy.backend
    );
}

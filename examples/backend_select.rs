//! Runtime backend selection: one sampling pipeline, six state
//! representations, chosen by name the way a service front-end or config
//! file would.
//!
//! ```text
//! cargo run --example backend_select                # tour of every backend
//! cargo run --example backend_select chform 40      # one backend, 40 qubits
//! cargo run --example backend_select mps:8 30
//! ```
//!
//! No function in this file names a concrete state type — everything
//! routes through [`BackendKind`] and [`AnyState`], the dispatch layer
//! every future scaling feature (sharding, batching, request routing)
//! builds on.

use bgls_apps::ghz_circuit;
use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{Operation, Qubit};
use bgls_core::{Simulator, SimulatorOptions};

fn sample(kind: BackendKind, n: usize, reps: u64) {
    let mut circuit = ghz_circuit(n);
    circuit.push(Operation::measure(Qubit::range(n), "z").unwrap());
    let start = std::time::Instant::now();
    let result = Simulator::for_backend(kind, n, SimulatorOptions::default())
        .with_seed(11)
        .run(&circuit, reps)
        .unwrap_or_else(|e| panic!("{kind}: {e}"));
    let elapsed = start.elapsed().as_secs_f64();
    let h = result.histogram("z").expect("key z");
    let zeros = h.count_value(0);
    // saturating shift keeps n = 64 well-defined
    let all_mask = u64::MAX >> (64 - n.min(64) as u32);
    let ones = h.count_value(all_mask);
    let other = reps - zeros - ones;
    println!(
        "{:>12}  n = {n:>2}  |0..0>: {zeros:>5}  |1..1>: {ones:>5}  other: {other:>5}  ({elapsed:.3} s)",
        kind.name()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps = 2000;
    match args.as_slice() {
        [] => {
            // the GHZ ladder is Clifford, so every backend handles it;
            // widths are chosen per backend cost model
            println!("GHZ sampling across every runtime-selected backend ({reps} reps):");
            sample(BackendKind::StateVector, 16, reps);
            sample(BackendKind::DensityMatrix, 8, reps);
            sample(BackendKind::ChForm, 48, reps);
            sample(BackendKind::ChainMps { chi: None }, 24, reps);
            sample(BackendKind::ChainMps { chi: Some(8) }, 24, reps);
            sample(BackendKind::LazyNetwork, 24, reps);
        }
        [kind, rest @ ..] => {
            let kind: BackendKind = kind.parse().unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2);
            });
            let n: usize = rest
                .first()
                .map(|s| {
                    s.parse().unwrap_or_else(|_| {
                        eprintln!("error: qubit count must be a positive integer, got '{s}'");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(16);
            sample(kind, n, reps);
        }
    }
}

//! Repetition-code QEC memory experiment on the tableau backend.
//!
//! Sweeps code distance and physical error rate, printing the
//! Monte-Carlo logical error rate after 10 syndrome-extraction cycles.
//! The distance-51 row is a 101-qubit experiment — far past any dense
//! backend, routine for the stabilizer tableau.
//!
//! Run with `cargo run --release --example qec_cycle`.

use bgls_suite::apps::{logical_error_rate, run_memory_tableau, RepetitionCode};

fn main() {
    const CYCLES: usize = 10;
    const TRIALS: u64 = 200;

    println!("repetition-code memory, {CYCLES} cycles, {TRIALS} trials per cell");
    println!(
        "{:>4} {:>7} {:>10} {:>10} {:>10}",
        "d", "qubits", "p=0.01", "p=0.03", "p=0.10"
    );
    for d in [3usize, 5, 9, 15, 21] {
        let code = RepetitionCode::new(d, CYCLES);
        let rates: Vec<f64> = [0.01, 0.03, 0.10]
            .iter()
            .map(|&p| logical_error_rate(&code, p, TRIALS, 0xC0DE).expect("tableau run"))
            .collect();
        println!(
            "{:>4} {:>7} {:>10.4} {:>10.4} {:>10.4}",
            d,
            code.n_qubits(),
            rates[0],
            rates[1],
            rates[2]
        );
    }

    let wide = RepetitionCode::new(51, CYCLES);
    let outcome = run_memory_tableau(&wide, 0.02, 7).expect("101-qubit run");
    println!(
        "\nd=51 ({} qubits): syndrome digest {:016x}, decoded flip: {}",
        wide.n_qubits(),
        outcome.digest(),
        wide.decode_logical_flip(&outcome.data)
    );
}

//! The batch simulation service on a mixed traffic stream: planner
//! routing, request merging, the PI batch controller, and the
//! deterministic result cache.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```
//!
//! The traffic mix covers four circuit classes (Clifford GHZ, noisy,
//! mid-circuit-measured Clifford, and a T-dusted chain) plus an
//! expectation grid, with a hot-circuit skew: most requests repeat a
//! handful of seeds, which the cache answers bit-identically without
//! re-simulating.

use bgls_circuit::{Channel, Circuit, Gate, Operation, Param, ParamResolver, PauliSum, Qubit};
use bgls_plan::{plan, Deliverable, PlannerConfig, SimRequest, SimulationService};

fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

fn noisy(n: u32) -> Circuit {
    let mut c = ghz(n).without_measurements();
    for i in 0..n {
        c.push(Operation::channel(Channel::bit_flip(0.02).unwrap(), vec![Qubit(i)]).unwrap());
    }
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

fn mid_circuit(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "early").unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "late").unwrap());
    c
}

fn t_chain(n: u32) -> Circuit {
    let mut c = Circuit::new();
    for i in 0..n {
        c.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
    }
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

fn main() {
    let circuits: Vec<(&str, Circuit)> = vec![
        ("clifford ghz(10)", ghz(10)),
        ("noisy ghz(6)", noisy(6)),
        ("mid-circuit clifford(8)", mid_circuit(8)),
        ("t-dusted chain(30)", t_chain(30)),
    ];

    println!("routing table (post-optimization):");
    for (label, c) in &circuits {
        let p = plan(
            c,
            &Deliverable::Histogram { repetitions: 100 },
            &PlannerConfig::default(),
        )
        .unwrap();
        let passes = p.rewrite.passes_applied();
        println!(
            "  {label:24} -> {:12} / {:16} {} -> {} ops ({})",
            p.backend.name(),
            p.path.to_string(),
            p.rewrite.ops_before,
            p.rewrite.ops_after,
            if passes.is_empty() {
                "no rewrites".to_string()
            } else {
                passes.join(", ")
            }
        );
    }

    let mut svc = SimulationService::with_defaults();
    let mut ids = Vec::new();

    // Hot-circuit skew: 10 rounds over 3 hot seeds per circuit class.
    for round in 0..10u64 {
        for (_, c) in &circuits {
            ids.push(
                svc.submit(SimRequest::histogram(c.clone(), 200).with_seed(round % 3))
                    .unwrap(),
            );
        }
    }

    // An expectation grid on a parameterized rotation, submitted twice
    // (the second pass is pure cache).
    let mut rot = Circuit::new();
    rot.push(Operation::gate(Gate::Ry(Param::symbol("theta")), vec![Qubit(0)]).unwrap());
    let obs: PauliSum = "Z0".parse().unwrap();
    for _ in 0..2 {
        for k in 0..8 {
            let mut r = ParamResolver::new();
            r.bind("theta", 0.25 * k as f64);
            ids.push(
                svc.submit(SimRequest::expectation(rot.clone(), obs.clone()).with_resolver(r))
                    .unwrap(),
            );
        }
    }

    let completed = svc.run_all();
    let stats = svc.stats();
    let cache = svc.cache_stats();
    println!("\nserved {completed} jobs in {} batches", stats.batches);
    println!(
        "  simulated {} distinct jobs; {} rode along in merged fan-outs",
        stats.simulated_jobs, stats.merged_jobs
    );
    println!(
        "  cache: {} hits / {} misses (hit rate {:.0}%)",
        cache.hits,
        cache.misses,
        100.0 * cache.hit_rate()
    );
    println!("  controller settled on batch size {}", svc.batch_size());
    println!(
        "  failures: {} retries, {} degradations, {} panics caught, {} deadline misses, {} cancellations",
        stats.retries,
        stats.degradations,
        stats.panics_caught,
        stats.deadline_misses,
        stats.cancellations
    );

    // Spot-check one result per class, with the optimizer's rewrite
    // deltas and the calibrated cost model's prediction error.
    println!("\nper-class reports (rewrites + cost calibration):");
    for (i, (label, _)) in circuits.iter().enumerate() {
        if let Some(Ok(out)) = svc.take_result(ids[i]) {
            let hist = out.histogram().unwrap();
            let key = hist.keys()[0].to_string();
            let timing = match (out.predicted_ms, out.measured_ms) {
                (Some(p), Some(m)) => format!("predicted {p:.3} ms / measured {m:.3} ms"),
                (None, Some(m)) => format!("measured {m:.3} ms (model warming up)"),
                _ => "served from cache".to_string(),
            };
            println!(
                "  {label:24} histogram[{key}] total {:5}  rewrite {} -> {} ops  {timing}",
                hist.histogram(&key).unwrap().total(),
                out.rewrite.ops_before,
                out.rewrite.ops_after,
            );
        }
    }
}

//! QAOA for MaxCut on a sparse random graph, sampled with BGLS over a
//! runtime-selected backend — by default the paper's chi-capped chain
//! MPS (Sec. 4.4 / Figs. 8-9).
//!
//! ```text
//! cargo run --release --example mps_qaoa            # mps:16, the paper setup
//! cargo run --release --example mps_qaoa statevector
//! cargo run --release --example mps_qaoa mps:4      # tighter bond cap
//! ```
//!
//! Pipeline: Erdos-Renyi G(10, 0.3) -> 1-layer QAOA circuit -> sweep a
//! (gamma, beta) grid sampling 100 bitstrings per point -> rerun the best
//! parameters with more samples -> report the best-cut partition, checked
//! against brute force.

use bgls_apps::{brute_force_maxcut, cut_value, solve_maxcut_qaoa, BackendKind, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // the backend is a runtime value: CLI arg, default = the paper's
    // chi-capped chain MPS
    let backend: BackendKind = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mps:16".to_string())
        .parse()
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
    println!("backend: {backend}");

    let mut rng = StdRng::seed_from_u64(2023);
    let graph = Graph::erdos_renyi(10, 0.3, &mut rng);
    println!(
        "graph G(10, 0.3): {} edges {:?}",
        graph.num_edges(),
        graph.edges()
    );

    let sol = solve_maxcut_qaoa(&graph, backend, 8, 100, 1000, 5).expect("qaoa");

    println!(
        "\nsweep over {} (gamma, beta) points:",
        sol.sweep.sweep.len()
    );
    let mut best_rows: Vec<&(f64, f64, f64)> = sol.sweep.sweep.iter().collect();
    best_rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("  {:>8} {:>8} {:>10}", "gamma", "beta", "mean cut");
    for (g, b, m) in best_rows.iter().take(5) {
        println!("  {g:>8.3} {b:>8.3} {m:>10.3}");
    }

    let (opt_bits, opt_cut) = brute_force_maxcut(&graph);
    println!(
        "\nQAOA solution: partition {} with cut {}",
        sol.partition, sol.cut
    );
    println!("brute force:   partition {} with cut {}", opt_bits, opt_cut);
    assert_eq!(cut_value(&graph, sol.partition), sol.cut);
    println!(
        "\nvertex sides: {:?}",
        (0..graph.num_vertices())
            .map(|v| sol.partition.get(v) as u8)
            .collect::<Vec<_>>()
    );
}

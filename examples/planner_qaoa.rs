//! Planner-driven QAOA: solve MaxCut without naming a backend — the
//! execution planner profiles the bound circuit and routes it.
//!
//! ```text
//! cargo run --release --example planner_qaoa
//! ```

use bgls_apps::{brute_force_maxcut, solve_maxcut_qaoa_auto, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let graph = Graph::erdos_renyi(8, 0.35, &mut rng);
    let (_, optimal) = brute_force_maxcut(&graph);
    println!(
        "MaxCut on G(n = {}, |E| = {}): optimal cut {optimal}",
        graph.num_vertices(),
        graph.num_edges()
    );

    let (solution, plan) = solve_maxcut_qaoa_auto(&graph, 6, 100, 500, 7).expect("qaoa");
    println!(
        "planner routed to  : {} / {}",
        plan.backend.name(),
        plan.path
    );
    println!("rationale          : {}", plan.rationale);
    println!(
        "profile            : {} qubits, {} ops, clifford fraction {:.2}, chi bound {}",
        plan.profile.num_qubits,
        plan.profile.num_operations,
        plan.profile.clifford_fraction(),
        plan.profile.chi_bound()
    );
    println!(
        "best (gamma, beta) : ({:.3}, {:.3}) with mean cut {:.3}",
        solution.sweep.best_params.0, solution.sweep.best_params.1, solution.sweep.best_mean_cut
    );
    println!(
        "best sampled cut   : {} / {optimal} (bitstring {:?})",
        solution.cut, solution.partition
    );
}

//! Noisy simulation via quantum trajectories (paper Sec. 3.2.1): a GHZ
//! circuit with bit-flip noise after every gate, sampled two ways —
//! trajectories on a pure state vector, and exact channel evolution on a
//! density matrix — which must agree statistically.
//!
//! ```text
//! cargo run --release --example noisy_trajectories
//! ```

use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{Channel, Circuit, Gate, Operation, Qubit};
use bgls_core::{BitString, Simulator, SimulatorOptions};

fn noisy_ghz(n: usize, p: f64) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::channel(Channel::bit_flip(p).unwrap(), vec![Qubit(0)]).unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).unwrap());
        c.push(Operation::channel(Channel::bit_flip(p).unwrap(), vec![Qubit(i as u32)]).unwrap());
    }
    c.push(Operation::measure(Qubit::range(n), "z").unwrap());
    c
}

fn main() {
    let n = 4;
    let p = 0.05;
    let reps = 20_000u64;
    let circuit = noisy_ghz(n, p);
    println!("GHZ({n}) with bit-flip(p = {p}) after every gate, {reps} repetitions\n");

    // Path 1: quantum trajectories on the pure state (each repetition
    // samples one Kraus branch per channel; BGLS reruns per sample).
    // Path 2: exact density-matrix evolution (channels are deterministic,
    // so the sample-parallelized path still applies). Both are the same
    // code — only the runtime BackendKind differs.
    let run_on = |kind: BackendKind, seed: u64| {
        Simulator::for_backend(kind, n, SimulatorOptions::default())
            .with_seed(seed)
            .run(&circuit, reps)
            .unwrap_or_else(|e| panic!("{kind}: {e}"))
    };
    let r_traj = run_on(BackendKind::StateVector, 1);
    let r_exact = run_on(BackendKind::DensityMatrix, 2);

    let ht = r_traj.histogram("z").unwrap();
    let he = r_exact.histogram("z").unwrap();
    println!(
        "{:>8} {:>14} {:>14}",
        "outcome", "trajectories", "density-mat"
    );
    for x in 0..1u64 << n {
        let b = BitString::from_u64(n, x);
        let ft = ht.frequency(b);
        let fe = he.frequency(b);
        if ft > 0.004 || fe > 0.004 {
            println!("{:>8} {:>14.4} {:>14.4}", format!("{b}"), ft, fe);
        }
    }
    let f_traj =
        ht.frequency(BitString::zeros(n)) + ht.frequency(BitString::from_u64(n, (1 << n) - 1));
    let f_exact =
        he.frequency(BitString::zeros(n)) + he.frequency(BitString::from_u64(n, (1 << n) - 1));
    println!("\nGHZ-outcome mass: trajectories {f_traj:.4} vs exact {f_exact:.4}");
    assert!(
        (f_traj - f_exact).abs() < 0.02,
        "the two noise treatments must agree"
    );
}

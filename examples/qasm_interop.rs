//! Using BGLS with non-native circuits via OpenQASM (paper Sec. 3.2.4):
//! parse a hand-written QASM 2.0 program, sample it gate-by-gate, and
//! export a circuit back to QASM.
//!
//! ```text
//! cargo run --example qasm_interop
//! ```

use bgls_circuit::{from_qasm, optimize_for_bgls, to_qasm};
use bgls_core::Simulator;
use bgls_statevector::StateVector;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
// a W-ish state preparation with rotations and entanglers
ry(1.9106332362490186) q[0];   // 2*acos(1/sqrt(3))
h q[1];
cx q[0], q[1];
rz(pi/4) q[1];
cx q[1], q[2];
t q[2];
h q[2];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
"#;

fn main() {
    let circuit = from_qasm(PROGRAM).expect("parse QASM");
    println!(
        "parsed {} operations over {} qubits ({} moments)",
        circuit.num_operations(),
        circuit.num_qubits(),
        circuit.depth()
    );

    let sim = Simulator::new(StateVector::zero(3)).with_seed(9);
    let result = sim.run(&circuit, 4000).expect("run");
    let h = result.histogram("c").expect("creg c");
    println!("\nsampled distribution (4000 shots):");
    for (bits, count) in h.iter_sorted() {
        println!("  {bits}: {count:>5}  ({:.3})", count as f64 / 4000.0);
    }

    // round-trip: optimize for BGLS, re-export what stays expressible
    let stripped = circuit.without_measurements();
    let merged = optimize_for_bgls(&stripped);
    println!(
        "\noptimize_for_bgls: {} ops -> {} ops",
        stripped.num_operations(),
        merged.num_operations()
    );
    let qasm = to_qasm(&stripped).expect("export");
    println!("\nre-exported QASM:\n{qasm}");
}

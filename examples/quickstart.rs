//! Quickstart: the paper's Sec. 3.1 example — sample a GHZ circuit with
//! the gate-by-gate (BGLS) simulator on a dense state vector.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This is the Rust rendering of the paper's Python snippet: build the
//! circuit, construct a `Simulator` from an initial state + apply hook +
//! probability hook, run with repetitions, print the histogram (Fig. 1).

use bgls_circuit::{Circuit, Gate, Operation, Qubit};
use bgls_core::{ApplyFn, ProbFn, Simulator};
use bgls_statevector::{compute_probability_state_vector, StateVector};
use std::sync::Arc;

fn main() {
    let nqubits = 2;
    let qubits = Qubit::range(nqubits);

    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![qubits[0]]).unwrap());
    circuit.push(Operation::gate(Gate::Cnot, vec![qubits[0], qubits[1]]).unwrap());
    circuit.push(Operation::measure(qubits.clone(), "z").unwrap());

    // The paper's three-ingredient constructor: initial_state, apply_op,
    // compute_probability. (Simulator::new(state) wires the same defaults
    // in one call.)
    let apply_op: ApplyFn<StateVector> = Arc::new(|state, op, rng| {
        // default dispatch: gates + channels via the BglsState trait
        use bgls_circuit::OpKind;
        use bgls_core::BglsState;
        match &op.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_gate(g, &qs)
            }
            OpKind::Channel(c) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_kraus(c, &qs, rng).map(|_| ())
            }
            OpKind::Measure { .. } => Ok(()),
        }
    });
    let compute_probability: ProbFn<StateVector> = Arc::new(compute_probability_state_vector);

    let simulator = Simulator::with_hooks(
        StateVector::zero(nqubits),
        apply_op,
        compute_probability,
        false,
    );

    let results = simulator.run(&circuit, 1000).expect("run");
    let histogram = results.histogram("z").expect("key z");
    println!("GHZ measurement histogram (1000 repetitions):");
    for (bits, count) in histogram.iter_sorted() {
        let bar = "#".repeat((count / 16) as usize);
        println!("  |{bits}>  {count:>5}  {bar}");
    }
    println!(
        "\n(only |00> and |11> appear: the gate-by-gate sampler reproduces\n the GHZ correlations without ever computing a marginal)"
    );
}

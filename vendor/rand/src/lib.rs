//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! provides exactly the API subset the workspace uses — `RngCore`,
//! `SeedableRng`, `Rng` (`gen`, `gen_bool`, `gen_range`), `rngs::StdRng`
//! and `seq::SliceRandom` — with compatible signatures, backed by a
//! from-scratch xoshiro256++ generator. Swap this directory for the real
//! crate by deleting `vendor/` and pointing `[workspace.dependencies]`
//! back at the registry; no call site changes are needed.
//!
//! Note: `StdRng` here is *not* bit-compatible with upstream `rand`'s
//! ChaCha-based `StdRng`. Seeded runs are reproducible within this
//! workspace but produce different (equally valid) sample streams.

#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from best-effort environmental entropy
    /// (wall-clock time, a process-wide counter, and ASLR noise — the
    /// container exposes no OS randomness source to this shim).
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let count = COUNTER.fetch_add(1, Ordering::Relaxed);
        let stack_addr = &COUNTER as *const _ as u64;
        Self::seed_from_u64(nanos ^ count.rotate_left(32) ^ stack_addr)
    }
}

/// Types samplable uniformly from raw generator output (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection for unbiased bounded integers
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] (including trait objects).
pub trait Rng: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, full-range integers,
    /// fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        f64::sample(self) < p
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded via SplitMix64. Fast, 256-bit state, passes BigCrush;
    /// not a cryptographic generator (neither use in this codebase needs
    /// one).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    /// Stand-in for `rand::rngs::OsRng`: a unit generator drawing from a
    /// lazily seeded process-global stream (the container exposes no OS
    /// randomness source to this shim). Not cryptographically secure.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u64(&mut self) -> u64 {
            use std::sync::Mutex;
            use std::sync::OnceLock;
            static STREAM: OnceLock<Mutex<StdRng>> = OnceLock::new();
            let stream = STREAM.get_or_init(|| Mutex::new(StdRng::from_entropy()));
            stream.lock().expect("entropy stream poisoned").next_u64()
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 50_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation_and_choose_in_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        let pick = *v.choose(&mut rng).unwrap();
        assert!(pick < 50);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rngcore_supports_gen() {
        let mut rng = StdRng::seed_from_u64(1);
        let dy: &mut dyn RngCore = &mut rng;
        let x = dy.gen::<f64>();
        assert!((0.0..1.0).contains(&x));
        let b = dy.gen::<bool>();
        let _ = b;
    }
}

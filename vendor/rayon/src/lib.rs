//! Offline stand-in for the `rayon` crate.
//!
//! Implements the parallel-iterator subset this workspace uses
//! (`into_par_iter`, `par_iter`, `par_iter_mut`, `par_chunks_mut`, `map`,
//! `for_each`, `sum`, `collect`, `try_reduce`) on top of `std::thread`
//! scoped threads with static work partitioning. Items are materialized
//! up front and split into one contiguous block per worker, which
//! preserves ordering guarantees for `collect`.
//!
//! Not a work-stealing scheduler — long-tail imbalance is possible — but
//! the call sites here (per-trajectory simulation, state-vector kernels)
//! have near-uniform item cost. Set `RAYON_NUM_THREADS=1` to force
//! sequential execution.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Glob-importable entry points, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads: `RAYON_NUM_THREADS` when set, else the
/// available parallelism.
pub fn current_num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Evaluates `f` over `items` across threads, preserving input order in
/// the output.
fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk_len {
        let tail = rest.split_off(rest.len() - chunk_len);
        blocks.push(tail);
    }
    blocks.push(rest);
    blocks.reverse(); // split_off peeled from the back; restore order

    let f = &f;
    let results: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| s.spawn(move || block.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// A materialized "parallel" iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (evaluated in parallel at the terminal
    /// operation).
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, U, F> {
        ParMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }

    /// Sums the items in parallel.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S
    where
        T: Send,
    {
        self.items.into_iter().sum()
    }
}

/// A mapped parallel iterator: the deferred `map` stage.
pub struct ParMap<T, U, F> {
    items: Vec<T>,
    f: F,
    _out: std::marker::PhantomData<fn() -> U>,
}

impl<T, U, F> ParMap<T, U, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Evaluates the map in parallel and collects in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }

    /// Evaluates the map in parallel and sums the results.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        parallel_map(self.items, self.f).into_iter().sum()
    }

    /// Runs the mapped function for its side effects.
    pub fn for_each(self, g: impl Fn(U) + Sync) {
        let f = self.f;
        parallel_map(self.items, move |t| g(f(t)));
    }
}

impl<T, A, E, F> ParMap<T, Result<A, E>, F>
where
    T: Send,
    A: Send,
    E: Send,
    F: Fn(T) -> Result<A, E> + Sync,
{
    /// Fallible reduction mirroring rayon's `try_reduce`: computes all
    /// items, then folds the `Ok` values with `op`, short-circuiting on
    /// the first `Err`.
    pub fn try_reduce<ID, OP>(self, identity: ID, op: OP) -> Result<A, E>
    where
        ID: Fn() -> A + Sync,
        OP: Fn(A, A) -> Result<A, E> + Sync,
    {
        let results = parallel_map(self.items, self.f);
        let mut acc = identity();
        for r in results {
            acc = op(acc, r?)?;
        }
        Ok(acc)
    }
}

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize, i32, i64);

macro_rules! impl_range_inclusive_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::RangeInclusive<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_range_inclusive_par!(u32, u64, usize, i32, i64);

/// Parallel views over shared slices (`rayon::slice::ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over chunks of at most `size` items.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        assert!(size >= 1);
        ParIter {
            items: self.chunks(size).collect(),
        }
    }
}

/// Parallel views over mutable slices (`rayon::slice::ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    /// Parallel iterator over mutable chunks of at most `size` items.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        assert!(size >= 1);
        ParIter {
            items: self.chunks_mut(size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits() {
        let ok: Result<Vec<u64>, String> = (0u64..100).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = (0u64..100)
            .into_par_iter()
            .map(|x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn par_chunks_mut_touches_everything() {
        let mut v = vec![1i64; 10_000];
        v.par_chunks_mut(64).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn par_iter_map_sum() {
        let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s: f64 = v.par_iter().map(|x| x * 2.0).sum();
        assert_eq!(s, 999.0 * 1000.0);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let mut v = vec![3u32; 500];
        v.par_iter_mut().for_each(|x| *x *= 2);
        assert!(v.iter().all(|&x| x == 6));
    }

    #[test]
    fn try_reduce_merges_and_propagates_errors() {
        let sum = (1u64..=100)
            .into_par_iter()
            .map(Ok::<u64, String>)
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(sum.unwrap(), 5050);
        let err = (1u64..=100)
            .into_par_iter()
            .map(|x| {
                if x == 7 {
                    Err("seven".to_string())
                } else {
                    Ok(x)
                }
            })
            .try_reduce(|| 0, |a, b| Ok(a + b));
        assert_eq!(err.unwrap_err(), "seven");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's tests use: the `proptest!` macro
//! with `name(arg in range, ...)` signatures, `#![proptest_config(...)]`
//! with [`ProptestConfig::with_cases`], and `prop_assert!` /
//! `prop_assert_eq!`. Inputs are drawn from the range strategies with a
//! deterministic per-test RNG (seeded from the test name), so failures
//! reproduce exactly across runs and machines. No shrinking: the failing
//! case's inputs are printed instead.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

pub mod prelude {
    //! Glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property within a test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Value-generation strategies. Only half-open integer ranges are needed
/// by this workspace.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Runs `cases` deterministic cases of a property, panicking with the
/// case inputs on the first failure. Used by the `proptest!` expansion.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
{
    // Deterministic seed from the test name (FNV-1a) so each test gets
    // its own reproducible stream.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for case_idx in 0..config.cases {
        let (inputs, outcome) = case(&mut rng);
        if let Err(e) = outcome {
            panic!(
                "proptest case {case_idx}/{} failed for {test_name}({inputs}): {}",
                config.cases, e.message
            );
        }
    }
}

/// The property-test macro, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::pick(&($strategy), __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, "),+),
                        $(&$arg),+
                    );
                    let __proptest_outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (__proptest_inputs, __proptest_outcome)
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}: {:?} == {:?}", format!($($fmt)*), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u64..100, b in 3usize..7) {
            prop_assert!(a < 100, "a = {a}");
            prop_assert!((3..7).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, b + 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in -5i64..5) {
            prop_assert!((-5..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        let config = ProptestConfig::with_cases(10);
        crate::run_cases(&config, "demo", |rng| {
            let v: u64 = crate::Strategy::pick(&(0u64..10), rng);
            (
                format!("v = {v}"),
                Err(crate::TestCaseError::fail("always fails")),
            )
        });
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Supports the macro/API surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `sample_size`) and reports the median wall-clock time per iteration.
//! No statistical analysis, plots, or HTML reports — just numbers on
//! stdout, which is what an offline CI can consume.
//!
//! Like real criterion, `cargo bench -- --test` runs every benchmark
//! routine exactly once without timing — a smoke mode CI uses so bench
//! code cannot rot without failing the pipeline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// True when the bench binary was invoked with `--test` (criterion's
/// smoke mode): routines run once, nothing is timed.
fn test_mode() -> bool {
    use std::sync::OnceLock;
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode() {
        let mut b = Bencher {
            samples: 0,
            times: Vec::new(),
        };
        f(&mut b);
        println!("  {label}: ok (test mode, 1 run, untimed)");
        return;
    }
    let mut b = Bencher {
        samples,
        times: Vec::new(),
    };
    f(&mut b);
    let mut times = b.times;
    if times.is_empty() {
        println!("  {label}: no measurements");
        return;
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];
    println!(
        "  {label}: median {:.3} ms over {} samples",
        median * 1e3,
        times.len()
    );
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    samples: usize,
    times: Vec<f64>,
}

impl Bencher {
    /// Runs `routine` once as warmup, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed().as_secs_f64());
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion helper so group methods accept both `&str` and
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Produces the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        for &n in &[4u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>());
            });
        }
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}

//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Binomial`] distribution (the only one this workspace
//! uses — it drives the chained-binomial multinomial split in
//! `bgls_core::multinomial_split`). Sampling strategy:
//!
//! * small expected count (`n·min(p,1-p) <= 30`): exact CDF inversion via
//!   the pmf recurrence;
//! * tiny `n` (`<= 64`): exact Bernoulli counting;
//! * otherwise: normal approximation with continuity correction, clamped
//!   to `[0, n]` — indistinguishable from exact at the `n·p·q >~ 15`
//!   scales where it is used.

#![warn(missing_docs)]

use rand::{Rng, RngCore};

/// A distribution over values of type `T`, sampled with any RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinomialError {
    /// `p` was outside `[0, 1]` or not finite.
    ProbabilityOutOfRange,
}

impl std::fmt::Display for BinomialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "binomial probability must lie in [0, 1]")
    }
}

impl std::error::Error for BinomialError {}

/// The binomial distribution `Bin(n, p)`.
#[derive(Clone, Copy, Debug)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Constructs `Bin(n, p)`; fails when `p` is not a probability.
    pub fn new(n: u64, p: f64) -> Result<Self, BinomialError> {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(BinomialError::ProbabilityOutOfRange);
        }
        Ok(Binomial { n, p })
    }
}

impl Distribution<u64> for Binomial {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Work with q = min(p, 1-p) and flip the result back if needed.
        let flipped = p > 0.5;
        let q = if flipped { 1.0 - p } else { p };
        let mean = n as f64 * q;

        let k = if n <= 64 {
            (0..n).filter(|_| rng.gen_bool(q)).count() as u64
        } else if mean <= 30.0 {
            sample_inversion(n, q, rng)
        } else {
            sample_normal_approx(n, q, rng)
        };
        if flipped {
            n - k
        } else {
            k
        }
    }
}

/// Exact CDF inversion: walk `P(X = k)` upward from `k = 0` using the
/// recurrence `p_{k+1} = p_k · (n-k)/(k+1) · q/(1-q)`. Safe because the
/// caller guarantees `n·q <= 30`, so `(1-q)^n >= e^{-31}` never
/// underflows.
fn sample_inversion<R: RngCore + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    let ratio = q / (1.0 - q);
    let mut pmf = ((1.0 - q).ln() * n as f64).exp();
    if pmf == 0.0 {
        // extreme underflow fallback (not reachable under the <= 30 mean
        // contract, kept for safety)
        return sample_normal_approx(n, q, rng);
    }
    let mut u: f64 = rng.gen::<f64>();
    let mut k = 0u64;
    loop {
        if u < pmf || k == n {
            return k;
        }
        u -= pmf;
        pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
        k += 1;
    }
}

/// Normal approximation with continuity correction, clamped to `[0, n]`.
fn sample_normal_approx<R: RngCore + ?Sized>(n: u64, q: f64, rng: &mut R) -> u64 {
    let mean = n as f64 * q;
    let sd = (n as f64 * q * (1.0 - q)).sqrt();
    // Box–Muller
    let u1: f64 = loop {
        let u = rng.gen::<f64>();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let k = (mean + sd * z + 0.5).floor();
    k.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_probability() {
        assert!(Binomial::new(10, -0.1).is_err());
        assert!(Binomial::new(10, 1.1).is_err());
        assert!(Binomial::new(10, f64::NAN).is_err());
    }

    #[test]
    fn degenerate_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(9, 1.0).unwrap().sample(&mut rng), 9);
    }

    fn check_moments(n: u64, p: f64, draws: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = Binomial::new(n, p).unwrap();
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..draws {
            let k = d.sample(&mut rng);
            assert!(k <= n);
            sum += k as f64;
            sum2 += (k as f64) * (k as f64);
        }
        let mean = sum / draws as f64;
        let var = sum2 / draws as f64 - mean * mean;
        let true_mean = n as f64 * p;
        let true_var = n as f64 * p * (1.0 - p);
        let mean_tol = 5.0 * (true_var / draws as f64).sqrt().max(1e-9) + 0.6;
        assert!(
            (mean - true_mean).abs() < mean_tol,
            "n={n} p={p}: mean {mean} vs {true_mean}"
        );
        assert!(
            (var - true_var).abs() < 0.15 * true_var + 1.0,
            "n={n} p={p}: var {var} vs {true_var}"
        );
    }

    #[test]
    fn bernoulli_counting_regime() {
        check_moments(40, 0.3, 20_000, 1);
    }

    #[test]
    fn inversion_regime() {
        // n large, mean small -> CDF inversion
        check_moments(10_000, 0.001, 20_000, 2);
    }

    #[test]
    fn normal_approx_regime() {
        check_moments(100_000, 0.25, 20_000, 3);
        check_moments(1_000, 0.5, 20_000, 4);
    }

    #[test]
    fn flipped_high_p_regime() {
        check_moments(10_000, 0.999, 20_000, 5);
    }
}

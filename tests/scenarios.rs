//! Scenario-zoo integration tests: the repetition-code QEC memory
//! experiment (stabilizer backends at 100+ qubits) and linear-XEB
//! scoring of planner-routed random-circuit sampling (12+ qubits
//! against an exact Born reference). Each scenario also ships as an
//! example (`examples/qec_cycle.rs`, `examples/xeb_score.rs`); the
//! assertions here pin the physics the examples print.

use bgls_suite::apps::{
    chi_squared_fits, logical_error_rate, run_memory, run_memory_tableau, syndrome_digest,
    xeb_experiment, RepetitionCode,
};
use bgls_suite::BackendKind;

const CYCLES: usize = 10;

/// Larger distance suppresses the logical error rate at fixed physical
/// error rate (the whole point of a code), and a hotter channel raises
/// it at fixed distance.
#[test]
fn logical_error_rate_orders_by_distance_and_by_physical_rate() {
    const TRIALS: u64 = 150;
    let rate = |d: usize, p: f64| {
        logical_error_rate(&RepetitionCode::new(d, CYCLES), p, TRIALS, 0xC0DE).unwrap()
    };

    let by_distance: Vec<f64> = [3usize, 11, 21].iter().map(|&d| rate(d, 0.03)).collect();
    assert!(
        by_distance[0] > by_distance[1] && by_distance[1] >= by_distance[2],
        "rate must fall with distance: {by_distance:?}"
    );
    assert!(
        by_distance[0] > 0.0,
        "d=3 at p=0.03 over {TRIALS} trials must see logical flips"
    );

    let by_noise: Vec<f64> = [0.01, 0.05, 0.20].iter().map(|&p| rate(5, p)).collect();
    assert!(
        by_noise[0] < by_noise[1] && by_noise[1] < by_noise[2],
        "rate must rise with physical error rate: {by_noise:?}"
    );
}

/// Error injection is compiled into the circuit, so syndromes are
/// deterministic: the same seed produces bit-identical syndrome records
/// run-over-run and backend-over-backend.
#[test]
fn syndromes_are_deterministic_across_runs_and_backends() {
    let code = RepetitionCode::new(5, CYCLES);
    for seed in [1u64, 2, 3] {
        let a = run_memory(&code, 0.08, seed, BackendKind::Tableau).unwrap();
        let b = run_memory(&code, 0.08, seed, BackendKind::Tableau).unwrap();
        let sv = run_memory(&code, 0.08, seed, BackendKind::StateVector).unwrap();
        assert_eq!(
            syndrome_digest(&code, &a),
            syndrome_digest(&code, &b),
            "seed {seed}: tableau re-run drifted"
        );
        assert_eq!(
            syndrome_digest(&code, &a),
            syndrome_digest(&code, &sv),
            "seed {seed}: tableau and state vector disagree on syndromes"
        );
        for cycle in 0..CYCLES {
            let hist = a
                .histogram(&RepetitionCode::syndrome_key(cycle))
                .expect("syndrome recorded");
            assert_eq!(
                hist.support_size(),
                1,
                "seed {seed} cycle {cycle}: compiled errors mean one deterministic syndrome"
            );
        }
    }
}

/// The 100+-qubit scale claim: a distance-51 memory (101 qubits) runs
/// on the raw tableau driver, decodes, and reproduces its syndromes.
#[test]
fn distance_51_memory_runs_on_the_tableau_at_101_qubits() {
    let code = RepetitionCode::new(51, CYCLES);
    assert!(code.n_qubits() >= 100);
    let a = run_memory_tableau(&code, 0.02, 7).unwrap();
    let b = run_memory_tableau(&code, 0.02, 7).unwrap();
    assert_eq!(
        a.digest(),
        b.digest(),
        "seeded 101-qubit run must reproduce"
    );
    assert!(
        !code.decode_logical_flip(&a.data),
        "p=0.02 over {CYCLES} cycles stays well under the d=51 majority threshold"
    );
}

/// Ideal planner-routed sampling of a deep Haar-random brickwork
/// circuit scores near unit linear-XEB fidelity (24 layers reach the
/// anticoncentrated Porter–Thomas regime at these widths) and the
/// histogram fits the exact Born distribution.
#[test]
fn xeb_scores_near_one_on_ideal_sampling() {
    for n in [12usize, 14] {
        let r = xeb_experiment(n, 24, 3000, 11, None).unwrap();
        assert!(
            (r.fidelity - 1.0).abs() < 0.15,
            "ideal F_XEB {} (via {}) should be near 1 at {n} qubits",
            r.fidelity,
            r.backend
        );
        assert!(
            chi_squared_fits(&r.counts(), &r.ideal, 5.0),
            "{n}-qubit ideal samples must fit the exact Born distribution"
        );
    }
}

/// A trailing depolarizing layer collapses the score toward the
/// fully-mixed floor. The noisy arm runs at 10 qubits: the planner
/// routes channel circuits with a histogram deliverable to the density
/// matrix, whose unoptimized-profile evolution is O(ops * 4^n).
#[test]
fn xeb_degrades_under_injected_depolarizing() {
    let ideal = xeb_experiment(10, 8, 2000, 11, None).unwrap();
    let noisy = xeb_experiment(10, 8, 400, 11, Some(0.15)).unwrap();
    assert!(
        noisy.fidelity < ideal.fidelity - 0.5,
        "depolarizing must degrade F_XEB: noisy {} (via {}) vs ideal {} (via {})",
        noisy.fidelity,
        noisy.backend,
        ideal.fidelity,
        ideal.backend
    );
}

//! Chaos suite: the serving layer under deterministic fault injection.
//!
//! The liveness contract under test: **no submitted job is ever lost**
//! — under injected panics, backend faults, budget exhaustion, forced
//! latency, deadlines, and cancellations, every job resolves exactly
//! once, to a result or a typed error, and the workers survive to serve
//! the next request. Because the [`FaultPlan`] is a pure function of
//! `(seed, job, attempt)`, the suite asserts *exact* outcomes — which
//! jobs degrade, how many panics are caught, bit-identical histograms —
//! not statistical ones, and the whole file must pass unchanged at
//! `RAYON_NUM_THREADS=1` and `=4` (the CI fault-injection job runs
//! both).

use bgls_suite::circuit::{Channel, Circuit, Gate, Operation, PauliSum, Qubit};
use bgls_suite::core::{BatchPolicy, ManualClock, RetryPolicy, SimError, Simulator};
use bgls_suite::plan::{
    degrade, plan, Deliverable, ExecPath, FaultPlan, PlannerConfig, ServePolicy, ServiceConfig,
    ServiceHandle, SimRequest, SimulationService,
};
use bgls_suite::SimulatorExt;

fn measured(mut c: Circuit, n: u32) -> Circuit {
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

/// Pure-Clifford GHZ ladder (plans to chform / sample-parallel).
fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

/// Sparse-noise wide GHZ (plans to a pure-state backend on the
/// trajectory-forest path).
fn noisy_wide(n: u32) -> Circuit {
    let mut c = ghz(n).without_measurements();
    c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![Qubit(0)]).unwrap());
    measured(c, n)
}

/// T-dusted ladder (plans dense, sample-parallel).
fn t_ladder(n: u32) -> Circuit {
    let mut c = Circuit::new();
    for i in 0..n {
        c.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(i)]).unwrap());
    }
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

/// Dense-noise wide GHZ: a channel on every qubit overflows the
/// trajectory-forest budget past the density wall, so the planner
/// routes to the purified MPS (see
/// `noisy_wide_routes_to_forest_then_purified_mps_as_noise_densifies`
/// in `bgls-plan`).
fn purified_dense(n: u32) -> Circuit {
    let mut c = ghz(n).without_measurements();
    for i in 0..n {
        c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![Qubit(i)]).unwrap());
    }
    measured(c, n)
}

fn mixed_traffic() -> Vec<(Circuit, u64)> {
    let mut jobs = Vec::new();
    for seed in 0..8u64 {
        jobs.push((ghz(8), seed));
        jobs.push((noisy_wide(13), seed + 100));
        jobs.push((t_ladder(8), seed + 200));
        jobs.push((purified_dense(13), seed + 300));
    }
    jobs
}

fn chaos_config(fault: FaultPlan) -> ServiceConfig {
    ServiceConfig {
        fault: Some(fault),
        ..ServiceConfig::default()
    }
}

/// Under a storm of every fault kind, every ticket resolves — to a
/// result or a typed error — and the conservation law
/// `completed + failed == submitted` holds exactly.
#[test]
fn chaos_no_submitted_job_is_ever_lost() {
    let fault = FaultPlan {
        panic_probability: 0.25,
        backend_failure_probability: 0.25,
        budget_exhaustion_probability: 0.15,
        stop_after_attempts: 2,
        ..FaultPlan::seeded(13)
    };
    let handle = ServiceHandle::start(chaos_config(fault), ServePolicy::default()).unwrap();
    let tickets: Vec<_> = mixed_traffic()
        .into_iter()
        .map(|(c, s)| {
            handle
                .submit(SimRequest::histogram(c, 40).with_seed(s))
                .unwrap()
        })
        .collect();
    let total = tickets.len() as u64;
    for ticket in tickets {
        // resolves exactly once, to Ok or a *typed* error
        match handle.wait(ticket) {
            Ok(report) => assert!(report.histogram().is_some()),
            Err(
                SimError::WorkerPanic(_)
                | SimError::BudgetExhausted(_)
                | SimError::Faulted(_)
                | SimError::DeadlineExceeded { .. }
                | SimError::Cancelled,
            ) => {}
            Err(other) => panic!("untyped failure leaked out: {other}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.submitted, total);
    assert_eq!(stats.completed + stats.failed, total, "{stats:?}");
    assert!(stats.faults_injected > 0, "the storm must actually storm");
    // the workers survived every injected panic
    assert!(stats.panics_caught > 0);
}

/// The same chaos workload run twice produces identical counters and
/// bit-identical per-job outcomes: fault injection is deterministic.
#[test]
fn chaos_outcomes_are_reproducible_bit_for_bit() {
    let fault = FaultPlan {
        panic_probability: 0.3,
        backend_failure_probability: 0.3,
        budget_exhaustion_probability: 0.2,
        stop_after_attempts: 3,
        ..FaultPlan::seeded(99)
    };
    let run = || {
        // Pin the batch size and the clock: the PI controller's
        // wall-time latency measurements must not steer batch
        // composition differently between the two runs.
        let config = ServiceConfig {
            batch: BatchPolicy {
                min_batch: 8,
                max_batch: 8,
                ..BatchPolicy::default()
            },
            ..chaos_config(fault.clone())
        };
        let mut svc = SimulationService::with_clock(config, ManualClock::shared());
        let ids: Vec<_> = mixed_traffic()
            .into_iter()
            .map(|(c, s)| {
                svc.submit(SimRequest::histogram(c, 40).with_seed(s))
                    .unwrap()
            })
            .collect();
        svc.run_all();
        let outcomes: Vec<_> = ids
            .into_iter()
            .map(|id| {
                svc.take_result(id)
                    .unwrap()
                    .map(|r| {
                        (
                            r.attempts,
                            r.degradations.clone(),
                            r.histogram().unwrap().histogram("m").cloned(),
                        )
                    })
                    .map_err(|e| e.to_string())
            })
            .collect();
        (outcomes, svc.stats())
    };
    let (outcomes_a, stats_a) = run();
    let (outcomes_b, stats_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(outcomes_a.len(), outcomes_b.len());
    for (a, b) in outcomes_a.iter().zip(&outcomes_b) {
        assert_eq!(a, b);
    }
}

/// A transient panic on every first attempt: the retry chain recovers
/// every job, and the recovered histograms are bit-identical to a
/// fault-free service — retries never perturb results.
#[test]
fn retries_recover_transient_panics_bit_identically() {
    let fault = FaultPlan {
        panic_probability: 1.0,
        stop_after_attempts: 1, // only first attempts fault
        ..FaultPlan::seeded(7)
    };
    let mut faulted = SimulationService::new(chaos_config(fault));
    let mut clean = SimulationService::with_defaults();
    let traffic = mixed_traffic();
    let n = traffic.len() as u64;
    let ids: Vec<_> = traffic
        .iter()
        .map(|(c, s)| {
            let a = faulted
                .submit(SimRequest::histogram(c.clone(), 40).with_seed(*s))
                .unwrap();
            let b = clean
                .submit(SimRequest::histogram(c.clone(), 40).with_seed(*s))
                .unwrap();
            (a, b)
        })
        .collect();
    faulted.run_all();
    clean.run_all();
    for (fa, cl) in ids {
        let fr = faulted.take_result(fa).unwrap().unwrap();
        let cr = clean.take_result(cl).unwrap().unwrap();
        assert_eq!(fr.attempts, 2, "panic then recovery");
        assert!(fr.degradations.is_empty(), "retried on the same plan");
        assert_eq!(
            fr.histogram().unwrap().histogram("m"),
            cr.histogram().unwrap().histogram("m")
        );
    }
    let stats = faulted.stats();
    assert_eq!(stats.panics_caught, n);
    assert_eq!(stats.retries, n);
    assert_eq!(stats.failed, 0);
}

/// Budget exhaustion skips the (pointless) retries and degrades
/// immediately; the degraded histogram is bit-identical to running the
/// fallback plan directly with the same seed.
#[test]
fn degraded_jobs_match_the_fallback_plan_run_directly() {
    let fault = FaultPlan {
        budget_exhaustion_probability: 1.0,
        stop_after_attempts: 1,
        ..FaultPlan::seeded(21)
    };
    let planner = PlannerConfig::default();
    let mut svc = SimulationService::new(chaos_config(fault));
    let cases = [(ghz(8), 5u64), (noisy_wide(13), 6u64), (t_ladder(8), 7u64)];
    let ids: Vec<_> = cases
        .iter()
        .map(|(c, s)| {
            svc.submit(SimRequest::histogram(c.clone(), 40).with_seed(*s))
                .unwrap()
        })
        .collect();
    svc.run_all();
    for (id, (circuit, seed)) in ids.into_iter().zip(&cases) {
        let report = svc.take_result(id).unwrap().unwrap();
        assert!(report.degraded(), "budget exhaustion must degrade");
        assert_eq!(report.degradations.len(), 1, "{:?}", report.degradations);

        // reconstruct the expected fallback plan from the ladder
        let original = plan(
            circuit,
            &Deliverable::Histogram { repetitions: 40 },
            &planner,
        )
        .unwrap();
        let fallback = degrade(&original, &planner).expect("one rung must exist");
        assert_eq!(report.backend, fallback.backend);
        assert_eq!(report.path, fallback.path);

        // the degradation contract: same bits as the fallback plan
        // executed standalone with the same seed
        let direct = fallback.run(40, Some(*seed)).unwrap();
        assert_eq!(
            report.histogram().unwrap().histogram("m"),
            direct.histogram("m")
        );
    }
    assert_eq!(svc.stats().degradations, 3);
    assert_eq!(svc.stats().retries, 0, "exhausted budgets are not retried");
}

/// The purified-MPS rung of the ladder: a dense-noise wide job plans to
/// purified MPS, degrades to statevector trajectories on budget
/// exhaustion, matches the fallback plan bit-for-bit — and the degraded
/// result is re-keyed, i.e. cached under the *fallback* plan's
/// fingerprint, never the original purified-MPS plan's.
#[test]
fn degraded_purified_mps_jobs_rekey_the_cache_and_match_the_fallback() {
    use bgls_suite::BackendKind;

    let fault = FaultPlan {
        budget_exhaustion_probability: 1.0,
        stop_after_attempts: 1,
        ..FaultPlan::seeded(33)
    };
    let planner = PlannerConfig::default();
    let (circuit, seed) = (purified_dense(13), 9u64);

    // The workload really does route to the new backend.
    let original = plan(
        &circuit,
        &Deliverable::Histogram { repetitions: 40 },
        &planner,
    )
    .unwrap();
    assert!(
        matches!(original.backend, BackendKind::PurifiedMps { .. }),
        "traffic must plan to purified MPS, got {:?}",
        original.backend
    );

    let mut svc = SimulationService::new(chaos_config(fault));
    let id = svc
        .submit(SimRequest::histogram(circuit.clone(), 40).with_seed(seed))
        .unwrap();
    svc.run_all();
    let report = svc.take_result(id).unwrap().unwrap();
    assert!(report.degraded(), "budget exhaustion must degrade");

    let fallback = degrade(&original, &planner).expect("purified MPS has a rung below");
    assert_eq!(report.backend, fallback.backend);
    assert_eq!(report.path, fallback.path);
    let direct = fallback.run(40, Some(seed)).unwrap();
    assert_eq!(
        report.histogram().unwrap().histogram("m"),
        direct.histogram("m")
    );

    // Re-keying: the degraded bits were inserted under the fallback
    // plan's fingerprint, so an identical resubmission — whose lookup
    // key is the *original* purified-MPS plan — must miss the cache and
    // walk the ladder itself instead of being served stale fallback
    // bits under the original plan's identity.
    let hits_before = svc.cache_stats().hits;
    let again = svc
        .submit(SimRequest::histogram(circuit, 40).with_seed(seed))
        .unwrap();
    svc.run_all();
    let second = svc.take_result(again).unwrap().unwrap();
    assert_eq!(
        svc.cache_stats().hits,
        hits_before,
        "no hit under the original key"
    );
    assert!(second.degraded(), "the resubmission degrades on its own");
    assert_eq!(
        second.histogram().unwrap().histogram("m"),
        direct.histogram("m"),
        "both degraded runs land on the same fallback bits"
    );
}

/// The exact expectation walk degrades to the grouped-shot estimator,
/// whose value is reproducible and close to the exact answer.
#[test]
fn expectation_jobs_degrade_to_the_shot_estimator() {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    let obs: PauliSum = "Z0 Z1".parse().unwrap();
    let fault = FaultPlan {
        budget_exhaustion_probability: 1.0,
        stop_after_attempts: 1,
        ..FaultPlan::seeded(3)
    };
    let config = ServiceConfig {
        fault: Some(fault),
        degraded_shots: 4096,
        ..ServiceConfig::default()
    };
    let planner = config.planner;
    let degraded_shots = config.degraded_shots;
    let mut svc = SimulationService::new(config);
    let id = svc
        .submit(SimRequest::expectation(c.clone(), obs.clone()).with_seed(11))
        .unwrap();
    svc.run_all();
    let report = svc.take_result(id).unwrap().unwrap();
    assert_eq!(report.path, ExecPath::ShotEstimate);
    assert!(report.degraded());
    let value = report.expectation().unwrap();
    // H|0> CNOT gives <Z0 Z1> = 1 exactly; the estimator must be close
    assert!((value - 1.0).abs() < 0.1, "estimate {value}");

    // and bit-reproducible: the same estimator run directly agrees
    let original = plan(
        &c,
        &Deliverable::Expectation {
            observable: obs.clone(),
        },
        &planner,
    )
    .unwrap();
    let fallback = degrade(&original, &planner).unwrap();
    let mut options = fallback.options.clone();
    options.seed = Some(11);
    let sim = Simulator::for_backend(fallback.backend, 2, options);
    let direct = sim.estimate_expectation(&c, &obs, degraded_shots).unwrap();
    assert_eq!(
        value, direct.value,
        "degraded estimate must be exact-reproducible"
    );
}

/// When every attempt on every rung faults, the job fails *terminally
/// and typed* — and the service remains healthy for the next request.
#[test]
fn exhausted_ladders_fail_typed_and_leave_the_service_healthy() {
    let fault = FaultPlan {
        panic_probability: 1.0,
        stop_after_attempts: u32::MAX,
        ..FaultPlan::seeded(5)
    };
    // tight retry budget to keep the walk down the ladder quick
    let config = ServiceConfig {
        fault: Some(fault),
        retry: RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0,
            ..RetryPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let mut svc = SimulationService::new(config);
    let id = svc
        .submit(SimRequest::histogram(ghz(6), 40).with_seed(1))
        .unwrap();
    svc.run_all();
    match svc.take_result(id).unwrap() {
        Err(SimError::WorkerPanic(msg)) => {
            assert!(msg.contains("injected panic"), "{msg}")
        }
        other => panic!("expected a terminal WorkerPanic, got {other:?}"),
    }
    let after_failure = svc.stats();
    assert!(after_failure.degradations > 0, "walked the ladder first");
    assert_eq!(after_failure.failed, 1);

    // The service (and its worker) survived: a clean job still serves.
    // The fault plan rolls per (job, attempt); job id 1 under seed 5
    // also panics on early attempts, so prove health via conservation:
    // the job settles (ok or typed), nothing hangs, nothing is lost.
    let next = svc
        .submit(SimRequest::histogram(ghz(6), 40).with_seed(2))
        .unwrap();
    svc.run_all();
    assert!(svc.take_result(next).is_some(), "second job must settle");
    let stats = svc.stats();
    assert_eq!(stats.completed + stats.failed, stats.submitted);
}

/// Injected latency plus tight deadlines: late jobs fail with the typed
/// deadline error at a batch boundary instead of executing, and every
/// ticket still resolves.
#[test]
fn deadline_misses_surface_typed_errors_under_latency() {
    let fault = FaultPlan {
        latency_ms: 40,
        ..FaultPlan::seeded(0)
    };
    let config = ServiceConfig {
        fault: Some(fault),
        batch: BatchPolicy {
            min_batch: 1,
            max_batch: 1,
            ..BatchPolicy::default()
        },
        default_deadline_ms: Some(10),
        ..ServiceConfig::default()
    };
    let handle = ServiceHandle::start(
        config,
        ServePolicy {
            workers: 1,
            ..ServePolicy::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = (0..6u64)
        .map(|s| {
            handle
                .submit(SimRequest::histogram(ghz(6), 30).with_seed(s))
                .unwrap()
        })
        .collect();
    let mut ok = 0u32;
    let mut missed = 0u32;
    for t in tickets {
        match handle.wait(t) {
            Ok(_) => ok += 1,
            Err(SimError::DeadlineExceeded { budget_ms }) => {
                assert_eq!(budget_ms, 10);
                missed += 1;
            }
            Err(other) => panic!("unexpected: {other}"),
        }
    }
    assert_eq!(ok + missed, 6, "every ticket resolves");
    assert!(missed >= 1, "40ms batches must blow a 10ms deadline");
    let stats = handle.shutdown();
    assert_eq!(stats.deadline_misses as u32, missed);
}

/// Front-door cancellation: cancelled tickets resolve with the typed
/// error; the rest finish normally.
#[test]
fn cancellation_resolves_tickets_with_the_typed_error() {
    let fault = FaultPlan {
        latency_ms: 30, // slow the drain so cancels land while queued
        ..FaultPlan::seeded(0)
    };
    let config = ServiceConfig {
        fault: Some(fault),
        batch: BatchPolicy {
            min_batch: 1,
            max_batch: 1,
            ..BatchPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let handle = ServiceHandle::start(
        config,
        ServePolicy {
            workers: 1,
            ..ServePolicy::default()
        },
    )
    .unwrap();
    let tickets: Vec<_> = (0..8u64)
        .map(|s| {
            handle
                .submit(SimRequest::histogram(ghz(6), 30).with_seed(s))
                .unwrap()
        })
        .collect();
    // cancel the back half; some may already be executing — cancel()
    // tells us which ones landed
    let landed: Vec<bool> = tickets[4..].iter().map(|t| handle.cancel(*t)).collect();
    for (i, t) in tickets.iter().enumerate() {
        let outcome = handle.wait(*t);
        if i >= 4 && landed[i - 4] {
            assert!(
                matches!(outcome, Err(SimError::Cancelled)),
                "cancelled ticket must resolve Cancelled, got {outcome:?}"
            );
        } else {
            assert!(outcome.is_ok(), "uncancelled ticket failed: {outcome:?}");
        }
    }
    handle.shutdown();
}

/// Backend faults injected mid-circuit surface as typed `Faulted`
/// errors when retries are exhausted — or recover when transient.
#[test]
fn mid_circuit_backend_faults_are_contained() {
    let fault = FaultPlan {
        backend_failure_probability: 1.0,
        fail_at_op: 3,
        stop_after_attempts: 1, // transient: retry succeeds
        ..FaultPlan::seeded(17)
    };
    let mut svc = SimulationService::new(chaos_config(fault));
    let ids: Vec<_> = (0..4u64)
        .map(|s| {
            svc.submit(SimRequest::histogram(t_ladder(8), 50).with_seed(s))
                .unwrap()
        })
        .collect();
    svc.run_all();
    for id in ids {
        let report = svc.take_result(id).unwrap().unwrap();
        assert_eq!(report.attempts, 2, "fault then recovery");
    }
    let stats = svc.stats();
    assert_eq!(stats.faults_injected, 4);
    assert_eq!(stats.retries, 4);
    assert_eq!(stats.failed, 0);
}

//! Trajectory-forest integration: the prefix-sharing forest engine must
//! sample the same distributions as per-trajectory replay and as the
//! density matrix's exact channel application, on every runtime backend
//! that supports channels — while staying bit-identical across thread
//! counts and across the batched/scalar probability paths.

use bgls_suite::apps::chi_squared_fits;
use bgls_suite::circuit::{Channel, Circuit, Gate, Operation, Qubit};
use bgls_suite::core::{BglsState, BitString, RunResult, Simulator, SimulatorOptions};
use bgls_suite::{BackendKind, SimulatorExt};

const N: usize = 4;
const REPS: u64 = 8_000;

/// GHZ preparation with a depolarizing kick on the control and sparse
/// bit-flip noise on every target — the forest's bread-and-butter
/// workload (deterministic trunk, few stochastic branch points).
fn noisy_ghz() -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::channel(Channel::depolarizing(0.1).unwrap(), vec![Qubit(0)]).unwrap());
    for i in 1..N as u32 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
        c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![Qubit(i)]).unwrap());
    }
    c.push(Operation::measure(Qubit::range(N), "z").unwrap());
    c
}

/// Bell pair built through a mid-circuit measurement, with bit-flip
/// noise after the collapse: `H(0); M(0); CNOT(0,1); flip(p) on 1; M`.
fn mid_circuit_circuit(p: f64) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "mid").unwrap());
    c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    c.push(Operation::channel(Channel::bit_flip(p).unwrap(), vec![Qubit(1)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0), Qubit(1)], "fin").unwrap());
    c
}

/// Exact outcome weights from the density matrix's deterministic channel
/// application (terminal-measurement circuits only).
fn exact_weights(circuit: &Circuit, n: usize) -> Vec<f64> {
    let state = Simulator::for_backend(BackendKind::DensityMatrix, n, SimulatorOptions::default())
        .final_state(circuit)
        .expect("exact channel evolution");
    (0..1u64 << n)
        .map(|x| state.probability(BitString::from_u64(n, x)))
        .collect()
}

fn counts(result: &RunResult, key: &str, n: usize) -> Vec<u64> {
    let h = result.histogram(key).unwrap();
    (0..1u64 << n).map(|v| h.count_value(v)).collect()
}

fn run_with(kind: BackendKind, circuit: &Circuit, n: usize, opts: SimulatorOptions) -> RunResult {
    Simulator::for_backend(kind, n, opts)
        .run(circuit, REPS)
        .unwrap_or_else(|e| panic!("{kind}: {e}"))
}

/// The trajectory backends the forest forks channels on (the density
/// matrix absorbs channels exactly and never branches).
fn trajectory_backends() -> Vec<BackendKind> {
    vec![
        BackendKind::StateVector,
        BackendKind::ChainMps { chi: None },
        BackendKind::ChainMps { chi: Some(8) },
        BackendKind::LazyNetwork,
    ]
}

#[test]
fn forest_agrees_with_exact_channels_on_noisy_ghz() {
    let circuit = noisy_ghz();
    let reference = exact_weights(&circuit, N);
    // the density matrix itself (multiplicity-map path, no forking)
    let exact_run = run_with(
        BackendKind::DensityMatrix,
        &circuit,
        N,
        SimulatorOptions {
            seed: Some(90),
            ..Default::default()
        },
    );
    assert!(chi_squared_fits(
        &counts(&exact_run, "z", N),
        &reference,
        5.0
    ));
    // every trajectory backend through the forest engine
    for kind in trajectory_backends() {
        let r = run_with(
            kind,
            &circuit,
            N,
            SimulatorOptions {
                seed: Some(91),
                ..Default::default()
            },
        );
        assert!(
            chi_squared_fits(&counts(&r, "z", N), &reference, 5.0),
            "{kind}: forest sampling deviates from exact channel evolution"
        );
    }
}

#[test]
fn replay_agrees_with_exact_channels_on_noisy_ghz() {
    let circuit = noisy_ghz();
    let reference = exact_weights(&circuit, N);
    // replay is the fallback engine; keep it verified against the same
    // ground truth the forest is held to (lazy replay is contraction-
    // heavy at these rep counts, so the dense and chain backends stand in)
    for kind in [
        BackendKind::StateVector,
        BackendKind::ChainMps { chi: None },
    ] {
        let r = run_with(
            kind,
            &circuit,
            N,
            SimulatorOptions {
                seed: Some(92),
                trajectory_forest: false,
                ..Default::default()
            },
        );
        assert!(
            chi_squared_fits(&counts(&r, "z", N), &reference, 5.0),
            "{kind}: replay sampling deviates from exact channel evolution"
        );
    }
}

#[test]
fn forest_handles_mid_circuit_measurement_on_every_backend() {
    let p = 0.2;
    let circuit = mid_circuit_circuit(p);
    // outcome bit 0 = qubit 0, bit 1 = qubit 1:
    // P(00) = P(11) = (1-p)/2, P(01) = P(10) = p/2
    let reference = [
        0.5 * (1.0 - p), // 00
        0.5 * p,         // q0=1, q1=0
        0.5 * p,         // q0=0, q1=1
        0.5 * (1.0 - p), // 11
    ];
    let mut kinds = trajectory_backends();
    kinds.push(BackendKind::DensityMatrix);
    for kind in kinds {
        let r = run_with(
            kind,
            &circuit,
            2,
            SimulatorOptions {
                seed: Some(93),
                ..Default::default()
            },
        );
        let fin = counts(&r, "fin", 2);
        assert!(
            chi_squared_fits(&fin, &reference, 5.0),
            "{kind}: {fin:?} deviates from {reference:?}"
        );
        let mid = r.histogram("mid").unwrap();
        assert!(
            chi_squared_fits(&[mid.count_value(0), mid.count_value(1)], &[1.0, 1.0], 5.0),
            "{kind}: mid-circuit outcome is not 50/50"
        );
        // the collapse must correlate exactly: final qubit 0 equals the
        // recorded mid-circuit outcome, repetition by repetition
        assert_eq!(
            fin[1] + fin[3],
            mid.count_value(1),
            "{kind}: mid-circuit collapse lost the correlation"
        );
    }
}

#[test]
fn forest_is_bit_identical_across_parallelism_and_batching() {
    for circuit in [noisy_ghz(), mid_circuit_circuit(0.15)] {
        let n = circuit.num_qubits();
        for kind in trajectory_backends() {
            let run = |parallel: bool, batch: bool| {
                run_with(
                    kind,
                    &circuit,
                    n,
                    SimulatorOptions {
                        seed: Some(94),
                        parallel_trajectories: parallel,
                        parallel_redistribution: parallel,
                        batch_probabilities: batch,
                        ..Default::default()
                    },
                )
            };
            let baseline = run(true, true);
            for (parallel, batch) in [(false, true), (true, false), (false, false)] {
                let other = run(parallel, batch);
                for key in baseline.keys() {
                    assert_eq!(
                        baseline.histogram(key),
                        other.histogram(key),
                        "{kind}: parallel={parallel} batch={batch} diverged on '{key}'"
                    );
                }
            }
        }
    }
}

#[test]
fn forest_budget_exhaustion_falls_back_to_replay() {
    let circuit = noisy_ghz();
    let run = |opts: SimulatorOptions| run_with(BackendKind::StateVector, &circuit, N, opts);
    let replay = run(SimulatorOptions {
        seed: Some(95),
        trajectory_forest: false,
        ..Default::default()
    });
    // a 1-node budget cannot hold the forked frontier: the run must
    // reproduce the replay engine bit for bit under the same seed
    let exhausted = run(SimulatorOptions {
        seed: Some(95),
        max_forest_nodes: 1,
        ..Default::default()
    });
    assert_eq!(exhausted.histogram("z"), replay.histogram("z"));
    // with headroom the forest engages, which shows up as a different
    // (but equally distributed) seeded stream
    let forest = run(SimulatorOptions {
        seed: Some(95),
        ..Default::default()
    });
    assert_ne!(
        forest.histogram("z"),
        replay.histogram("z"),
        "forest run reproduced the replay stream exactly — did it engage?"
    );
}

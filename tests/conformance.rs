//! Cross-backend conformance battery.
//!
//! One declarative matrix (see `bgls-testkit`): circuit classes down
//! the side, backends across the top, and three assertions at every
//! `(backend, class)` cell the capability matrix claims:
//!
//! 1. **Expectations** agree pairwise to 1e-10 across all claiming
//!    backends — exact values through the expectation frontier, so
//!    channels and mid-circuit measurements contribute their full
//!    mixture with no sampling noise.
//! 2. **Histograms** of seeded sampling runs pass a 5-sigma chi-squared
//!    fit against the exact Born distribution (computed once on the
//!    density matrix through the same frontier).
//! 3. **Digests** of the sampled sequence are bit-identical across
//!    every parallelism knob and across `RAYON_NUM_THREADS` (the
//!    thread-count half runs in child processes, since the vendored
//!    Rayon pins its pool size per process).
//!
//! The battery is the enforcement side of the capability matrix: a
//! backend silently losing a capability fails its cells instead of
//! silently shrinking the suite.

use bgls_suite::apps::chi_squared_fits;
use bgls_suite::core::SimulatorOptions;
use bgls_suite::{BackendKind, CostModel};
use bgls_testkit::{
    backends_under_test, circuit_for, exact_distribution, expectation_on, observables_for,
    sample_counts, sample_digest, supports, CircuitClass,
};
use std::process::Command;

/// Battery width: small enough that the exact reference (2^n projector
/// expectations of 2^n terms each) stays cheap, large enough that every
/// backend routes multi-qubit entanglement and swap paths.
const N: usize = 4;
const SEED: u64 = 2024;
const EXPECT_TOL: f64 = 1e-10;
/// Frontier headroom for trajectory backends on the channel-heavy
/// class: 8 two-branch channels fork at most 2^8 = 256 leaves.
const FRONTIER: usize = 1 << 12;

fn claiming(class: CircuitClass) -> Vec<BackendKind> {
    backends_under_test()
        .into_iter()
        .filter(|&k| supports(k, class))
        .collect()
}

#[test]
fn expectations_agree_pairwise_across_all_claiming_backends() {
    for class in CircuitClass::all() {
        let circuit = circuit_for(class, N, SEED);
        for (oi, obs) in observables_for(N).iter().enumerate() {
            let values: Vec<(BackendKind, f64)> = claiming(class)
                .into_iter()
                .map(|kind| {
                    let v = expectation_on(kind, &circuit, N, obs, FRONTIER)
                        .unwrap_or_else(|e| panic!("{class} obs#{oi} on {kind}: {e}"));
                    (kind, v)
                })
                .collect();
            for (i, (ka, va)) in values.iter().enumerate() {
                for (kb, vb) in &values[i + 1..] {
                    assert!(
                        (va - vb).abs() <= EXPECT_TOL,
                        "{class} obs#{oi}: {ka} = {va} vs {kb} = {vb}"
                    );
                }
            }
        }
    }
}

#[test]
fn sampled_histograms_fit_the_exact_born_distribution() {
    const REPS: u64 = 4000;
    for class in CircuitClass::all() {
        let circuit = circuit_for(class, N, SEED);
        let exact = exact_distribution(&circuit, N);
        for kind in claiming(class) {
            let opts = SimulatorOptions {
                seed: Some(91),
                max_forest_nodes: FRONTIER,
                ..Default::default()
            };
            let counts = sample_counts(kind, &circuit, N, REPS, opts)
                .unwrap_or_else(|e| panic!("{class} on {kind}: {e}"));
            assert!(
                chi_squared_fits(&counts, &exact, 5.0),
                "{class} on {kind}: histogram fails 5-sigma chi-squared vs exact Born"
            );
        }
    }
}

#[test]
fn sampling_digests_are_invariant_across_parallelism_knobs() {
    const REPS: u64 = 2000;
    for class in CircuitClass::all() {
        let circuit = circuit_for(class, N, SEED);
        for kind in claiming(class) {
            let opts = |batch: bool, par_redist: bool, par_traj: bool| SimulatorOptions {
                seed: Some(57),
                batch_probabilities: batch,
                parallel_redistribution: par_redist,
                parallel_trajectories: par_traj,
                max_forest_nodes: FRONTIER,
                ..Default::default()
            };
            let digest = |o: SimulatorOptions| {
                sample_digest(kind, &circuit, N, REPS, o)
                    .unwrap_or_else(|e| panic!("{class} on {kind}: {e}"))
            };
            let reference = digest(opts(true, true, true));
            for (b, r, t) in [
                (true, true, true), // repeat: seed-stability
                (false, true, true),
                (true, false, true),
                (true, true, false),
                (false, false, false),
            ] {
                assert_eq!(
                    digest(opts(b, r, t)),
                    reference,
                    "{class} on {kind}: digest drifted at batch={b} par_redist={r} par_traj={t}"
                );
            }
        }
    }
}

/// Child half of the thread-count protocol: fold every claiming
/// backend's sampled sequence for the named class into one digest under
/// whatever `RAYON_NUM_THREADS` the parent chose.
#[test]
fn conformance_child_emit() {
    let Ok(scenario) = std::env::var("BGLS_CONFORMANCE_CLASS") else {
        return;
    };
    let out = std::env::var("BGLS_CONFORMANCE_OUT").expect("output path set alongside class");
    let class = CircuitClass::all()
        .into_iter()
        .find(|c| c.name() == scenario)
        .unwrap_or_else(|| panic!("unknown class {scenario}"));
    let circuit = circuit_for(class, N, SEED);
    let mut digest = 0u64;
    for kind in claiming(class) {
        let opts = SimulatorOptions {
            seed: Some(23),
            max_forest_nodes: FRONTIER,
            ..Default::default()
        };
        let d = sample_digest(kind, &circuit, N, 1000, opts)
            .unwrap_or_else(|e| panic!("{class} on {kind}: {e}"));
        digest = digest.rotate_left(7) ^ d;
    }
    std::fs::write(out, format!("{digest:016x}")).expect("write child digest");
}

#[test]
fn sampling_digests_are_bit_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    for class in CircuitClass::all() {
        let mut digests: Vec<String> = Vec::new();
        for threads in ["1", "4"] {
            let out = std::env::temp_dir().join(format!(
                "bgls_conformance_digest_{}_{}_{threads}",
                std::process::id(),
                class.name(),
            ));
            let status = Command::new(&exe)
                .args(["--exact", "conformance_child_emit", "--nocapture"])
                .env("RAYON_NUM_THREADS", threads)
                .env("BGLS_CONFORMANCE_CLASS", class.name())
                .env("BGLS_CONFORMANCE_OUT", &out)
                .status()
                .expect("spawn child test process");
            assert!(
                status.success(),
                "{class}: child failed at {threads} threads"
            );
            let digest = std::fs::read_to_string(&out).expect("read child digest");
            let _ = std::fs::remove_file(&out);
            digests.push(digest);
        }
        assert!(
            digests.iter().all(|d| d == &digests[0]),
            "{class}: digests differ across RAYON_NUM_THREADS=1/4: {digests:?}"
        );
    }
}

/// The tentpole's reach claim: an exact noisy-channel expectation at 20
/// qubits, where the density matrix's 4^20 complex amplitudes (~17 TB)
/// cannot be allocated. GHZ(20) with single-qubit depolarizing noise on
/// every qubit has the closed form `<Z^(x20)> = (1 - 4p/3)^20`, so the
/// purified-MPS answer is checked against pencil and paper, not against
/// another simulator.
#[test]
fn purified_mps_serves_wide_noisy_expectations_beyond_the_density_matrix() {
    use bgls_suite::circuit::{Channel, Circuit, Gate, Operation, PauliOp, PauliString, Qubit};
    use bgls_suite::linalg::C64;
    use bgls_suite::plan::CircuitProfile;

    let n = 20;
    let p = 0.1;
    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for q in 1..n as u32 {
        circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(q - 1), Qubit(q)]).unwrap());
    }
    for q in 0..n as u32 {
        circuit
            .push(Operation::channel(Channel::depolarizing(p).unwrap(), vec![Qubit(q)]).unwrap());
    }
    let mut zn = bgls_suite::circuit::PauliSum::new();
    zn.add_term(
        C64::ONE,
        PauliString::from_ops((0..n).map(|q| (q, PauliOp::Z))).unwrap(),
    );

    let pmps = BackendKind::PurifiedMps {
        chi: None,
        kraus_dim: None,
    };
    let value = expectation_on(pmps, &circuit, n, &zn, 16).expect("purified MPS serves 20 qubits");
    let analytic = (1.0 - 4.0 * p / 3.0).powi(n as i32);
    assert!(
        (value - analytic).abs() < 1e-10,
        "purified MPS {value} vs closed form {analytic}"
    );

    // The cost model agrees this is out of the density matrix's reach:
    // its static units dwarf the purified chain's by many orders of
    // magnitude (4^20 amplitudes vs n * chi^3 * kappa tensor work).
    let profile = CircuitProfile::of(&circuit);
    let dm = CostModel::static_units(&profile, &BackendKind::DensityMatrix);
    let pm = CostModel::static_units(&profile, &pmps);
    assert!(
        dm > 1e6 * pm,
        "density units {dm} must dwarf purified-MPS units {pm}"
    );
}

//! Statistical property tests of the gate-by-gate sampler itself: on
//! random circuits, the empirical sampling distribution must converge to
//! the exact Born distribution, on every backend path (multiplicity map,
//! per-sample trajectories, mid-circuit measurement collapse) — plus
//! property tests of the sampling primitives `multinomial_split` and
//! `categorical` against the shared chi-squared harness.

use bgls_suite::apps::{chi_squared_fits, empirical_distribution, total_variation_distance};
use bgls_suite::circuit::{
    decompose_three_qubit_gates, generate_random_circuit, Circuit, Gate, Operation, Qubit,
    RandomCircuitParams,
};
use bgls_suite::core::{categorical, multinomial_split, Simulator, SimulatorOptions};
use bgls_suite::mps::{ChainMps, MpsOptions};
use bgls_suite::statevector::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_circuit(seed: u64, n: usize, moments: usize) -> Circuit {
    let params = RandomCircuitParams {
        qubits: n,
        moments,
        op_density: 0.9,
        gate_set: vec![
            Gate::H,
            Gate::T,
            Gate::SqrtX,
            Gate::Ry(0.9.into()),
            Gate::Cnot,
            Gate::Cz,
        ],
    };
    generate_random_circuit(&params, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Multiplicity-map path converges to the Born distribution.
    #[test]
    fn parallel_sampling_matches_born(seed in 0u64..1000, n in 2usize..5) {
        let circuit = random_circuit(seed, n, 8);
        let ideal = StateVector::from_circuit(&circuit, n).unwrap().born_distribution();
        let samples = Simulator::new(StateVector::zero(n))
            .with_seed(seed)
            .sample_final_bitstrings(&circuit, 20_000)
            .unwrap();
        let emp = empirical_distribution(&samples, n);
        let tvd = total_variation_distance(&emp, &ideal);
        prop_assert!(tvd < 0.04, "TVD {tvd}");
    }

    /// The per-sample (trajectory) path draws from the same distribution.
    #[test]
    fn trajectory_sampling_matches_born(seed in 0u64..1000, n in 2usize..4) {
        let circuit = random_circuit(seed, n, 6);
        let ideal = StateVector::from_circuit(&circuit, n).unwrap().born_distribution();
        let sim = Simulator::new(StateVector::zero(n)).with_options(SimulatorOptions {
            seed: Some(seed),
            parallelize_samples: false,
            parallel_trajectories: true,
            ..Default::default()
        });
        let samples = sim.sample_final_bitstrings(&circuit, 6000).unwrap();
        let emp = empirical_distribution(&samples, n);
        let tvd = total_variation_distance(&emp, &ideal);
        prop_assert!(tvd < 0.06, "TVD {tvd}");
    }

    /// Toffoli circuits run on the chain MPS after decomposition, agreeing
    /// with the dense simulator running the undecomposed circuit.
    #[test]
    fn decomposed_toffoli_circuits_agree(seed in 0u64..1000) {
        let mut c = random_circuit(seed, 3, 3);
        c.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
        let ideal = StateVector::from_circuit(&c, 3).unwrap().born_distribution();
        let two_q = decompose_three_qubit_gates(&c);
        let samples = Simulator::new(ChainMps::zero(3, MpsOptions::exact()))
            .with_seed(seed)
            .sample_final_bitstrings(&two_q, 15_000)
            .unwrap();
        let emp = empirical_distribution(&samples, 3);
        let tvd = total_variation_distance(&emp, &ideal);
        prop_assert!(tvd < 0.05, "TVD {tvd}");
    }
}

/// Random weight vector with `k` bins, roughly `zero_every`-th of them
/// exactly zero (always at least one positive bin).
fn random_weights(rng: &mut StdRng, k: usize, zero_every: usize) -> Vec<f64> {
    let mut w: Vec<f64> = (0..k)
        .map(|_| {
            if rng.gen_range(0usize..zero_every) == 0 {
                0.0
            } else {
                rng.gen_range(0.05..1.0)
            }
        })
        .collect();
    if w.iter().all(|&x| x == 0.0) {
        w[0] = 1.0;
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `multinomial_split` conserves the total and never populates a
    /// zero-weight bin.
    #[test]
    fn multinomial_split_conserves_total_and_zero_bins(
        seed in 0u64..100_000,
        m in 0u64..200_000,
        k in 2usize..9,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = random_weights(&mut rng, k, 3);
        let counts = multinomial_split(m, &weights, &mut rng).unwrap();
        prop_assert_eq!(counts.len(), weights.len());
        prop_assert_eq!(counts.iter().sum::<u64>(), m, "total not conserved");
        for (c, w) in counts.iter().zip(&weights) {
            prop_assert!(*w > 0.0 || *c == 0, "zero-weight bin got {c} trials");
        }
    }

    /// The chained-binomial split is distributed like `m` independent
    /// categorical draws: both empirical histograms pass a chi-squared
    /// test against the normalized weights.
    #[test]
    fn multinomial_split_matches_repeated_categorical(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = random_weights(&mut rng, 5, 5);
        let m = 40_000u64;
        let split_counts = multinomial_split(m, &weights, &mut rng).unwrap();
        let mut draw_counts = vec![0u64; weights.len()];
        for _ in 0..m {
            draw_counts[categorical(&weights, &mut rng).unwrap()] += 1;
        }
        prop_assert!(
            chi_squared_fits(&split_counts, &weights, 5.0),
            "multinomial_split deviates: {split_counts:?} vs weights {weights:?}"
        );
        prop_assert!(
            chi_squared_fits(&draw_counts, &weights, 5.0),
            "categorical deviates: {draw_counts:?} vs weights {weights:?}"
        );
    }

    /// `categorical` never returns the index of a zero-weight bin, and
    /// always returns an in-range index.
    #[test]
    fn categorical_never_selects_zero_weight(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = random_weights(&mut rng, 6, 2);
        for _ in 0..500 {
            let idx = categorical(&weights, &mut rng).unwrap();
            prop_assert!(idx < weights.len());
            prop_assert!(weights[idx] > 0.0, "zero-weight index {idx} from {weights:?}");
        }
    }
}

#[test]
fn mid_circuit_measurement_on_chain_mps() {
    // H(0); measure(0); CNOT(0 -> 2); measure(2): outcomes must agree —
    // exercises ChainMps::project through the trajectory path.
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
    c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(2)]).unwrap());
    c.push(Operation::measure(vec![Qubit(2)], "b").unwrap());
    let opts = SimulatorOptions {
        seed: Some(4),
        parallel_trajectories: false,
        ..Default::default()
    };
    let sim = Simulator::new(ChainMps::zero(3, MpsOptions::exact())).with_options(opts);
    let r = sim.run(&c, 600).unwrap();
    let a1 = r.histogram("a").unwrap().count_value(1);
    let b1 = r.histogram("b").unwrap().count_value(1);
    assert_eq!(a1, b1, "collapse must correlate the two measurements");
    assert!(a1 > 220 && a1 < 380, "a1 = {a1}");
}

#[test]
fn noisy_mps_trajectories_match_density_matrix() {
    use bgls_suite::circuit::Channel;
    use bgls_suite::statevector::DensityMatrix;
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::channel(Channel::depolarizing(0.2).unwrap(), vec![Qubit(0)]).unwrap());
    c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    c.push(Operation::measure(Qubit::range(2), "z").unwrap());

    let mps = Simulator::new(ChainMps::zero(2, MpsOptions::exact())).with_seed(1);
    let r_mps = mps.run(&c, 20_000).unwrap();
    let dm = Simulator::new(DensityMatrix::zero(2)).with_seed(2);
    let r_dm = dm.run(&c, 20_000).unwrap();

    let d1 = r_mps.histogram("z").unwrap().to_distribution();
    let d2 = r_dm.histogram("z").unwrap().to_distribution();
    let tvd = total_variation_distance(&d1, &d2);
    assert!(
        tvd < 0.03,
        "TVD between MPS trajectories and exact DM: {tvd}"
    );
}

#[test]
fn brickwork_sampling_matches_born_distribution() {
    use bgls_suite::apps::brickwork_circuit;
    let mut rng = StdRng::seed_from_u64(11);
    let circuit = brickwork_circuit(5, 8, &mut rng);
    let ideal = StateVector::from_circuit(&circuit, 5)
        .unwrap()
        .born_distribution();
    let samples = Simulator::new(StateVector::zero(5))
        .with_seed(3)
        .sample_final_bitstrings(&circuit, 40_000)
        .unwrap();
    let emp = empirical_distribution(&samples, 5);
    assert!(total_variation_distance(&emp, &ideal) < 0.05);
}

//! Failure-injection integration tests: invalid inputs must surface typed
//! errors through the whole stack, never panics.

use bgls_suite::circuit::{
    from_qasm, Channel, Circuit, CircuitError, Gate, Operation, Param, Qubit,
};
use bgls_suite::core::{BglsState, SimError, Simulator};
use bgls_suite::mps::{ChainMps, LazyNetworkState, MpsOptions};
use bgls_suite::stabilizer::ChForm;
use bgls_suite::statevector::StateVector;

fn measured_bell() -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    c.push(Operation::measure(Qubit::range(2), "z").unwrap());
    c
}

#[test]
fn unresolved_parameter_is_a_typed_error() {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::Rz(Param::symbol("theta")), vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
    let err = Simulator::new(StateVector::zero(1)).run(&c, 5).unwrap_err();
    match err {
        SimError::Circuit(CircuitError::UnresolvedParameter(s)) => assert_eq!(s, "theta"),
        other => panic!("expected unresolved-parameter error, got {other}"),
    }
}

#[test]
fn missing_measurement_is_reported() {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    assert!(matches!(
        Simulator::new(StateVector::zero(1)).run(&c, 5),
        Err(SimError::NoMeasurements)
    ));
}

#[test]
fn circuit_wider_than_state_is_reported() {
    let err = Simulator::new(StateVector::zero(1))
        .run(&measured_bell(), 5)
        .unwrap_err();
    assert!(matches!(
        err,
        SimError::QubitOutOfRange {
            index: 1,
            num_qubits: 1
        }
    ));
}

#[test]
fn non_clifford_gate_on_stabilizer_state_is_reported() {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
    let err = Simulator::new(ChForm::zero(1)).run(&c, 5).unwrap_err();
    assert!(matches!(err, SimError::NotClifford(_)), "got {err}");
}

#[test]
fn channels_on_stabilizer_state_unsupported() {
    let mut st = ChForm::zero(1);
    let mut rng = rand::rngs::OsRng;
    let err = st
        .apply_kraus(&Channel::bit_flip(0.5).unwrap(), &[0], &mut rng)
        .unwrap_err();
    assert!(matches!(err, SimError::Unsupported(_)));
}

#[test]
fn three_qubit_gates_on_tensor_networks_unsupported() {
    for err in [
        LazyNetworkState::zero(3).apply_gate(&Gate::Ccx, &[0, 1, 2]),
        ChainMps::zero(3, MpsOptions::exact()).apply_gate(&Gate::Ccx, &[0, 1, 2]),
    ] {
        assert!(matches!(err, Err(SimError::Unsupported(_))));
    }
}

#[test]
fn invalid_channel_probability_rejected_at_construction() {
    assert!(matches!(
        Channel::depolarizing(1.1),
        Err(CircuitError::Invalid(_))
    ));
}

#[test]
fn qasm_errors_carry_line_numbers() {
    let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nmystery q[1];\n";
    match from_qasm(src) {
        Err(CircuitError::QasmParse { line, .. }) => assert_eq!(line, 4),
        other => panic!("expected QASM parse error, got {other:?}"),
    }
}

#[test]
fn arity_mismatch_rejected_at_operation_construction() {
    assert!(matches!(
        Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1)]),
        Err(CircuitError::ArityMismatch {
            expected: 3,
            got: 2,
            ..
        })
    ));
}

#[test]
fn mid_circuit_measurement_requires_projection_support() {
    // CH form has no projection; mid-circuit measurement must error, not
    // silently give wrong statistics.
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
    c.push(Operation::gate(Gate::X, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "b").unwrap());
    let opts = bgls_suite::core::SimulatorOptions {
        seed: Some(1),
        parallel_trajectories: false,
        ..Default::default()
    };
    let err = Simulator::new(ChForm::zero(1))
        .with_options(opts)
        .run(&c, 5)
        .unwrap_err();
    assert!(matches!(err, SimError::Unsupported(_)), "got {err}");
}

#[test]
fn zero_repetitions_is_a_clean_empty_result() {
    let r = Simulator::new(StateVector::zero(2))
        .run(&measured_bell(), 0)
        .unwrap();
    assert_eq!(r.repetitions(), 0);
    assert!(r.histogram("z").is_none());
}

#[test]
fn estimate_expectation_rejects_degenerate_shot_counts() {
    // 0 shots would divide by zero; 1 shot leaves the variance term
    // 0/0 = NaN. Both must be typed errors, not silent NaNs.
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    let obs: bgls_suite::circuit::PauliSum = "Z0".parse().unwrap();
    let sim = Simulator::new(StateVector::zero(1)).with_seed(3);
    for shots in [0, 1] {
        match sim.estimate_expectation(&c, &obs, shots) {
            Err(SimError::Invalid(msg)) => assert!(msg.contains("2 shots"), "{msg}"),
            other => panic!("shots={shots}: expected Invalid, got {other:?}"),
        }
    }
    // The smallest legal count yields finite values.
    let est = sim.estimate_expectation(&c, &obs, 2).unwrap();
    assert!(est.value.is_finite());
    assert!(est.std_error.is_finite());
}

#[test]
fn all_zero_weights_are_a_zero_probability_event() {
    use bgls_suite::core::{categorical, multinomial_split};
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    assert!(matches!(
        categorical(&[0.0, 0.0, 0.0], &mut rng),
        Err(SimError::ZeroProbabilityEvent)
    ));
    assert!(matches!(
        multinomial_split(10, &[0.0, 0.0], &mut rng),
        Err(SimError::ZeroProbabilityEvent)
    ));
}

#[test]
fn nan_and_negative_weights_are_invalid() {
    use bgls_suite::core::{categorical, multinomial_split};
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    for bad in [f64::NAN, -0.25, f64::INFINITY] {
        let weights = [0.5, bad, 0.25];
        match categorical(&weights, &mut rng) {
            Err(SimError::Invalid(msg)) => {
                assert!(msg.contains("weight"), "{msg}")
            }
            other => panic!("weight {bad}: expected Invalid, got {other:?}"),
        }
        assert!(matches!(
            multinomial_split(10, &weights, &mut rng),
            Err(SimError::Invalid(_))
        ));
    }
}

#[test]
fn empty_weight_vectors_cannot_be_sampled() {
    use bgls_suite::core::categorical;
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    assert!(categorical(&[], &mut rng).is_err());
}

//! The Pauli-observable expectation engine, end to end across the
//! runtime-dispatched backends:
//!
//! * **exact backend agreement** — `Simulator::expectation_value` must
//!   agree with the state-vector reference to 1e-10 on every backend
//!   that supports the circuit (all six on GHZ and random-Clifford
//!   workloads; every non-stabilizer backend on QAOA), despite the five
//!   completely different evaluation strategies (amplitude inner
//!   product, density-matrix trace, CH-form conjugation, MPS transfer
//!   matrix, doubled-network contraction);
//! * **grouping properties** — qubit-wise-commuting grouping is a
//!   partition: groups pairwise qubit-wise commute internally and sum
//!   back to the original observable (proptest over random sums);
//! * **shot path** — the grouped estimator is unbiased (estimates land
//!   within a few standard errors of the exact value), its error
//!   shrinks as `1/sqrt(shots)`, and its per-group samples pass the
//!   chi-squared harness against the rotated Born distribution.

use bgls_suite::apps::{
    chi_squared_fits, maxcut_hamiltonian, qaoa_maxcut_circuit, resolve_qaoa, Graph,
};
use bgls_suite::circuit::{
    generate_random_circuit, Circuit, Gate, Operation, PauliOp, PauliString, PauliSum, Qubit,
    RandomCircuitParams,
};
use bgls_suite::core::{Simulator, SimulatorOptions};
use bgls_suite::statevector::StateVector;
use bgls_suite::{AnyState, BackendKind, SimulatorExt};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 4;
const TOL: f64 = 1e-10;

/// All six backend configurations of the agreement suite: the five
/// defaults plus the bond-capped chain MPS (uncapped on these widths, so
/// still exact).
fn six_backends() -> Vec<BackendKind> {
    let mut kinds = BackendKind::all();
    kinds.push(BackendKind::ChainMps { chi: Some(8) });
    kinds
}

fn runtime_simulator(kind: BackendKind) -> Simulator<AnyState> {
    Simulator::for_backend(kind, N, SimulatorOptions::default()).with_seed(7)
}

fn ghz_circuit() -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..N as u32 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c
}

fn random_clifford_circuit(seed: u64) -> Circuit {
    generate_random_circuit(
        &RandomCircuitParams::clifford(N, 16),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn qaoa_circuit() -> Circuit {
    let g = Graph::new(N, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    resolve_qaoa(&qaoa_maxcut_circuit(&g, 1), &[0.8], &[0.4])
}

/// A mixed-basis observable battery touching every Pauli letter.
fn observable_battery() -> Vec<PauliSum> {
    [
        "Z0",
        "Z0 Z1 + Z2 Z3",
        "X0 X1 X2 X3",
        "Y0 Y1 + 0.5 * Z0 Z2 - 1.25 * X1 + 3",
        "X0 Y1 Z2 + Z0 Y2 X3 - 0.5 * Y0 Y3",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

#[test]
fn exact_expectations_agree_across_all_six_backends_on_ghz() {
    let circuit = ghz_circuit();
    for obs in observable_battery() {
        let reference = runtime_simulator(BackendKind::StateVector)
            .expectation_value(&circuit, &obs)
            .unwrap();
        for kind in six_backends() {
            let got = runtime_simulator(kind)
                .expectation_value(&circuit, &obs)
                .unwrap_or_else(|e| panic!("{kind} on '{obs}': {e}"));
            assert!(
                (got - reference).abs() < TOL,
                "{kind} on '{obs}': {got} vs reference {reference}"
            );
        }
    }
}

#[test]
fn exact_expectations_agree_across_all_six_backends_on_random_clifford() {
    for seed in [3u64, 17, 40] {
        let circuit = random_clifford_circuit(seed);
        for obs in observable_battery() {
            let reference = runtime_simulator(BackendKind::StateVector)
                .expectation_value(&circuit, &obs)
                .unwrap();
            for kind in six_backends() {
                let got = runtime_simulator(kind)
                    .expectation_value(&circuit, &obs)
                    .unwrap_or_else(|e| panic!("{kind} on '{obs}' (seed {seed}): {e}"));
                assert!(
                    (got - reference).abs() < TOL,
                    "{kind} on '{obs}' (seed {seed}): {got} vs {reference}"
                );
            }
        }
    }
}

#[test]
fn exact_expectations_agree_on_qaoa_for_non_stabilizer_backends() {
    let circuit = qaoa_circuit();
    let g = Graph::new(N, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    let mut battery = observable_battery();
    battery.push(maxcut_hamiltonian(&g));
    for obs in battery {
        let reference = runtime_simulator(BackendKind::StateVector)
            .expectation_value(&circuit, &obs)
            .unwrap();
        for kind in six_backends() {
            if kind == BackendKind::ChForm {
                // the QAOA angles are not Clifford; the stabilizer
                // backend rejects the circuit with a typed error
                assert!(runtime_simulator(kind)
                    .expectation_value(&circuit, &obs)
                    .is_err());
                continue;
            }
            let got = runtime_simulator(kind)
                .expectation_value(&circuit, &obs)
                .unwrap_or_else(|e| panic!("{kind} on '{obs}': {e}"));
            assert!(
                (got - reference).abs() < TOL,
                "{kind} on '{obs}': {got} vs {reference}"
            );
        }
    }
}

#[test]
fn exact_expectation_of_noisy_circuit_matches_density_matrix() {
    use bgls_suite::circuit::Channel;
    // pure-state backends fork the channel exactly; the density matrix
    // absorbs it — both must produce the same mixed-state expectation
    let mut c = ghz_circuit();
    c.push(Operation::channel(Channel::depolarizing(0.15).unwrap(), vec![Qubit(1)]).unwrap());
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    let obs: PauliSum = "Z0 + Z1 Z2 + X1 X2 X3".parse().unwrap();
    let reference = runtime_simulator(BackendKind::DensityMatrix)
        .expectation_value(&c, &obs)
        .unwrap();
    for kind in [
        BackendKind::StateVector,
        BackendKind::ChainMps { chi: None },
        BackendKind::LazyNetwork,
    ] {
        let got = runtime_simulator(kind).expectation_value(&c, &obs).unwrap();
        assert!(
            (got - reference).abs() < TOL,
            "{kind}: {got} vs density {reference}"
        );
    }
}

/// A random Pauli string over `N` qubits.
fn random_pauli_string(rng: &mut StdRng) -> PauliString {
    PauliString::from_ops((0..N).filter_map(|q| {
        let op = match rng.gen_range(0usize..4) {
            1 => PauliOp::X,
            2 => PauliOp::Y,
            3 => PauliOp::Z,
            _ => return None,
        };
        Some((q, op))
    }))
    .expect("one op per qubit")
}

/// A random Hermitian sum of 1..10 weighted strings.
fn random_pauli_sum(rng: &mut StdRng) -> PauliSum {
    let terms = rng.gen_range(1usize..10);
    PauliSum::from_terms((0..terms).map(|_| {
        (
            bgls_suite::linalg::C64::real(rng.gen_range(-2.0..2.0)),
            random_pauli_string(rng),
        )
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Qubit-wise-commuting grouping is a faithful partition: members
    /// pairwise qubit-wise commute and the groups sum back to the input.
    #[test]
    fn qwc_grouping_preserves_the_sum(seed in 0u64..100_000) {
        let sum = random_pauli_sum(&mut StdRng::seed_from_u64(seed));
        let groups = sum.qubit_wise_commuting_groups();
        let mut total = PauliSum::new();
        for g in &groups {
            for (_, p) in g.terms() {
                for (_, q) in g.terms() {
                    prop_assert!(p.qubit_wise_commutes(q), "{p} vs {q}");
                }
            }
            // a shared measurement basis must exist
            prop_assert!(g.joint_basis().is_ok());
            total = total.add_sum(g);
        }
        prop_assert_eq!(total, sum);
    }

    /// The grouped shot estimator is unbiased: on a random product
    /// state, the estimate lands within 6 standard errors of the exact
    /// expectation (per-group basis rotations included).
    #[test]
    fn shot_estimator_is_unbiased(seed in 0u64..500) {
        let mut circuit = Circuit::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let sum = random_pauli_sum(&mut rng);
        for q in 0..N as u32 {
            circuit.push(
                Operation::gate(Gate::Ry(rng.gen_range(0.0..3.0).into()), vec![Qubit(q)])
                    .unwrap(),
            );
            circuit.push(
                Operation::gate(Gate::Rz(rng.gen_range(0.0..3.0).into()), vec![Qubit(q)])
                    .unwrap(),
            );
        }
        let sim = Simulator::new(StateVector::zero(N)).with_seed(seed);
        let exact = sim.expectation_value(&circuit, &sum).unwrap();
        let est = sim.estimate_expectation(&circuit, &sum, 2000).unwrap();
        prop_assert!(
            (est.value - exact).abs() < 6.0 * est.std_error + 1e-9,
            "estimate {} vs exact {exact} (se {})", est.value, est.std_error
        );
    }
}

#[test]
fn shot_error_shrinks_as_inverse_sqrt_shots() {
    // seeded scaling test: quadrupling the shots must roughly halve the
    // standard error, and the actual deviation must track it
    let circuit = qaoa_circuit();
    let g = Graph::new(N, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
    let mut obs = maxcut_hamiltonian(&g);
    // add a mixed-basis term so more than one group is exercised
    obs.add_term(
        bgls_suite::linalg::C64::real(0.75),
        "X0 X2".parse().unwrap(),
    );
    let sim = Simulator::new(StateVector::zero(N)).with_seed(11);
    let exact = sim.expectation_value(&circuit, &obs).unwrap();
    let shots = [500u64, 2_000, 8_000, 32_000];
    let mut errors = Vec::new();
    for &s in &shots {
        let est = sim.estimate_expectation(&circuit, &obs, s).unwrap();
        assert!(
            (est.value - exact).abs() < 6.0 * est.std_error,
            "{s} shots: {} vs exact {exact} (se {})",
            est.value,
            est.std_error
        );
        errors.push(est.std_error);
    }
    for w in errors.windows(2) {
        let ratio = w[0] / w[1];
        // 4x shots -> 2x smaller SE, within statistical slack
        assert!((1.4..2.9).contains(&ratio), "SE ratio {ratio}");
    }
}

#[test]
fn rotated_group_samples_pass_chi_squared_against_born() {
    // The estimator's per-group sampling runs draw from the rotated
    // circuit's Born distribution; verify the rotation layer itself with
    // the shared chi-squared harness on the X-basis group of a GHZ
    // state: H^(x)n maps (|0..0> + |1..1>)/sqrt(2) onto the even-parity
    // uniform superposition.
    let mut rotated = ghz_circuit();
    let obs: PauliSum = "X0 X1 X2 X3".parse().unwrap();
    for op in obs.diagonalizing_rotations().unwrap() {
        rotated.push(op);
    }
    let samples = Simulator::new(StateVector::zero(N))
        .with_seed(23)
        .sample_final_bitstrings(&rotated, 20_000)
        .unwrap();
    let mut observed = vec![0u64; 1 << N];
    for b in &samples {
        observed[b.as_u64() as usize] += 1;
    }
    let expected: Vec<f64> = (0..1u64 << N)
        .map(|v| {
            if v.count_ones() % 2 == 0 {
                1.0 / (1 << (N - 1)) as f64
            } else {
                0.0
            }
        })
        .collect();
    assert!(chi_squared_fits(&observed, &expected, 5.0));
    // and every sample scores +1 for the X-string, as GHZ demands
    let all_plus = samples
        .iter()
        .all(|b| obs.terms()[0].1.parity_sign(b.as_u64()) == 1.0);
    assert!(all_plus, "GHZ is a +1 eigenstate of X^(x)n");
}

#[test]
fn estimate_expectation_works_on_every_backend() {
    // the shot path rides the ordinary sampling engine, so every
    // backend estimates the same GHZ observable
    let circuit = ghz_circuit();
    let obs: PauliSum = "Z0 Z1 + X0 X1 X2 X3".parse().unwrap();
    for kind in six_backends() {
        let est = runtime_simulator(kind)
            .estimate_expectation(&circuit, &obs, 3000)
            .unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(est.num_groups, 2, "{kind}");
        assert!(
            (est.value - 2.0).abs() < 6.0 * est.std_error + 0.05,
            "{kind}: {} (se {})",
            est.value,
            est.std_error
        );
    }
}

//! Optimizer agreement suite: the circuit-optimization pipeline must be
//! semantically invisible. Whatever the passes rewrite, the optimized
//! circuit has to produce the same physics as the raw one — exact
//! expectations to 1e-10 on every backend, sampled histograms that fit
//! the raw Born distribution, determinism and idempotence of the
//! rewrite itself, and a lightcone pass that never drops an operation
//! inside the observable's causal cone.

use bgls_suite::apps::{chi_squared_fits, empirical_distribution, total_variation_distance};
use bgls_suite::circuit::{
    generate_random_circuit, lightcone_prune_for, optimize, Circuit, Gate, Operation,
    OptimizeConfig, PauliSum, Qubit, RandomCircuitParams,
};
use bgls_suite::core::{BglsState, BitString, Simulator, SimulatorOptions};
use bgls_suite::plan::{plan, Deliverable, PlannerConfig};
use bgls_suite::{AnyState, BackendKind, SimulatorExt};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;
const TOL: f64 = 1e-10;

fn runtime_simulator(kind: BackendKind, n: usize) -> Simulator<AnyState> {
    Simulator::for_backend(kind, n, SimulatorOptions::default()).with_seed(11)
}

fn six_backends() -> Vec<BackendKind> {
    let mut kinds = BackendKind::all();
    kinds.push(BackendKind::ChainMps { chi: Some(8) });
    kinds
}

/// A seeded universal random circuit (no measurements).
fn universal(seed: u64, n: usize, moments: usize) -> Circuit {
    let params = RandomCircuitParams {
        qubits: n,
        moments,
        op_density: 0.9,
        gate_set: vec![
            Gate::H,
            Gate::T,
            Gate::SqrtX,
            Gate::Ry(0.9.into()),
            Gate::Rz(0.3.into()),
            Gate::Cnot,
            Gate::Cz,
        ],
    };
    generate_random_circuit(&params, &mut StdRng::seed_from_u64(seed))
}

fn clifford(seed: u64, n: usize, moments: usize) -> Circuit {
    generate_random_circuit(
        &RandomCircuitParams::clifford(n, moments),
        &mut StdRng::seed_from_u64(seed),
    )
}

fn observable_battery() -> Vec<PauliSum> {
    ["Z0", "X1", "Z0*Z3", "0.5*X0*X1 + 0.25*Z2 - 1.5*Y1*Z3"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect()
}

/// Exact expectations of raw and optimized circuits agree to 1e-10 on
/// every backend that accepts the circuit. Clifford circuits run under
/// the stabilizer-safe pass subset (so the stabilizer backends still
/// accept the rewritten circuit); universal circuits under the full
/// pipeline on the matrix-capable backends.
#[test]
fn optimized_expectations_agree_on_all_six_backends() {
    let cases: Vec<(Circuit, OptimizeConfig, Vec<BackendKind>)> = vec![
        (
            clifford(21, N, 10),
            OptimizeConfig::default().stabilizer_safe(),
            six_backends(),
        ),
        (
            universal(22, N, 10),
            OptimizeConfig::full(),
            six_backends()
                .into_iter()
                .filter(|&k| k != BackendKind::ChForm)
                .collect(),
        ),
    ];
    for (raw, config, kinds) in cases {
        let (opt, stats) = optimize(&raw, &config);
        assert!(stats.ops_after <= stats.ops_before);
        for obs in observable_battery() {
            for &kind in &kinds {
                let reference = runtime_simulator(kind, N)
                    .expectation_value(&raw, &obs)
                    .unwrap_or_else(|e| panic!("raw on {kind}: {e}"));
                let got = runtime_simulator(kind, N)
                    .expectation_value(&opt, &obs)
                    .unwrap_or_else(|e| panic!("optimized on {kind}: {e}"));
                assert!(
                    (got - reference).abs() < TOL,
                    "{kind} on '{obs}': optimized {got} vs raw {reference}"
                );
            }
        }
    }
}

/// Seeded histograms from the optimized circuit fit the raw circuit's
/// exact Born distribution (chi-squared, 5 sigma) on every backend that
/// accepts the circuit, and stay close in total variation.
#[test]
fn optimized_histograms_fit_the_raw_born_distribution() {
    let raw = universal(33, N, 8);
    let born: Vec<f64> = {
        let state = runtime_simulator(BackendKind::StateVector, N)
            .final_state(&raw)
            .unwrap();
        (0..1u64 << N)
            .map(|x| state.probability(BitString::from_u64(N, x)))
            .collect()
    };
    let (opt, _) = optimize(&raw, &OptimizeConfig::full());
    const REPS: usize = 20_000;
    for kind in six_backends()
        .into_iter()
        .filter(|&k| !matches!(k, BackendKind::ChForm | BackendKind::Tableau))
    {
        let samples = runtime_simulator(kind, N)
            .sample_final_bitstrings(&opt, REPS as u64)
            .unwrap_or_else(|e| panic!("sampling optimized on {kind}: {e}"));
        let emp = empirical_distribution(&samples, N);
        let tvd = total_variation_distance(&emp, &born);
        assert!(tvd < 0.04, "{kind}: TVD {tvd} vs raw Born");
        let observed: Vec<u64> = emp
            .iter()
            .map(|p| (p * REPS as f64).round() as u64)
            .collect();
        assert!(
            chi_squared_fits(&observed, &born, 5.0),
            "{kind}: optimized histogram rejects the raw Born distribution"
        );
    }
}

/// Reference causal cone: reverse-scan from the observable's support,
/// marking every operation that touches a live qubit and folding its
/// support into the live set (measurements are always live).
fn reference_cone(circuit: &Circuit, targets: &[Qubit]) -> Vec<Operation> {
    let ops: Vec<&Operation> = circuit.all_operations().collect();
    let mut live: std::collections::HashSet<Qubit> = targets.iter().copied().collect();
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        let touches = op.support().iter().any(|q| live.contains(q));
        if touches || op.is_measurement() {
            keep[i] = true;
            live.extend(op.support().iter().copied());
        }
    }
    ops.into_iter()
        .zip(keep)
        .filter(|&(_, k)| k)
        .map(|(op, _)| op.clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The optimizer is a pure function of `(circuit, config)` and a
    /// fixpoint: re-running it changes nothing.
    #[test]
    fn optimizer_is_deterministic_and_idempotent(seed in 0u64..10_000, n in 2usize..5) {
        let raw = universal(seed, n, 8);
        for config in [OptimizeConfig::default(), OptimizeConfig::full(), OptimizeConfig::default().stabilizer_safe()] {
            let (a, _) = optimize(&raw, &config);
            let (b, _) = optimize(&raw, &config);
            prop_assert_eq!(a.structural_hash(), b.structural_hash(), "determinism");
            let (fixed, stats) = optimize(&a, &config);
            prop_assert_eq!(a.structural_hash(), fixed.structural_hash(), "idempotence");
            prop_assert_eq!(stats.ops_before, stats.ops_after);
        }
    }

    /// Optimized circuits preserve exact expectations on random
    /// circuits and single-qubit observables (dense reference backend).
    #[test]
    fn optimized_expectations_agree_on_random_circuits(seed in 0u64..10_000, n in 2usize..5, q in 0usize..2) {
        let raw = universal(seed, n, 8);
        let obs: PauliSum = format!("Z{}", q.min(n - 1)).parse().unwrap();
        let (opt, _) = optimize(&raw, &OptimizeConfig::full());
        let reference = runtime_simulator(BackendKind::StateVector, n)
            .expectation_value(&raw, &obs).unwrap();
        let got = runtime_simulator(BackendKind::StateVector, n)
            .expectation_value(&opt, &obs).unwrap();
        prop_assert!((got - reference).abs() < TOL, "{got} vs {reference}");
    }

    /// The lightcone pass keeps exactly the reference causal cone: no
    /// operation inside the cone is ever dropped, and the kept sequence
    /// preserves execution order.
    #[test]
    fn lightcone_never_drops_a_gate_inside_the_cone(seed in 0u64..10_000, n in 2usize..6, q in 0usize..4) {
        let raw = universal(seed, n, 6);
        let targets = [Qubit(q.min(n - 1) as u32)];
        let pruned = lightcone_prune_for(&raw, &targets);
        let expected = reference_cone(&raw, &targets);
        prop_assert_eq!(
            &pruned,
            &Circuit::from_ops(expected.clone()),
            "pruned circuit must equal the reference cone repacked"
        );
        // And the physics check: the observable cannot tell them apart.
        let obs: PauliSum = format!("Z{}", targets[0].0).parse().unwrap();
        let reference = runtime_simulator(BackendKind::StateVector, n)
            .expectation_value(&raw, &obs).unwrap();
        let got = runtime_simulator(BackendKind::StateVector, n.max(pruned.num_qubits()))
            .expectation_value(&pruned, &obs).unwrap();
        prop_assert!((got - reference).abs() < TOL, "{got} vs {reference}");
    }
}

/// Optimizer configuration is part of the plan fingerprint: an
/// optimized plan and a raw plan for the same circuit must never share
/// a result-cache entry, and distinct pass subsets are distinct.
#[test]
fn optimizer_config_distinguishes_plan_fingerprints() {
    let mut bell = Circuit::new();
    bell.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    bell.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    bell.push(Operation::measure(vec![Qubit(0), Qubit(1)], "m").unwrap());
    let deliverable = Deliverable::Histogram { repetitions: 10 };
    let raw_cfg = PlannerConfig {
        optimize: None,
        ..PlannerConfig::default()
    };
    let raw = plan(&bell, &deliverable, &raw_cfg).unwrap();
    let opt = plan(&bell, &deliverable, &PlannerConfig::default()).unwrap();
    assert_eq!(raw.backend.name(), opt.backend.name());
    assert_ne!(
        raw.fingerprint(),
        opt.fingerprint(),
        "optimized and raw plans must never collide in the result cache"
    );
    let configs = [
        OptimizeConfig::off(),
        OptimizeConfig::default(),
        OptimizeConfig::full(),
        OptimizeConfig::default().stabilizer_safe(),
    ];
    for (i, a) in configs.iter().enumerate() {
        for b in configs.iter().skip(i + 1) {
            assert_ne!(a.fingerprint(), b.fingerprint(), "{a:?} vs {b:?}");
        }
    }
}

//! Cross-backend integration: every state representation plugged into the
//! BGLS simulator must produce the same sampling distribution on circuits
//! it supports — the paper's core "state-agnostic" claim (Sec. 3.1).
//!
//! All backends here are selected at *runtime* through [`BackendKind`] /
//! [`AnyState`]: no function signature names a concrete state type, which
//! is exactly the property a multi-backend service front-end relies on.

use bgls_suite::apps::{
    chi_squared_fits, empirical_distribution, qaoa_maxcut_circuit, resolve_qaoa,
    total_variation_distance, Graph,
};
use bgls_suite::circuit::{
    generate_random_circuit, Channel, Circuit, Gate, Operation, Qubit, RandomCircuitParams,
};
use bgls_suite::core::{BglsState, BitString, Simulator, SimulatorOptions};
use bgls_suite::{AnyState, BackendKind, SimulatorExt};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;
const REPS: u64 = 20_000;
const TVD_TOL: f64 = 0.03;

fn runtime_simulator(kind: BackendKind) -> Simulator<AnyState> {
    Simulator::for_backend(kind, N, SimulatorOptions::default()).with_seed(99)
}

fn sample_distribution(kind: BackendKind, circuit: &Circuit) -> Vec<f64> {
    let samples = runtime_simulator(kind)
        .sample_final_bitstrings(circuit, REPS)
        .unwrap_or_else(|e| panic!("sampling on {kind}: {e}"));
    empirical_distribution(&samples, N)
}

/// Exact Born distribution of `circuit`, computed through the same
/// runtime dispatch layer (state-vector backend, no concrete type named).
fn born_distribution(circuit: &Circuit) -> Vec<f64> {
    let state = runtime_simulator(BackendKind::StateVector)
        .final_state(circuit)
        .expect("unitary circuit");
    (0..1u64 << N)
        .map(|x| state.probability(BitString::from_u64(N, x)))
        .collect()
}

fn clifford_circuit() -> Circuit {
    let mut rng = StdRng::seed_from_u64(12);
    generate_random_circuit(&RandomCircuitParams::clifford(N, 12), &mut rng)
}

fn ghz_circuit() -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..N as u32 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    c
}

/// A bound one-layer QAOA MaxCut circuit on the N-vertex ring.
fn qaoa_circuit() -> Circuit {
    let edges: Vec<(usize, usize)> = (0..N).map(|v| (v, (v + 1) % N)).collect();
    let graph = Graph::new(N, edges);
    resolve_qaoa(&qaoa_maxcut_circuit(&graph, 1), &[0.7], &[0.4])
}

fn universal_circuit() -> Circuit {
    let params = RandomCircuitParams {
        qubits: N,
        moments: 10,
        op_density: 0.9,
        gate_set: vec![
            Gate::H,
            Gate::T,
            Gate::Ry(0.7.into()),
            Gate::Cnot,
            Gate::Cz,
            Gate::Rzz(0.5.into()),
        ],
    };
    let mut rng = StdRng::seed_from_u64(13);
    generate_random_circuit(&params, &mut rng)
}

#[test]
fn all_five_backends_agree_on_clifford_circuits() {
    let circuit = clifford_circuit();
    let reference = born_distribution(&circuit);
    for kind in BackendKind::all() {
        let d = sample_distribution(kind, &circuit);
        let tvd = total_variation_distance(&d, &reference);
        assert!(tvd < TVD_TOL, "{kind}: TVD {tvd} vs ideal");
    }
}

#[test]
fn dense_and_tensor_backends_agree_on_universal_circuits() {
    let circuit = universal_circuit();
    let reference = born_distribution(&circuit);
    // the CH form is Clifford-only by design; every other backend must
    // handle the universal gate set
    for kind in BackendKind::all()
        .into_iter()
        .filter(|&k| k != BackendKind::ChForm)
    {
        let d = sample_distribution(kind, &circuit);
        let tvd = total_variation_distance(&d, &reference);
        assert!(tvd < TVD_TOL, "{kind}: TVD {tvd} vs ideal");
    }
}

#[test]
fn run_interface_parity_across_backends() {
    // the Cirq-style run() must give the same histogram semantics everywhere
    let mut circuit = clifford_circuit();
    circuit.push(Operation::measure(Qubit::range(N), "z").unwrap());
    let hv = Simulator::for_backend(BackendKind::StateVector, N, SimulatorOptions::default())
        .with_seed(5)
        .run(&circuit, 5000)
        .unwrap();
    let hc = Simulator::for_backend(BackendKind::ChForm, N, SimulatorOptions::default())
        .with_seed(5)
        .run(&circuit, 5000)
        .unwrap();
    let dv = hv.histogram("z").unwrap().to_distribution();
    let dc = hc.histogram("z").unwrap().to_distribution();
    assert!(total_variation_distance(&dv, &dc) < TVD_TOL);
    assert_eq!(hv.repetitions(), 5000);
    assert_eq!(hc.histogram("z").unwrap().total(), 5000);
}

#[test]
fn skip_diagonal_ablation_leaves_distribution_unchanged() {
    let circuit = universal_circuit();
    let reference = born_distribution(&circuit);
    let sim = Simulator::for_backend(
        BackendKind::StateVector,
        N,
        SimulatorOptions {
            seed: Some(3),
            skip_diagonal_updates: true,
            ..Default::default()
        },
    );
    let samples = sim.sample_final_bitstrings(&circuit, REPS).unwrap();
    let d = empirical_distribution(&samples, N);
    assert!(total_variation_distance(&d, &reference) < TVD_TOL);
}

/// GHZ preparation followed by a random Clifford tail: every
/// runtime-selected backend (including a chi-capped chain MPS, which is
/// exact here because Clifford circuits on 4 qubits stay under the cap)
/// must agree within sampling tolerance.
#[test]
fn runtime_selected_backends_agree_on_ghz_plus_random_clifford() {
    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..N as u32 {
        circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    let mut rng = StdRng::seed_from_u64(21);
    for op in
        generate_random_circuit(&RandomCircuitParams::clifford(N, 8), &mut rng).all_operations()
    {
        circuit.push(op.clone());
    }

    let reference = born_distribution(&circuit);
    let mut kinds = BackendKind::all();
    kinds.push(BackendKind::ChainMps { chi: Some(8) });
    for kind in kinds {
        let d = sample_distribution(kind, &circuit);
        let tvd = total_variation_distance(&d, &reference);
        assert!(tvd < TVD_TOL, "{kind}: TVD {tvd} vs ideal");
    }
}

/// A Kraus-channel circuit through the runtime dispatch layer: the
/// density-matrix backend keeps the deterministic-channel (multiplicity
/// map) path while the state vector falls back to per-sample
/// trajectories — and both must agree with each other.
#[test]
fn kraus_channels_agree_between_trajectories_and_density_matrix() {
    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    circuit.push(Operation::channel(Channel::depolarizing(0.15).unwrap(), vec![Qubit(0)]).unwrap());
    for i in 1..N as u32 {
        circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
        circuit.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![Qubit(i)]).unwrap());
    }
    circuit.push(Operation::measure(Qubit::range(N), "z").unwrap());

    // capability is queryable before running: only the density matrix
    // applies channels deterministically
    for kind in BackendKind::all() {
        assert_eq!(
            AnyState::zero(kind, N).channels_are_deterministic(),
            kind == BackendKind::DensityMatrix,
            "{kind}"
        );
    }

    let exact = Simulator::for_backend(BackendKind::DensityMatrix, N, SimulatorOptions::default())
        .with_seed(7)
        .run(&circuit, REPS)
        .unwrap();
    let traj = Simulator::for_backend(BackendKind::StateVector, N, SimulatorOptions::default())
        .with_seed(8)
        .run(&circuit, REPS)
        .unwrap();
    let de = exact.histogram("z").unwrap().to_distribution();
    let dt = traj.histogram("z").unwrap().to_distribution();
    let tvd = total_variation_distance(&de, &dt);
    assert!(tvd < TVD_TOL, "trajectories vs exact channels: TVD {tvd}");
}

// ---- batched hot path: determinism and statistical agreement ----------

/// The three circuit families of the batched-path acceptance tests. The
/// Clifford and QAOA entries exercise, respectively, the CH-form's
/// default batch loop and the MPS environment-sharing sweep.
fn agreement_circuits() -> Vec<(&'static str, Circuit)> {
    vec![
        ("ghz", ghz_circuit()),
        ("random-clifford", clifford_circuit()),
        ("qaoa", qaoa_circuit()),
    ]
}

fn backends_for(name: &str) -> Vec<BackendKind> {
    // the CH form is Clifford-only; QAOA's Rzz angles are not on the grid
    BackendKind::all()
        .into_iter()
        .filter(|&k| !(name == "qaoa" && k == BackendKind::ChForm))
        .collect()
}

/// Batch vs scalar candidate evaluation is bit-identical under a fixed
/// seed: the batched hook must return exactly the scalar hook's values,
/// so the multinomial splits consume identical RNG streams.
#[test]
fn batched_and_scalar_paths_sample_identically_on_every_backend() {
    for (name, circuit) in agreement_circuits() {
        for kind in backends_for(name) {
            let sample = |batch: bool| {
                let opts = SimulatorOptions {
                    seed: Some(77),
                    batch_probabilities: batch,
                    ..Default::default()
                };
                Simulator::for_backend(kind, N, opts)
                    .sample_final_bitstrings(&circuit, 4000)
                    .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"))
            };
            assert_eq!(
                sample(true),
                sample(false),
                "{name} on {kind}: batched path diverged from scalar path"
            );
        }
    }
}

/// Parallel and sequential multiplicity-map redistribution are
/// bit-identical: every map entry draws from its own seed-derived stream.
#[test]
fn parallel_redistribution_is_bit_identical_to_sequential() {
    for (name, circuit) in agreement_circuits() {
        for kind in backends_for(name) {
            let sample = |parallel: bool| {
                let opts = SimulatorOptions {
                    seed: Some(78),
                    parallel_redistribution: parallel,
                    ..Default::default()
                };
                Simulator::for_backend(kind, N, opts)
                    .sample_final_bitstrings(&circuit, 4000)
                    .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"))
            };
            assert_eq!(sample(true), sample(false), "{name} on {kind}");
        }
    }
}

/// Fused circuits sample from the same distribution as unfused ones.
/// Fusion changes the executed gate sequence (and hence the seeded RNG
/// stream), so agreement is statistical: fused counts are chi-squared
/// tested against the exact Born weights, and the fused run itself is
/// seed-reproducible. The CH form participates on Clifford circuits —
/// fused `U1` runs of Clifford gates are re-recognized as Clifford.
#[test]
fn fused_circuits_agree_with_unfused_distributions() {
    for (name, circuit) in agreement_circuits() {
        let reference = born_distribution(&circuit);
        for kind in backends_for(name) {
            let run = |fuse: bool, seed: u64| {
                let opts = SimulatorOptions {
                    seed: Some(seed),
                    fuse_gates: fuse,
                    ..Default::default()
                };
                Simulator::for_backend(kind, N, opts)
                    .sample_final_bitstrings(&circuit, REPS)
                    .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"))
            };
            let histogram = |samples: &[BitString]| {
                let mut counts = vec![0u64; 1 << N];
                for b in samples {
                    counts[b.as_u64() as usize] += 1;
                }
                counts
            };
            let fused = run(true, 79);
            let unfused = run(false, 79);
            assert!(
                chi_squared_fits(&histogram(&fused), &reference, 5.0),
                "{name} on {kind}: fused sampling deviates from Born distribution"
            );
            assert!(
                chi_squared_fits(&histogram(&unfused), &reference, 5.0),
                "{name} on {kind}: unfused sampling deviates from Born distribution"
            );
            assert_eq!(
                fused,
                run(true, 79),
                "{name} on {kind}: fused run not seed-stable"
            );
        }
    }
}

/// GHZ through `run()` with the batched path: only the two legal
/// outcomes, and their counts pass the shared chi-squared check against
/// the ideal 50/50 split (replacing ad-hoc "loose 5-sigma" windows).
#[test]
fn ghz_outcome_counts_pass_chi_squared_on_every_backend() {
    let mut circuit = ghz_circuit();
    circuit.push(Operation::measure(Qubit::range(N), "z").unwrap());
    let all_ones = (1u64 << N) - 1;
    for kind in BackendKind::all() {
        let r = Simulator::for_backend(kind, N, SimulatorOptions::default())
            .with_seed(80)
            .run(&circuit, 20_000)
            .unwrap();
        let h = r.histogram("z").unwrap();
        let zeros = h.count_value(0);
        let ones = h.count_value(all_ones);
        assert_eq!(zeros + ones, 20_000, "{kind}: non-GHZ outcome sampled");
        assert!(
            chi_squared_fits(&[zeros, ones], &[1.0, 1.0], 5.0),
            "{kind}: GHZ branch counts {zeros}/{ones} fail chi-squared"
        );
    }
}

//! Cross-backend integration: every state representation plugged into the
//! BGLS simulator must produce the same sampling distribution on circuits
//! it supports — the paper's core "state-agnostic" claim (Sec. 3.1).

use bgls_suite::apps::{empirical_distribution, total_variation_distance};
use bgls_suite::circuit::{
    generate_random_circuit, Circuit, Gate, Operation, Qubit, RandomCircuitParams,
};
use bgls_suite::core::{BglsState, Simulator};
use bgls_suite::mps::{ChainMps, LazyNetworkState, MpsOptions};
use bgls_suite::stabilizer::ChForm;
use bgls_suite::statevector::{DensityMatrix, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 4;
const REPS: u64 = 20_000;
const TVD_TOL: f64 = 0.03;

fn sample_distribution<S: BglsState + Send + Sync>(state: S, circuit: &Circuit) -> Vec<f64> {
    let samples = Simulator::new(state)
        .with_seed(99)
        .sample_final_bitstrings(circuit, REPS)
        .expect("sampling");
    empirical_distribution(&samples, N)
}

fn clifford_circuit() -> Circuit {
    let mut rng = StdRng::seed_from_u64(12);
    generate_random_circuit(&RandomCircuitParams::clifford(N, 12), &mut rng)
}

fn universal_circuit() -> Circuit {
    let params = RandomCircuitParams {
        qubits: N,
        moments: 10,
        op_density: 0.9,
        gate_set: vec![
            Gate::H,
            Gate::T,
            Gate::Ry(0.7.into()),
            Gate::Cnot,
            Gate::Cz,
            Gate::Rzz(0.5.into()),
        ],
    };
    let mut rng = StdRng::seed_from_u64(13);
    generate_random_circuit(&params, &mut rng)
}

#[test]
fn all_five_backends_agree_on_clifford_circuits() {
    let circuit = clifford_circuit();
    let reference = StateVector::from_circuit(&circuit, N)
        .unwrap()
        .born_distribution();

    let dists = [
        ("statevector", sample_distribution(StateVector::zero(N), &circuit)),
        ("density", sample_distribution(DensityMatrix::zero(N), &circuit)),
        ("chform", sample_distribution(ChForm::zero(N), &circuit)),
        (
            "chain_mps",
            sample_distribution(ChainMps::zero(N, MpsOptions::exact()), &circuit),
        ),
        ("lazy", sample_distribution(LazyNetworkState::zero(N), &circuit)),
    ];
    for (name, d) in &dists {
        let tvd = total_variation_distance(d, &reference);
        assert!(tvd < TVD_TOL, "{name}: TVD {tvd} vs ideal");
    }
}

#[test]
fn dense_and_tensor_backends_agree_on_universal_circuits() {
    let circuit = universal_circuit();
    let reference = StateVector::from_circuit(&circuit, N)
        .unwrap()
        .born_distribution();
    for (name, d) in [
        ("statevector", sample_distribution(StateVector::zero(N), &circuit)),
        ("density", sample_distribution(DensityMatrix::zero(N), &circuit)),
        (
            "chain_mps",
            sample_distribution(ChainMps::zero(N, MpsOptions::exact()), &circuit),
        ),
        ("lazy", sample_distribution(LazyNetworkState::zero(N), &circuit)),
    ] {
        let tvd = total_variation_distance(&d, &reference);
        assert!(tvd < TVD_TOL, "{name}: TVD {tvd} vs ideal");
    }
}

#[test]
fn run_interface_parity_across_backends() {
    // the Cirq-style run() must give the same histogram semantics everywhere
    let mut circuit = clifford_circuit();
    circuit.push(Operation::measure(Qubit::range(N), "z").unwrap());
    let hv = Simulator::new(StateVector::zero(N))
        .with_seed(5)
        .run(&circuit, 5000)
        .unwrap();
    let hc = Simulator::new(ChForm::zero(N))
        .with_seed(5)
        .run(&circuit, 5000)
        .unwrap();
    let dv = hv.histogram("z").unwrap().to_distribution();
    let dc = hc.histogram("z").unwrap().to_distribution();
    assert!(total_variation_distance(&dv, &dc) < TVD_TOL);
    assert_eq!(hv.repetitions(), 5000);
    assert_eq!(hc.histogram("z").unwrap().total(), 5000);
}

#[test]
fn skip_diagonal_ablation_leaves_distribution_unchanged() {
    use bgls_suite::core::SimulatorOptions;
    let circuit = universal_circuit();
    let reference = StateVector::from_circuit(&circuit, N)
        .unwrap()
        .born_distribution();
    let sim = Simulator::new(StateVector::zero(N)).with_options(SimulatorOptions {
        seed: Some(3),
        skip_diagonal_updates: true,
        ..Default::default()
    });
    let samples = sim.sample_final_bitstrings(&circuit, REPS).unwrap();
    let d = empirical_distribution(&samples, N);
    assert!(total_variation_distance(&d, &reference) < TVD_TOL);
}

//! Determinism suite for the sharded dense-state kernels.
//!
//! Three contracts, each load-bearing for the suite's bit-identity
//! guarantee (see `docs/ARCHITECTURE.md`, "Determinism contracts"):
//!
//! 1. **Sharded vs flat**: circuits evolved through the shard-blocked,
//!    pass-fused kernels agree with a plain flat-loop reference — bit
//!    for bit when the gate's qubit order matches the kernel's
//!    positional order, and to 1e-12 when the kernel permutes a 2q
//!    matrix into positional order (the 4-term accumulation order
//!    changes, nothing else).
//! 2. **Thread counts**: amplitude bits, norms, Pauli expectations, and
//!    marginal masses are identical under `RAYON_NUM_THREADS=1/2/8`.
//!    The vendored Rayon caches its thread count per process, so each
//!    count runs in a spawned child process (`child_emit`) that writes
//!    a digest of every result bit.
//! 3. **Forced ISA paths**: the scalar, AVX2, and AVX-512 kernels (and
//!    NEON on aarch64) return the same bits for gates and reductions.

use bgls_suite::circuit::{
    generate_random_circuit, Circuit, Gate, OpKind, Operation, PauliString, Qubit,
    RandomCircuitParams,
};
use bgls_suite::core::{BglsState, BitString, MarginalState};
use bgls_suite::linalg::{Matrix, C64};
use bgls_suite::statevector::{DensityMatrix, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;
use std::sync::Arc;

fn matrix_gate(u: Matrix, k: usize) -> Gate {
    match k {
        1 => Gate::U1(Arc::new(u)),
        2 => Gate::U2(Arc::new(u)),
        _ => Gate::U(Arc::new(u), k),
    }
}

// ---------------------------------------------------------------- circuits

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for q in 0..n - 1 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(q as u32), Qubit(q as u32 + 1)]).unwrap());
    }
    c
}

fn random_clifford(n: usize, moments: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_random_circuit(&RandomCircuitParams::clifford(n, moments), &mut rng)
}

/// One QAOA layer on the ring graph: H wall, Rzz chain, Rx wall.
fn qaoa_ring(n: usize) -> Circuit {
    let mut c = Circuit::new();
    for q in 0..n {
        c.push(Operation::gate(Gate::H, vec![Qubit(q as u32)]).unwrap());
    }
    for q in 0..n {
        let a = q as u32;
        let b = ((q + 1) % n) as u32;
        c.push(Operation::gate(Gate::Rzz((-0.42).into()), vec![Qubit(a), Qubit(b)]).unwrap());
    }
    for q in 0..n {
        c.push(Operation::gate(Gate::Rx(1.3.into()), vec![Qubit(q as u32)]).unwrap());
    }
    c
}

fn gate_ops(circuit: &Circuit) -> Vec<(Matrix, Vec<usize>)> {
    circuit
        .all_operations()
        .filter_map(|op| match &op.kind {
            OpKind::Gate(g) => Some((
                g.unitary().unwrap(),
                op.support().iter().map(|q| q.index()).collect(),
            )),
            _ => None,
        })
        .collect()
}

// --------------------------------------------------------------- reference

/// The pre-shard flat kernel: for each gate subset, gather the `2^k`
/// partner amplitudes, multiply by the unitary row by row with
/// left-to-right accumulation (gate bit `k-1-j` maps to `qubits[j]`).
#[allow(clippy::assign_op_pattern)] // verbatim copy of the legacy loop
fn reference_apply(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
    let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
    let k = qubits.len();
    let dim = 1usize << k;
    let offsets: Vec<usize> = (0..dim)
        .map(|g| {
            let mut off = 0;
            for (j, &m) in masks.iter().enumerate() {
                if (g >> (k - 1 - j)) & 1 == 1 {
                    off |= m;
                }
            }
            off
        })
        .collect();
    let all: usize = masks.iter().sum();
    for base in 0..amps.len() {
        if base & all != 0 {
            continue;
        }
        let vals: Vec<C64> = offsets.iter().map(|&o| amps[base | o]).collect();
        for (row, &off) in offsets.iter().enumerate() {
            let mut acc = u[(row, 0)] * vals[0];
            for (col, v) in vals.iter().enumerate().skip(1) {
                acc = acc + u[(row, col)] * *v;
            }
            amps[base | off] = acc;
        }
    }
}

fn reference_evolve(circuit: &Circuit, n: usize) -> Vec<C64> {
    let mut amps = vec![C64::ZERO; 1usize << n];
    amps[0] = C64::ONE;
    for (u, qs) in gate_ops(circuit) {
        reference_apply(&mut amps, &u, &qs);
    }
    amps
}

fn max_abs_diff(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).norm_sqr().sqrt())
        .fold(0.0, f64::max)
}

// ------------------------------------------------------ sharded vs flat

#[test]
fn sharded_path_matches_flat_reference() {
    // Sizes straddle the shard boundary (2^14 amplitudes): 10q fits in
    // one shard, 15q and 18q need cross-shard pairing and quads.
    for (circuit, n) in [
        (ghz(10), 10),
        (ghz(15), 15),
        (random_clifford(15, 8, 7), 15),
        (random_clifford(18, 6, 11), 18),
        (qaoa_ring(16), 16),
    ] {
        let sv = StateVector::from_circuit(&circuit, n).unwrap();
        let want = reference_evolve(&circuit, n);
        let diff = max_abs_diff(sv.amplitudes(), &want);
        assert!(
            diff <= 1e-12,
            "{n}q circuit: sharded path diverged from flat reference by {diff:e}"
        );
    }
}

#[test]
fn sharded_path_is_bitwise_for_positional_gate_order() {
    // When a 2q gate already lists the higher qubit first, the kernel
    // uses the matrix as-is and every arithmetic step matches the flat
    // reference exactly — 0 ulp, across the shard boundary.
    let n = 16;
    let mut circuit = Circuit::new();
    for q in 0..n {
        circuit.push(Operation::gate(Gate::H, vec![Qubit(q as u32)]).unwrap());
    }
    for q in 0..n - 1 {
        circuit.push(
            Operation::gate(
                Gate::Rzz(0.37.into()),
                vec![Qubit(q as u32 + 1), Qubit(q as u32)],
            )
            .unwrap(),
        );
    }
    circuit.push(Operation::gate(Gate::T, vec![Qubit(3)]).unwrap());
    let sv = StateVector::from_circuit(&circuit, n).unwrap();
    let want = reference_evolve(&circuit, n);
    for (i, (got, want)) in sv.amplitudes().iter().zip(&want).enumerate() {
        assert!(
            got.re.to_bits() == want.re.to_bits() && got.im.to_bits() == want.im.to_bits(),
            "bit mismatch at index {i}: {got:?} vs {want:?}"
        );
    }
}

#[test]
fn fused_from_circuit_matches_gate_by_gate_bitwise() {
    // Pass fusion changes memory traffic, never values: from_circuit
    // (fused passes) must equal op-by-op apply_gate bit for bit.
    for (circuit, n) in [
        (ghz(15), 15),
        (random_clifford(16, 6, 3), 16),
        (qaoa_ring(15), 15),
    ] {
        let fused = StateVector::from_circuit(&circuit, n).unwrap();
        let mut unfused = StateVector::zero(n);
        for (u, qs) in gate_ops(&circuit) {
            // route through the same compiled path, one op at a time
            let g = matrix_gate(u, qs.len());
            unfused.apply_gate(&g, &qs).unwrap();
        }
        for (i, (a, b)) in fused
            .amplitudes()
            .iter()
            .zip(unfused.amplitudes())
            .enumerate()
        {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "{n}q: fused/unfused bit mismatch at {i}"
            );
        }
    }
}

#[test]
fn density_matrix_sharded_path_matches_statevector() {
    // 10 qubits vectorize to 2^20 entries — 64 shards — so the density
    // backend crosses the shard boundary even at modest widths.
    let n = 10;
    let circuit = random_clifford(n, 6, 19);
    let mut dm = DensityMatrix::zero(n);
    for (u, qs) in gate_ops(&circuit) {
        let k = qs.len();
        dm.apply_gate(&matrix_gate(u, k), &qs).unwrap();
    }
    let want = reference_evolve(&circuit, n);
    for v in 0..1u64 << n {
        let p = want[v as usize].norm_sqr();
        let got = dm.probability(BitString::from_u64(n, v));
        assert!(
            (got - p).abs() <= 1e-12,
            "probability mismatch at basis state {v}: {got} vs {p}"
        );
    }
    assert!((dm.purity() - 1.0).abs() < 1e-10);
    assert!((dm.trace() - 1.0).abs() < 1e-12);
}

// -------------------------------------------------- thread-count digests

fn fnv1a(digest: &mut u64, bits: u64) {
    for byte in bits.to_le_bytes() {
        *digest ^= byte as u64;
        *digest = digest.wrapping_mul(0x100000001b3);
    }
}

/// Digest of every observable bit a scenario produces: amplitudes (or
/// basis probabilities for the density backend), squared norm, a Pauli
/// expectation, and a marginal mass.
fn scenario_digest(scenario: &str) -> u64 {
    let (kind, n) = scenario.split_once(':').expect("scenario kind:n");
    let n: usize = n.parse().expect("scenario width");
    let mut digest = 0xcbf29ce484222325u64;
    if kind == "density" {
        let mut dm = DensityMatrix::zero(n);
        for (u, qs) in gate_ops(&random_clifford(n, 6, 19)) {
            let k = qs.len();
            dm.apply_gate(&matrix_gate(u, k), &qs).unwrap();
        }
        for v in 0..1u64 << n {
            fnv1a(
                &mut digest,
                dm.probability(BitString::from_u64(n, v)).to_bits(),
            );
        }
        fnv1a(&mut digest, dm.purity().to_bits());
        let exp = dm
            .expectation(&"X0 Z1".parse::<PauliString>().unwrap())
            .unwrap();
        fnv1a(&mut digest, exp.to_bits());
        fnv1a(
            &mut digest,
            dm.marginal_probability(&[(0, true), (n - 1, false)])
                .to_bits(),
        );
        return digest;
    }
    let circuit = match kind {
        "ghz" => ghz(n),
        "clifford" => random_clifford(n, 6, 11),
        "qaoa" => qaoa_ring(n),
        other => panic!("unknown scenario kind {other}"),
    };
    let sv = StateVector::from_circuit(&circuit, n).unwrap();
    for a in sv.amplitudes() {
        fnv1a(&mut digest, a.re.to_bits());
        fnv1a(&mut digest, a.im.to_bits());
    }
    fnv1a(&mut digest, sv.norm_sqr().to_bits());
    let obs: PauliString = format!("X0 Z{} Y{}", n / 2, n - 1).parse().unwrap();
    fnv1a(&mut digest, sv.expectation(&obs).unwrap().to_bits());
    let marginal = sv.marginal_probability(&[(0, false), (n / 2, true), (n - 1, true)]);
    fnv1a(&mut digest, marginal.to_bits());
    digest
}

/// Child half of the subprocess protocol: when `BGLS_CHILD_SCENARIO` is
/// set, compute that scenario's digest under whatever `RAYON_NUM_THREADS`
/// the parent chose and write it to `BGLS_CHILD_OUT`. A bare test run
/// (no env) is a no-op success.
#[test]
fn child_emit() {
    let Ok(scenario) = std::env::var("BGLS_CHILD_SCENARIO") else {
        return;
    };
    let out = std::env::var("BGLS_CHILD_OUT").expect("BGLS_CHILD_OUT set alongside scenario");
    let digest = scenario_digest(&scenario);
    std::fs::write(out, format!("{digest:016x}")).expect("write child digest");
}

#[test]
fn results_are_bit_identical_across_thread_counts() {
    // The vendored Rayon reads RAYON_NUM_THREADS once per process, so
    // each thread count gets its own child process running `child_emit`.
    let exe = std::env::current_exe().expect("test binary path");
    // Debug builds (plain `cargo test`) run the same contract on smaller
    // states; release CI covers the full 22-qubit spread.
    let scenarios: &[&str] = if cfg!(debug_assertions) {
        &["ghz:16", "clifford:12", "qaoa:12", "density:10"]
    } else {
        &["ghz:22", "clifford:18", "qaoa:16", "density:10"]
    };
    for scenario in scenarios {
        let mut digests: Vec<String> = Vec::new();
        for threads in ["1", "2", "8"] {
            let out = std::env::temp_dir().join(format!(
                "bgls_shard_digest_{}_{}_{threads}",
                std::process::id(),
                scenario.replace(':', "_"),
            ));
            let status = Command::new(&exe)
                .args(["--exact", "child_emit", "--nocapture"])
                .env("RAYON_NUM_THREADS", threads)
                .env("BGLS_CHILD_SCENARIO", scenario)
                .env("BGLS_CHILD_OUT", &out)
                .status()
                .expect("spawn child test process");
            assert!(
                status.success(),
                "{scenario}: child failed at {threads} threads"
            );
            let digest = std::fs::read_to_string(&out).expect("read child digest");
            let _ = std::fs::remove_file(&out);
            digests.push(digest);
        }
        assert!(
            digests.iter().all(|d| d == &digests[0]),
            "{scenario}: digests differ across RAYON_NUM_THREADS=1/2/8: {digests:?}"
        );
    }
}

// ------------------------------------------------------- forced ISA paths

#[test]
fn forced_isa_paths_agree_bitwise() {
    use bgls_suite::linalg::dispatch::{self, Isa};
    // Gates and reductions over a 15-qubit state: every kernel shape
    // (1q low/high, 2q local/mixed/cross, norm, marginal, expectation)
    // gets exercised, under each ISA the host supports. All paths share
    // one arithmetic contract, so agreement is exact — 0 ulp.
    let circuit = random_clifford(15, 8, 23);
    let run = || {
        let sv = StateVector::from_circuit(&circuit, 15).unwrap();
        let obs: PauliString = "Y1 X7 Z14".parse().unwrap();
        (
            sv.amplitudes().to_vec(),
            sv.norm_sqr(),
            sv.expectation(&obs).unwrap(),
            sv.marginal_probability(&[(2, true), (14, false)]),
        )
    };
    dispatch::force_isa(Isa::Scalar).expect("scalar always available");
    let (amps0, norm0, exp0, marg0) = run();
    for isa in [Isa::Avx2, Isa::Avx512, Isa::Neon] {
        if !dispatch::isa_supported(isa) {
            continue;
        }
        dispatch::force_isa(isa).unwrap();
        let (amps, norm, exp, marg) = run();
        for (i, (a, b)) in amps.iter().zip(&amps0).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "{isa:?}: amplitude bit mismatch vs scalar at {i}"
            );
        }
        assert_eq!(norm.to_bits(), norm0.to_bits(), "{isa:?}: norm bits");
        assert_eq!(exp.to_bits(), exp0.to_bits(), "{isa:?}: expectation bits");
        assert_eq!(marg.to_bits(), marg0.to_bits(), "{isa:?}: marginal bits");
    }
    // leave the process on the detected path for any tests that follow
    dispatch::force_isa(dispatch::detected_isa()).unwrap();
}

//! Property suite for the purified-MPS mixed-state backend.
//!
//! Three contracts:
//!
//! 1. **Exact agreement**: on random channel circuits of up to 10
//!    qubits, the uncapped purified MPS matches the density matrix to
//!    1e-10 on every basis probability and on Pauli expectations —
//!    including non-unital channels (amplitude damping) and two-qubit
//!    depolarizing, which the trajectory samplers cannot serve.
//! 2. **Truncation monotonicity**: the final-state error against the
//!    exact chain is non-increasing in the bond cap, and a cap wide
//!    enough for the circuit reproduces the exact state. (The
//!    *cumulative discarded weight* is deliberately not asserted
//!    monotone: a tightly capped chain collapses toward a product state
//!    and stops discarding, so that quantity is not ordered across
//!    caps.)
//! 3. **Thread-count determinism**: seeded noisy sampling through the
//!    runtime-dispatched purified backend digests identically under
//!    `RAYON_NUM_THREADS=1/4` (child processes, since the vendored
//!    Rayon pins its pool per process).

use bgls_suite::circuit::{Channel, Gate, PauliOp, PauliString};
use bgls_suite::core::{BglsState, BitString, SimulatorOptions};
use bgls_suite::mps::{PurifiedMps, PurifiedOptions};
use bgls_suite::statevector::DensityMatrix;
use bgls_suite::BackendKind;
use bgls_testkit::{circuit_for, sample_digest, CircuitClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::Command;

/// One random operation applied to the purified chain and (when given)
/// mirrored onto a density matrix. Gates and channels are drawn from
/// pools both backends apply deterministically, so the comparison is
/// exact, not statistical.
fn apply_random_op(
    rng: &mut StdRng,
    n: usize,
    pmps: &mut PurifiedMps,
    mut dm: Option<&mut DensityMatrix>,
) -> Result<(), bgls_suite::core::SimError> {
    let q = rng.gen_range(0..n);
    let q2 = if n > 1 {
        let mut other = rng.gen_range(0..n - 1);
        if other >= q {
            other += 1;
        }
        other
    } else {
        q
    };
    match rng.gen_range(0..8u8) {
        0 => {
            let gate = [Gate::H, Gate::S, Gate::T][rng.gen_range(0..3usize)].clone();
            pmps.apply_gate(&gate, &[q])?;
            dm.map_or(Ok(()), |d| d.apply_gate(&gate, &[q]))
        }
        1 => {
            let gate = Gate::Ry(rng.gen_range(-1.5..1.5).into());
            pmps.apply_gate(&gate, &[q])?;
            dm.map_or(Ok(()), |d| d.apply_gate(&gate, &[q]))
        }
        2 | 3 => {
            let gate = if rng.gen() { Gate::Cnot } else { Gate::Cz };
            pmps.apply_gate(&gate, &[q, q2])?;
            dm.map_or(Ok(()), |d| d.apply_gate(&gate, &[q, q2]))
        }
        4 => both_channel(
            Channel::depolarizing(rng.gen_range(0.01..0.3)),
            &[q],
            pmps,
            dm.as_deref_mut(),
        ),
        5 => both_channel(
            Channel::amplitude_damping(rng.gen_range(0.05..0.4)),
            &[q],
            pmps,
            dm.as_deref_mut(),
        ),
        6 => both_channel(
            Channel::bit_flip(rng.gen_range(0.01..0.2)),
            &[q],
            pmps,
            dm.as_deref_mut(),
        ),
        _ => both_channel(
            Channel::depolarizing2(rng.gen_range(0.01..0.2)),
            &[q, q2],
            pmps,
            dm,
        ),
    }
}

fn both_channel(
    ch: Result<Channel, bgls_suite::circuit::CircuitError>,
    qs: &[usize],
    pmps: &mut PurifiedMps,
    dm: Option<&mut DensityMatrix>,
) -> Result<(), bgls_suite::core::SimError> {
    let ch = ch.expect("valid channel probability");
    // both backends are deterministic: the rng argument is never drawn
    let mut dummy = StdRng::seed_from_u64(0);
    pmps.apply_kraus(&ch, qs, &mut dummy)?;
    if let Some(d) = dm {
        d.apply_kraus(&ch, qs, &mut dummy)?;
    }
    Ok(())
}

fn random_pauli(rng: &mut StdRng, n: usize) -> PauliString {
    PauliString::from_ops((0..n).filter_map(|q| match rng.gen_range(0..4u8) {
        0 => None,
        1 => Some((q, PauliOp::X)),
        2 => Some((q, PauliOp::Y)),
        _ => Some((q, PauliOp::Z)),
    }))
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole's correctness anchor: purified MPS and density
    /// matrix are the same quantum channel-evolution, represented
    /// differently, so they must agree to near machine precision.
    #[test]
    fn purified_mps_matches_density_matrix_on_random_channel_circuits(
        seed in 0u64..100_000,
        // debug-profile density evolution is O(ops * 4^n): the random
        // sweep stays at <= 8 qubits; the pinned case below covers the
        // 10-qubit ceiling once instead of per proptest case
        n in 2usize..9,
        ops in 4usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pmps = PurifiedMps::zero(n, PurifiedOptions::exact());
        let mut dm = DensityMatrix::zero(n);
        for _ in 0..ops {
            apply_random_op(&mut rng, n, &mut pmps, Some(&mut dm)).unwrap();
        }
        // the exact options still carry the 1e-12 SVD cutoff, so the
        // discarded weight is bounded by (ops x sites) values below 1e-24
        prop_assert!(pmps.truncation_weight() < 1e-18, "exact options must not truncate");
        for bits in 0..1u64 << n {
            let b = BitString::from_u64(n, bits);
            let (p, d) = (pmps.probability(b), dm.probability(b));
            prop_assert!(
                (p - d).abs() < 1e-10,
                "probability of {bits:0n$b}: purified {p} vs density {d}"
            );
        }
        for _ in 0..4 {
            let obs = random_pauli(&mut rng, n);
            let (ep, ed) = (pmps.expectation(&obs).unwrap(), dm.expectation(&obs).unwrap());
            prop_assert!(
                (ep - ed).abs() < 1e-10,
                "<{obs}>: purified {ep} vs density {ed}"
            );
        }
    }

    /// A wider bond cap never yields a worse final state: the L1
    /// distance between the capped chain's Z-basis distribution and the
    /// exact chain's is non-increasing in chi (small slack — sequential
    /// local truncations are not globally optimal), and a wide cap
    /// reproduces the exact state.
    #[test]
    fn truncation_error_is_monotone_in_the_bond_cap(
        seed in 0u64..100_000,
        n in 4usize..8,
    ) {
        // Brickwork of Ry walls + CNOT layers with one channel pair:
        // entangling enough that tight bond caps genuinely truncate, but
        // channel-sparse, so the Kraus legs stay small. (A channel soup
        // like the agreement test's drives the Kraus rank — legally
        // bounded by 2*l*r — into the hundreds once bonds widen, and the
        // leg-compression SVDs then dominate the runtime.)
        let evolve = |options: PurifiedOptions| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut st = PurifiedMps::zero(n, options);
            let mut dummy = StdRng::seed_from_u64(0);
            for layer in 0..4usize {
                for q in 0..n {
                    st.apply_gate(&Gate::Ry(rng.gen_range(-1.5..1.5).into()), &[q])
                        .unwrap();
                }
                for q in (layer % 2..n - 1).step_by(2) {
                    st.apply_gate(&Gate::Cnot, &[q, q + 1]).unwrap();
                }
                if layer == 1 {
                    st.apply_kraus(&Channel::depolarizing(0.1).unwrap(), &[0], &mut dummy)
                        .unwrap();
                    st.apply_kraus(
                        &Channel::amplitude_damping(0.2).unwrap(),
                        &[n - 1],
                        &mut dummy,
                    )
                    .unwrap();
                }
            }
            st
        };
        let exact = evolve(PurifiedOptions::exact());
        let l1_error = |cap: usize| {
            let st = evolve(PurifiedOptions::with_max_bond(cap));
            (0..1u64 << n)
                .map(|bits| {
                    let b = BitString::from_u64(n, bits);
                    (st.probability(b) - exact.probability(b)).abs()
                })
                .sum::<f64>()
        };
        let errors: Vec<f64> = [2usize, 4, 8, 16, 64].iter().map(|&c| l1_error(c)).collect();
        for w in errors.windows(2) {
            prop_assert!(
                w[1] <= w[0] + 1e-2,
                "final-state error must not grow with chi: {errors:?}"
            );
        }
        prop_assert!(
            errors[4] < 1e-9,
            "a 64-wide cap must be exact at {n} qubits: {errors:?}"
        );
        prop_assert!(
            errors[4] <= errors[0] + 1e-12,
            "endpoints must be ordered: {errors:?}"
        );
    }
}

/// The 10-qubit ceiling of the agreement contract, pinned to one seed
/// so the quadratically larger density evolution runs once, not per
/// proptest case.
#[test]
fn purified_mps_matches_density_matrix_at_ten_qubits() {
    let n = 10;
    let mut rng = StdRng::seed_from_u64(31);
    let mut pmps = PurifiedMps::zero(n, PurifiedOptions::exact());
    let mut dm = DensityMatrix::zero(n);
    for _ in 0..16 {
        apply_random_op(&mut rng, n, &mut pmps, Some(&mut dm)).unwrap();
    }
    for _ in 0..6 {
        let obs = random_pauli(&mut rng, n);
        let (ep, ed) = (
            pmps.expectation(&obs).unwrap(),
            dm.expectation(&obs).unwrap(),
        );
        assert!(
            (ep - ed).abs() < 1e-10,
            "<{obs}>: purified {ep} vs density {ed}"
        );
    }
    for bits in [0u64, 1, 0b1111111111, 0b1010101010, 0b0101010101, 513] {
        let b = BitString::from_u64(n, bits);
        let (p, d) = (pmps.probability(b), dm.probability(b));
        assert!(
            (p - d).abs() < 1e-10,
            "P({bits:010b}): purified {p} vs density {d}"
        );
    }
}

/// Same seed, same run — twice in the same process, under different
/// parallelism knobs. The cross-process thread-count half is below.
#[test]
fn seeded_noisy_sampling_is_reproducible_in_process() {
    let n = 6;
    let circuit = circuit_for(CircuitClass::ChannelHeavy, n, 404);
    let pmps = BackendKind::PurifiedMps {
        chi: None,
        kraus_dim: None,
    };
    let opts = |par: bool| SimulatorOptions {
        seed: Some(11),
        parallel_redistribution: par,
        ..Default::default()
    };
    let a = sample_digest(pmps, &circuit, n, 3000, opts(true)).unwrap();
    let b = sample_digest(pmps, &circuit, n, 3000, opts(false)).unwrap();
    assert_eq!(
        a, b,
        "parallel redistribution must not change seeded samples"
    );
}

/// Child half of the thread-count protocol.
#[test]
fn purified_child_emit() {
    let Ok(seed) = std::env::var("BGLS_PURIFIED_SEED") else {
        return;
    };
    let out = std::env::var("BGLS_PURIFIED_OUT").expect("output path set alongside seed");
    let seed: u64 = seed.parse().expect("numeric seed");
    let n = 6;
    let circuit = circuit_for(CircuitClass::ChannelHeavy, n, 404);
    let pmps = BackendKind::PurifiedMps {
        chi: None,
        kraus_dim: None,
    };
    let opts = SimulatorOptions {
        seed: Some(seed),
        ..Default::default()
    };
    let digest = sample_digest(pmps, &circuit, n, 3000, opts).unwrap();
    std::fs::write(out, format!("{digest:016x}")).expect("write child digest");
}

#[test]
fn seeded_noisy_sampling_is_bit_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("test binary path");
    let mut digests: Vec<String> = Vec::new();
    for threads in ["1", "4"] {
        let out = std::env::temp_dir().join(format!(
            "bgls_purified_digest_{}_{threads}",
            std::process::id(),
        ));
        let status = Command::new(&exe)
            .args(["--exact", "purified_child_emit", "--nocapture"])
            .env("RAYON_NUM_THREADS", threads)
            .env("BGLS_PURIFIED_SEED", "77")
            .env("BGLS_PURIFIED_OUT", &out)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child failed at {threads} threads");
        let digest = std::fs::read_to_string(&out).expect("read child digest");
        let _ = std::fs::remove_file(&out);
        digests.push(digest);
    }
    assert_eq!(
        digests[0], digests[1],
        "purified-MPS sampling digests differ across RAYON_NUM_THREADS=1/4"
    );
}

//! End-to-end pipelines from the paper, shrunk to test size: each of the
//! four example sections must run through the public API.

use bgls_suite::apps::{
    brute_force_maxcut, cut_value, empirical_distribution, ghz_random_cnot_circuit, overlap,
    solve_maxcut_qaoa_mps, Graph,
};
use bgls_suite::circuit::{
    from_qasm, optimize_for_bgls, substitute_gate, to_qasm, Gate, Operation, Qubit,
};
use bgls_suite::core::Simulator;
use bgls_suite::mps::LazyNetworkState;
use bgls_suite::stabilizer::near_clifford_simulator;
use bgls_suite::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sec41_clifford_sampling_pipeline() {
    // random H/S/CNOT circuit sampled on the CH form through run()
    use bgls_suite::circuit::{generate_random_circuit, RandomCircuitParams};
    use bgls_suite::stabilizer::ChForm;
    let mut rng = StdRng::seed_from_u64(4);
    let mut circuit = generate_random_circuit(&RandomCircuitParams::clifford(8, 40), &mut rng);
    circuit.push(Operation::measure(Qubit::range(8), "z").unwrap());
    let r = Simulator::new(ChForm::zero(8))
        .with_seed(1)
        .run(&circuit, 500)
        .unwrap();
    assert_eq!(r.histogram("z").unwrap().total(), 500);
}

#[test]
fn sec42_near_clifford_overlap_beats_chance_and_lags_exact() {
    use bgls_suite::circuit::{generate_random_circuit, RandomCircuitParams};
    let n = 5;
    let mut rng = StdRng::seed_from_u64(6);
    let circuit = generate_random_circuit(&RandomCircuitParams::clifford_t(n, 15), &mut rng);
    let n_t = circuit.count_ops_where(|op| op.as_gate() == Some(&Gate::T));
    assert!(n_t > 0, "workload should contain T gates");
    let ideal = StateVector::from_circuit(&circuit, n)
        .unwrap()
        .born_distribution();

    let reps = 4000;
    let nc = near_clifford_simulator(n)
        .with_seed(2)
        .sample_final_bitstrings(&circuit, reps)
        .unwrap();
    let ov_nc = overlap(&empirical_distribution(&nc, n), &ideal);
    let exact = Simulator::new(StateVector::zero(n))
        .with_seed(3)
        .sample_final_bitstrings(&circuit, reps)
        .unwrap();
    let ov_exact = overlap(&empirical_distribution(&exact, n), &ideal);

    assert!(ov_nc > 0.3, "near-Clifford overlap collapsed: {ov_nc}");
    assert!(
        ov_exact > ov_nc - 0.02,
        "exact ({ov_exact}) should not lag near-Clifford ({ov_nc})"
    );
}

#[test]
fn sec42_t_to_s_substitution_restores_exactness() {
    use bgls_suite::circuit::{generate_random_circuit, RandomCircuitParams};
    let n = 5;
    let mut rng = StdRng::seed_from_u64(8);
    let ct = generate_random_circuit(&RandomCircuitParams::clifford_t(n, 15), &mut rng);
    let pure = substitute_gate(&ct, &Gate::T, &Gate::S);
    assert!(pure.is_clifford());
    let ideal = StateVector::from_circuit(&pure, n)
        .unwrap()
        .born_distribution();
    let samples = near_clifford_simulator(n)
        .with_seed(4)
        .sample_final_bitstrings(&pure, 4000)
        .unwrap();
    let ov = overlap(&empirical_distribution(&samples, n), &ideal);
    assert!(ov > 0.9, "pure Clifford should sample near-exactly: {ov}");
}

#[test]
fn sec43_ghz_random_cnot_mps_pipeline() {
    let mut rng = StdRng::seed_from_u64(10);
    let n = 9;
    let circuit = ghz_random_cnot_circuit(n, &mut rng);
    let samples = Simulator::new(LazyNetworkState::zero(n))
        .with_seed(5)
        .sample_final_bitstrings(&circuit, 400)
        .unwrap();
    let all0 = samples.iter().filter(|b| b.as_u64() == 0).count();
    let all1 = samples
        .iter()
        .filter(|b| b.as_u64() == (1 << n) - 1)
        .count();
    assert_eq!(all0 + all1, 400, "GHZ admits only two outcomes");
    assert!(all0 > 140 && all0 < 260);
}

#[test]
fn sec44_qaoa_maxcut_small_instance() {
    let mut rng = StdRng::seed_from_u64(20);
    let graph = Graph::erdos_renyi(8, 0.35, &mut rng);
    let (_, optimal) = brute_force_maxcut(&graph);
    let sol = solve_maxcut_qaoa_mps(&graph, 8, 5, 80, 400, 3).unwrap();
    assert_eq!(cut_value(&graph, sol.partition), sol.cut);
    assert!(
        sol.cut + 1 >= optimal,
        "QAOA best-sampled cut {} too far from optimum {optimal}",
        sol.cut
    );
}

#[test]
fn sec324_qasm_import_sample_export_round_trip() {
    let src = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg m[2];
        h q[0];
        cx q[0], q[1];
        measure q[0] -> m[0];
        measure q[1] -> m[1];
    "#;
    let circuit = from_qasm(src).unwrap();
    let r = Simulator::new(StateVector::zero(2))
        .with_seed(7)
        .run(&circuit, 1000)
        .unwrap();
    let h = r.histogram("m").unwrap();
    assert_eq!(h.count_value(0b00) + h.count_value(0b11), 1000);
    // export, re-import, unitaries agree
    let qasm = to_qasm(&circuit).unwrap();
    let back = from_qasm(&qasm).unwrap();
    let u1 = circuit.without_measurements().unitary(2).unwrap();
    let u2 = back.without_measurements().unitary(2).unwrap();
    assert!(u1.approx_eq(&u2, 1e-10));
}

#[test]
fn sec322_optimizer_preserves_sampling_distribution() {
    use bgls_suite::circuit::{generate_random_circuit, RandomCircuitParams};
    let params = RandomCircuitParams {
        qubits: 4,
        moments: 25,
        op_density: 1.0,
        gate_set: vec![Gate::H, Gate::T, Gate::S, Gate::X, Gate::Cnot],
    };
    let mut rng = StdRng::seed_from_u64(30);
    let raw = generate_random_circuit(&params, &mut rng);
    let merged = optimize_for_bgls(&raw);
    assert!(merged.num_operations() < raw.num_operations());

    let d_raw = StateVector::from_circuit(&raw, 4)
        .unwrap()
        .born_distribution();
    let samples = Simulator::new(StateVector::zero(4))
        .with_seed(8)
        .sample_final_bitstrings(&merged, 20_000)
        .unwrap();
    let d_merged = empirical_distribution(&samples, 4);
    let ov = overlap(&d_merged, &d_raw);
    assert!(
        ov > 0.97,
        "merged circuit distribution drifted: overlap {ov}"
    );
}

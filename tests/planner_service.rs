//! End-to-end tests of the execution planner and the batch simulation
//! service: routing properties over random circuits, distinct-class
//! coverage, and bit-identical cache hits.

use bgls_suite::circuit::{
    generate_random_circuit, Channel, Circuit, Gate, Operation, ParamResolver, PauliSum, Qubit,
    RandomCircuitParams,
};
use bgls_suite::core::SimError;
use bgls_suite::plan::{
    plan, Deliverable, ExecPath, JobOutput, PlannerConfig, ServiceConfig, SimRequest,
    SimulationService,
};
use bgls_suite::BackendKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn measured(mut c: Circuit, n: u32) -> Circuit {
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

fn hist(repetitions: u64) -> Deliverable {
    Deliverable::Histogram { repetitions }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every random pure-Clifford circuit with terminal measurements
    /// routes to a stabilizer backend on the sample-parallel path.
    #[test]
    fn random_clifford_routes_to_a_stabilizer_backend(seed in 0u64..1_000_000, n in 2usize..12, d in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = generate_random_circuit(&RandomCircuitParams::clifford(n, d), &mut rng);
        let c = measured(c, n as u32);
        let p = plan(&c, &hist(50), &PlannerConfig::default()).unwrap();
        prop_assert_eq!(p.backend, BackendKind::ChForm);
        prop_assert_eq!(p.path, ExecPath::SampleParallel);
        prop_assert!(p.profile.is_clifford());
    }

    /// Noisy circuits too wide for the density matrix always land on a
    /// trajectory-capable pure-state backend (never density, never a
    /// stabilizer state, which cannot apply channels).
    #[test]
    fn noisy_wide_routes_to_a_forest_capable_backend(seed in 0u64..1_000_000, extra in 0usize..8) {
        let cfg = PlannerConfig::default();
        let n = (cfg.max_density_qubits + 1 + extra) as u32;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = generate_random_circuit(
            &RandomCircuitParams::clifford_t(n as usize, 4), &mut rng);
        c.push(Operation::channel(Channel::depolarizing(0.01).unwrap(), vec![Qubit(0)]).unwrap());
        let c = measured(c, n);
        let p = plan(&c, &hist(50), &cfg).unwrap();
        prop_assert!(
            matches!(p.backend, BackendKind::StateVector
                | BackendKind::ChainMps { .. }
                | BackendKind::LazyNetwork),
            "routed to {:?}", p.backend
        );
        prop_assert!(
            matches!(p.path, ExecPath::Forest | ExecPath::Replay),
            "path {:?}", p.path
        );
    }

    /// Wide nearest-neighbour chains with sparse entanglement always
    /// route to a bond-capped MPS, never to (infeasible) dense memory.
    #[test]
    fn low_chi_chain_routes_to_mps(seed in 0u64..1_000_000, n in 26u32..40) {
        let mut c = Circuit::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            c.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
        }
        // One entangling pass; random direction per link.
        for i in 1..n {
            let (a, b) = if seed.wrapping_add(i as u64) % 2 == 0 { (i - 1, i) } else { (i, i - 1) };
            c.push(Operation::gate(Gate::Cnot, vec![Qubit(a), Qubit(b)]).unwrap());
        }
        let _ = &mut rng;
        let c = measured(c, n);
        let p = plan(&c, &hist(50), &PlannerConfig::default()).unwrap();
        match p.backend {
            BackendKind::ChainMps { chi: Some(chi) } => prop_assert!(chi <= 4, "chi {chi}"),
            other => return Err(TestCaseError::fail(format!("routed to {other:?}"))),
        }
    }
}

/// The acceptance bar: at least five distinct circuit classes route to
/// five distinct `(backend, path)` pairs.
#[test]
fn planner_separates_five_circuit_classes() {
    let cfg = PlannerConfig::default();

    // 1. Pure Clifford, terminal measurement.
    let mut ghz = Circuit::new();
    ghz.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..10u32 {
        ghz.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    let ghz = measured(ghz, 10);

    // 2. Clifford with mid-circuit measurement.
    let mut mid = Circuit::new();
    mid.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    mid.push(Operation::measure(vec![Qubit(0)], "early").unwrap());
    mid.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    let mid = measured(mid, 2);

    // 3. Noisy and narrow.
    let mut noisy = Circuit::new();
    noisy.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    noisy.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap());
    let noisy = measured(noisy, 1);

    // 4. Noisy and wide (sparse noise).
    let mut wide = Circuit::new();
    for i in 0..16u32 {
        wide.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
    }
    wide.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![Qubit(0)]).unwrap());
    let wide = measured(wide, 16);

    // 5. Low-chi wide chain, unitary non-Clifford.
    let mut chain = Circuit::new();
    for i in 0..30u32 {
        chain.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
    }
    for i in 1..30u32 {
        chain.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    let chain = measured(chain, 30);

    let classes = [
        ("clifford-terminal", ghz),
        ("clifford-mid-circuit", mid),
        ("noisy-narrow", noisy),
        ("noisy-wide", wide),
        ("low-chi-chain", chain),
    ];
    let mut pairs = std::collections::BTreeSet::new();
    for (label, c) in &classes {
        let p = plan(c, &hist(100), &cfg).unwrap();
        // Every routed plan must actually execute.
        let result = p.run(40, Some(7)).unwrap();
        assert!(result.repetitions() == 40, "{label}");
        pairs.insert(format!("{}/{}", p.backend.name(), p.path));
    }
    assert_eq!(
        pairs.len(),
        classes.len(),
        "expected {} distinct (backend, path) pairs, got {pairs:?}",
        classes.len()
    );
}

/// The service's cache contract, end to end: a repeated seeded request
/// is answered from memory with the *same allocation*, and that answer
/// is bit-identical to a cold standalone run of the routed plan.
#[test]
fn service_cache_hits_are_bit_identical_to_cold_runs() {
    let mut ghz = Circuit::new();
    ghz.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..8u32 {
        ghz.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    let ghz = measured(ghz, 8);

    let mut svc = SimulationService::with_defaults();
    let a = svc
        .submit(SimRequest::histogram(ghz.clone(), 300).with_seed(42))
        .unwrap();
    svc.run_all();
    let cold = match svc.take_result(a).unwrap().unwrap().output {
        JobOutput::Histogram(r) => r,
        other => panic!("expected histogram, got {other:?}"),
    };

    let b = svc
        .submit(SimRequest::histogram(ghz.clone(), 300).with_seed(42))
        .unwrap();
    svc.run_all();
    let hot = match svc.take_result(b).unwrap().unwrap().output {
        JobOutput::Histogram(r) => r,
        other => panic!("expected histogram, got {other:?}"),
    };

    assert_eq!(svc.cache_stats().hits, 1);
    assert!(
        std::sync::Arc::ptr_eq(&cold, &hot),
        "hit must reuse the allocation"
    );

    // And the cached payload equals a from-scratch plan execution.
    let p = plan(&ghz, &hist(300), &PlannerConfig::default()).unwrap();
    let standalone = p.run(300, Some(42)).unwrap();
    assert_eq!(cold.histogram("m"), standalone.histogram("m"));
}

/// Disabling the cache (capacity 0) still serves correct results — it
/// just re-simulates.
#[test]
fn zero_capacity_cache_reexecutes_every_request() {
    let mut bell = Circuit::new();
    bell.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    bell.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    let bell = measured(bell, 2);

    let mut svc = SimulationService::new(ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    let a = svc
        .submit(SimRequest::histogram(bell.clone(), 100).with_seed(5))
        .unwrap();
    svc.run_all();
    let b = svc
        .submit(SimRequest::histogram(bell.clone(), 100).with_seed(5))
        .unwrap();
    svc.run_all();
    assert_eq!(svc.cache_stats().hits, 0);
    assert_eq!(svc.stats().simulated_jobs, 2);
    let ra = match svc.take_result(a).unwrap().unwrap().output {
        JobOutput::Histogram(r) => r,
        other => panic!("{other:?}"),
    };
    let rb = match svc.take_result(b).unwrap().unwrap().output {
        JobOutput::Histogram(r) => r,
        other => panic!("{other:?}"),
    };
    // Identical seeds still agree bit-for-bit — purity, not caching.
    assert_eq!(ra.histogram("m"), rb.histogram("m"));
}

/// Mixed traffic: histograms across classes plus an expectation grid,
/// every output matching its standalone equivalent.
#[test]
fn mixed_service_traffic_matches_standalone_execution() {
    let mut svc = SimulationService::with_defaults();

    let mut bell = Circuit::new();
    bell.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    bell.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    let bell = measured(bell, 2);

    let mut rot = Circuit::new();
    rot.push(
        Operation::gate(
            Gate::Ry(bgls_suite::circuit::Param::symbol("theta")),
            vec![Qubit(0)],
        )
        .unwrap(),
    );
    let obs: PauliSum = "Z0".parse().unwrap();

    let hist_ids: Vec<_> = (0..4u64)
        .map(|s| {
            svc.submit(SimRequest::histogram(bell.clone(), 120).with_seed(s))
                .unwrap()
        })
        .collect();
    let thetas = [0.3f64, 0.9, 1.5];
    let exp_ids: Vec<_> = thetas
        .iter()
        .map(|&t| {
            let mut r = ParamResolver::new();
            r.bind("theta", t);
            svc.submit(SimRequest::expectation(rot.clone(), obs.clone()).with_resolver(r))
                .unwrap()
        })
        .collect();

    svc.run_all();

    for (id, seed) in hist_ids.into_iter().zip(0..4u64) {
        let got = match svc.take_result(id).unwrap().unwrap().output {
            JobOutput::Histogram(r) => r,
            other => panic!("{other:?}"),
        };
        let p = plan(&bell, &hist(120), &PlannerConfig::default()).unwrap();
        let standalone = p.run(120, Some(seed)).unwrap();
        assert_eq!(got.histogram("m"), standalone.histogram("m"), "seed {seed}");
    }
    for (id, &t) in exp_ids.iter().zip(&thetas) {
        let got = svc
            .take_result(*id)
            .unwrap()
            .unwrap()
            .expectation()
            .unwrap();
        assert!((got - t.cos()).abs() < 1e-10, "theta {t}: {got}");
    }
    assert!(svc.stats().merged_jobs > 0, "traffic should have merged");
}

/// Submission-time rejection: infeasible circuits never enter the queue.
#[test]
fn service_rejects_infeasible_work_at_the_door() {
    let mut wide = Circuit::new();
    for i in 0..40u32 {
        wide.push(Operation::gate(Gate::H, vec![Qubit(i)]).unwrap());
    }
    wide.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
    let wide = measured(wide, 40);
    let mut svc = SimulationService::with_defaults();
    assert!(matches!(
        svc.submit(SimRequest::histogram(wide, 10)),
        Err(SimError::Unsupported(_))
    ));
    assert_eq!(svc.queue_len(), 0);
}

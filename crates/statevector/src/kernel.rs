//! Gate-application kernels over dense amplitude arrays.
//!
//! Shared by the state-vector backend and the (vectorized) density-matrix
//! backend. Single- and two-qubit gates get dedicated bit-twiddling loops;
//! arbitrary k-qubit unitaries use a gather/scatter path. Large arrays are
//! processed in parallel with Rayon over cache-aligned chunks.

use bgls_linalg::{Matrix, C64};
use rayon::prelude::*;

/// Arrays at or above this length use the Rayon-parallel kernels.
const PAR_THRESHOLD: usize = 1 << 14;

/// Applies a `2^k x 2^k` unitary (or any matrix — Kraus operators reuse
/// this) to the amplitudes, acting on `qubits`. Gate-matrix convention:
/// the first listed qubit is the most significant gate-index bit; state
/// index bit `q` belongs to qubit `q`.
///
/// # Panics
/// Panics if dimensions are inconsistent or a qubit index repeats/overflows.
pub fn apply_matrix(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
    let k = qubits.len();
    assert_eq!(u.rows(), 1 << k, "matrix size does not match qubit count");
    assert!(amps.len().is_power_of_two());
    let n_bits = amps.len().trailing_zeros() as usize;
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n_bits, "qubit {q} out of range for {n_bits} bits");
        assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
    }
    match k {
        0 => {}
        1 => apply_1q(amps, u, qubits[0]),
        2 => apply_2q(amps, u, qubits[0], qubits[1]),
        _ => apply_kq(amps, u, qubits),
    }
}

fn apply_1q(amps: &mut [C64], u: &Matrix, q: usize) {
    let m = 1usize << q;
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];
    let chunk = m << 1;
    let body = |slice: &mut [C64]| {
        for lo in 0..m {
            let a0 = slice[lo];
            let a1 = slice[lo + m];
            slice[lo] = u00 * a0 + u01 * a1;
            slice[lo + m] = u10 * a0 + u11 * a1;
        }
    };
    if amps.len() >= PAR_THRESHOLD && amps.len() / chunk > 1 {
        amps.par_chunks_mut(chunk).for_each(body);
    } else {
        amps.chunks_mut(chunk).for_each(body);
    }
}

fn apply_2q(amps: &mut [C64], u: &Matrix, qa: usize, qb: usize) {
    // qa = most significant gate bit (bit 1 of the gate index).
    let ma = 1usize << qa;
    let mb = 1usize << qb;
    let top = qa.max(qb);
    let chunk = 1usize << (top + 1);
    // Within a chunk (bits 0..=top), enumerate bases with bits qlow and top
    // clear. Since i < 2^(top-1), inserting a zero at qlow leaves bit `top`
    // clear automatically.
    let qlow = qa.min(qb);
    let low_mask = (1usize << qlow) - 1;
    let quarter = chunk >> 2;

    let body = |slice: &mut [C64]| {
        for i in 0..quarter {
            let base = ((i & !low_mask) << 1) | (i & low_mask);
            debug_assert_eq!(base & ma, 0);
            debug_assert_eq!(base & mb, 0);
            let i00 = base;
            let i01 = base | mb; // gate index bit0 = qb
            let i10 = base | ma; // gate index bit1 = qa
            let i11 = base | ma | mb;
            let a00 = slice[i00];
            let a01 = slice[i01];
            let a10 = slice[i10];
            let a11 = slice[i11];
            for (row, slot) in [i00, i01, i10, i11].into_iter().enumerate() {
                slice[slot] =
                    u[(row, 0)] * a00 + u[(row, 1)] * a01 + u[(row, 2)] * a10 + u[(row, 3)] * a11;
            }
        }
    };
    if amps.len() >= PAR_THRESHOLD && amps.len() / chunk > 1 {
        amps.par_chunks_mut(chunk).for_each(body);
    } else {
        amps.chunks_mut(chunk).for_each(body);
    }
}

fn apply_kq(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
    let k = qubits.len();
    let dim = 1usize << k;
    let top = *qubits.iter().max().expect("k >= 1");
    let chunk = 1usize << (top + 1);
    // Sorted qubit positions for zero-insertion enumeration.
    let mut sorted: Vec<usize> = qubits.to_vec();
    sorted.sort_unstable();
    // offsets[g] = OR of qubit masks selected by gate index g
    // (gate bit (k-1-j) <-> qubits[j]).
    let offsets: Vec<usize> = (0..dim)
        .map(|g| {
            let mut off = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if (g >> (k - 1 - j)) & 1 == 1 {
                    off |= 1 << q;
                }
            }
            off
        })
        .collect();

    let per_chunk = chunk >> k;
    let body = |slice: &mut [C64]| {
        let mut gathered = vec![C64::ZERO; dim];
        for i in 0..per_chunk {
            // expand i by inserting zero bits at each sorted qubit position
            let mut base = i;
            for &q in &sorted {
                let high = (base >> q) << (q + 1);
                let low = base & ((1 << q) - 1);
                base = high | low;
            }
            for (g, &off) in offsets.iter().enumerate() {
                gathered[g] = slice[base | off];
            }
            for (row, &off) in offsets.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (col, &g) in gathered.iter().enumerate() {
                    acc = u[(row, col)].mul_add(g, acc);
                }
                slice[base | off] = acc;
            }
        }
    };
    if amps.len() >= PAR_THRESHOLD && amps.len() / chunk > 1 {
        amps.par_chunks_mut(chunk).for_each(body);
    } else {
        amps.chunks_mut(chunk).for_each(body);
    }
}

/// Squared norm of an amplitude array.
pub fn norm_sqr(amps: &[C64]) -> f64 {
    if amps.len() >= PAR_THRESHOLD {
        amps.par_iter().map(|z| z.norm_sqr()).sum()
    } else {
        amps.iter().map(|z| z.norm_sqr()).sum()
    }
}

/// Scales every amplitude by a real factor.
pub fn scale(amps: &mut [C64], factor: f64) {
    if amps.len() >= PAR_THRESHOLD {
        amps.par_iter_mut().for_each(|z| *z *= factor);
    } else {
        amps.iter_mut().for_each(|z| *z *= factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{embed_unitary, Gate, Qubit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_amps(rng: &mut StdRng, n: usize) -> Vec<C64> {
        (0..1usize << n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn check_against_embedding(gate: &Gate, qubits: &[usize], n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let amps = random_amps(&mut rng, n);
        let u = gate.unitary().unwrap();

        let mut fast = amps.clone();
        apply_matrix(&mut fast, &u, qubits);

        let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
        let full = embed_unitary(&u, &qs, n);
        let slow = full.matvec(&amps);

        for (a, b) in fast.iter().zip(&slow) {
            assert!(
                a.approx_eq(*b, 1e-10),
                "{} on {:?}: {a:?} vs {b:?}",
                gate.name(),
                qubits
            );
        }
    }

    #[test]
    fn one_qubit_kernels_match_embedding() {
        for q in 0..4 {
            check_against_embedding(&Gate::H, &[q], 4, 1);
            check_against_embedding(&Gate::SqrtX, &[q], 4, 2);
            check_against_embedding(&Gate::Rz(0.7.into()), &[q], 4, 3);
        }
    }

    #[test]
    fn two_qubit_kernels_match_embedding_all_orders() {
        for qa in 0..4 {
            for qb in 0..4 {
                if qa == qb {
                    continue;
                }
                check_against_embedding(&Gate::Cnot, &[qa, qb], 4, 4);
                check_against_embedding(&Gate::ISwap, &[qa, qb], 4, 5);
                check_against_embedding(&Gate::Rzz(0.3.into()), &[qa, qb], 4, 6);
            }
        }
    }

    #[test]
    fn three_qubit_kernels_match_embedding() {
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            check_against_embedding(&Gate::Ccx, &p, 4, 7);
            check_against_embedding(&Gate::Cswap, &p, 5, 8);
        }
    }

    #[test]
    fn large_array_parallel_path_matches() {
        // exceed PAR_THRESHOLD to exercise the rayon branches
        let n = 15;
        let mut rng = StdRng::seed_from_u64(9);
        let amps = random_amps(&mut rng, n);
        let u = Gate::Cnot.unitary().unwrap();

        let mut fast = amps.clone();
        apply_matrix(&mut fast, &u, &[14, 3]);

        let mut seq = amps;
        // force sequential by applying manually with the same semantics
        let qs = [14usize, 3usize];
        let offsets: Vec<usize> = (0..4)
            .map(|g: usize| {
                let mut off = 0;
                for (j, &q) in qs.iter().enumerate() {
                    if (g >> (1 - j)) & 1 == 1 {
                        off |= 1 << q;
                    }
                }
                off
            })
            .collect();
        for base in 0..seq.len() {
            if base & (1 << 14) != 0 || base & (1 << 3) != 0 {
                continue;
            }
            let vals: Vec<C64> = offsets.iter().map(|&o| seq[base | o]).collect();
            for (row, &off) in offsets.iter().enumerate() {
                let mut acc = C64::ZERO;
                for (col, v) in vals.iter().enumerate() {
                    acc += u[(row, col)] * *v;
                }
                seq[base | off] = acc;
            }
        }
        for (a, b) in fast.iter().zip(&seq) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut amps = random_amps(&mut rng, 6);
        let before = norm_sqr(&amps);
        apply_matrix(&mut amps, &Gate::H.unitary().unwrap(), &[3]);
        apply_matrix(&mut amps, &Gate::Ccx.unitary().unwrap(), &[5, 0, 2]);
        let after = norm_sqr(&amps);
        assert!((before - after).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_panic() {
        let mut amps = vec![C64::ONE; 4];
        apply_matrix(&mut amps, &Gate::Cnot.unitary().unwrap(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut amps = vec![C64::ONE; 4];
        apply_matrix(&mut amps, &Gate::X.unitary().unwrap(), &[2]);
    }
}

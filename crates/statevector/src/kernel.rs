//! Sharded gate-application kernels over dense amplitude arrays.
//!
//! Shared by the state-vector backend and the (vectorized) density-matrix
//! backend. The amplitude array is processed as fixed-length power-of-two
//! **shards** ([`SHARD_LEN`] amplitudes = 256 KiB, sized to sit in L2):
//!
//! * a gate whose qubits all lie **below** [`SHARD_BITS`] is shard-local —
//!   every shard is updated independently;
//! * a gate touching an index bit at or above [`SHARD_BITS`] pairs shards
//!   (or groups four of them, for a 2q gate with both qubits high) and
//!   exchanges amplitude blocks between them.
//!
//! Shard ownership is fixed: shard `s` covers amplitudes
//! `[s * SHARD_LEN, (s + 1) * SHARD_LEN)`, and each parallel task owns a
//! disjoint shard group, so serial and parallel execution perform the exact
//! same per-amplitude arithmetic — results are bit-identical for every
//! `RAYON_NUM_THREADS`, including 1. Reductions ([`norm_sqr`]) compute one
//! partial per shard and combine them with a fixed ascending-shard pairwise
//! tree fold, which is likewise thread-count-invariant.
//!
//! The arithmetic floor under the shard loops is
//! [`bgls_linalg::dispatch`] — runtime-ISA-selected (AVX-512/AVX2/NEON/
//! scalar) split-re/im microkernels that are bit-identical across paths.
//!
//! [`apply_unitaries`] adds pass fusion on top: consecutive gates whose
//! shard-bit footprint fits one shard group are applied back-to-back while
//! the group is cache-resident, turning k full-buffer memory passes into
//! one. Because gates act elementwise on disjoint shard groups, fusion is
//! bit-identical to gate-by-gate application.

use bgls_linalg::{dispatch, Matrix, C64};
use rayon::prelude::*;
use std::cell::RefCell;

/// log2 of the shard length. 2^14 amplitudes × 16 bytes = 256 KiB per
/// shard: small enough that a 4-shard group (the largest the fused engine
/// forms) stays cache-resident, large enough to amortize dispatch.
pub const SHARD_BITS: usize = 14;

/// Amplitudes per shard (`1 << SHARD_BITS`).
pub const SHARD_LEN: usize = 1 << SHARD_BITS;

/// Arrays at or above this length (= two shards) run the shard loops in
/// parallel; below it the array is a single (possibly short) shard and runs
/// serially. Serial and parallel paths iterate the same shard decomposition
/// in the same per-shard order, so the threshold affects scheduling only,
/// never results.
pub const PAR_THRESHOLD: usize = 2 * SHARD_LEN;

/// Shard length actually used for `amps`: full shards when the array is
/// large, the whole array as one shard when it is smaller than [`SHARD_LEN`].
#[inline]
fn shard_bits_for(len: usize) -> usize {
    debug_assert!(len.is_power_of_two());
    SHARD_BITS.min(len.trailing_zeros() as usize)
}

/// Inserts a zero bit at position `b`, shifting higher bits up.
#[inline]
fn insert_zero(t: usize, b: usize) -> usize {
    ((t >> b) << (b + 1)) | (t & ((1usize << b) - 1))
}

fn validate(len: usize, u: &Matrix, qubits: &[usize]) {
    let k = qubits.len();
    assert_eq!(u.rows(), 1 << k, "matrix size does not match qubit count");
    assert!(len.is_power_of_two());
    let n_bits = len.trailing_zeros() as usize;
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n_bits, "qubit {q} out of range for {n_bits} bits");
        assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
    }
}

/// Applies a `2^k x 2^k` unitary (or any matrix — Kraus operators reuse
/// this) to the amplitudes, acting on `qubits`. Gate-matrix convention:
/// the first listed qubit is the most significant gate-index bit; state
/// index bit `q` belongs to qubit `q`.
///
/// # Panics
/// Panics if dimensions are inconsistent or a qubit index repeats/overflows.
pub fn apply_matrix(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
    validate(amps.len(), u, qubits);
    let sb = shard_bits_for(amps.len());
    match qubits.len() {
        0 => {}
        1 | 2 => {
            let op = compile_op(u, qubits, sb).expect("1q/2q op always compiles");
            run_segment(amps, sb, op.mask(), std::slice::from_ref(&op));
        }
        _ => apply_kq(amps, u, qubits),
    }
}

/// Applies a sequence of unitaries with **pass fusion**: consecutive ops
/// whose combined shard-bit footprint spans at most four shards are applied
/// in one pass over memory, per shard group, while the group is
/// cache-resident.
///
/// Bit-identical to calling [`apply_matrix`] per op in order (gates act
/// elementwise on disjoint shard groups, so per-amplitude arithmetic and
/// ordering are unchanged) — only the memory traffic differs.
///
/// # Panics
/// As [`apply_matrix`], for any op in the list.
pub fn apply_unitaries(amps: &mut [C64], ops: &[(&Matrix, &[usize])]) {
    for (u, qs) in ops {
        validate(amps.len(), u, qs);
    }
    let sb = shard_bits_for(amps.len());
    let mut seg: Vec<ShardOp> = Vec::new();
    let mut mask = Mask::default();
    for (u, qs) in ops {
        match compile_op(u, qs, sb) {
            Some(op) => {
                if let Some(m) = mask.union(op.mask()) {
                    mask = m;
                } else {
                    run_segment(amps, sb, mask, &seg);
                    seg.clear();
                    mask = op.mask();
                }
                seg.push(op);
            }
            None => {
                // k = 0 or k >= 3: flush and fall back to the unfused path.
                if !seg.is_empty() {
                    run_segment(amps, sb, mask, &seg);
                    seg.clear();
                    mask = Mask::default();
                }
                apply_matrix(amps, u, qs);
            }
        }
    }
    if !seg.is_empty() {
        run_segment(amps, sb, mask, &seg);
    }
}

/// Up to two shard-index bits — the footprint of one fused segment.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
struct Mask {
    bits: [usize; 2],
    len: usize,
}

impl Mask {
    fn one(b: usize) -> Mask {
        Mask {
            bits: [b, 0],
            len: 1,
        }
    }

    fn two(bl: usize, bh: usize) -> Mask {
        debug_assert!(bl < bh);
        Mask {
            bits: [bl, bh],
            len: 2,
        }
    }

    fn slice(&self) -> &[usize] {
        &self.bits[..self.len]
    }

    /// Position of shard bit `b` within the mask.
    fn pos(&self, b: usize) -> usize {
        self.slice()
            .iter()
            .position(|&x| x == b)
            .expect("bit in mask")
    }

    /// Sorted union, or `None` when it would exceed two bits.
    fn union(&self, other: Mask) -> Option<Mask> {
        let mut bits = [0usize; 2];
        let mut len = 0;
        let (a, b) = (self.slice(), other.slice());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if len == 2 {
                return None;
            }
            bits[len] = next;
            len += 1;
        }
        Some(Mask { bits, len })
    }
}

/// A 1q/2q gate classified against the shard boundary. Shard-local qubits
/// keep their in-shard bit position; high qubits are reduced to shard-index
/// bits (`q - SHARD_BITS`). 2q coefficient arrays are stored in
/// **positional** order — gate bit 1 is the higher memory bit — matching
/// the [`bgls_linalg::dispatch`] convention.
#[derive(Clone)]
enum ShardOp {
    /// 1q gate below the shard boundary.
    Local1q { q: usize, u: [C64; 4] },
    /// 1q gate on shard-index bit `b`.
    Cross1q { b: usize, u: [C64; 4] },
    /// 2q gate with both qubits below the boundary (`ql < qh`).
    Local2q { qh: usize, ql: usize, u: [C64; 16] },
    /// 2q gate with the high qubit on shard-index bit `b`, low in-shard.
    Mixed2q { b: usize, ql: usize, u: [C64; 16] },
    /// 2q gate with both qubits on shard-index bits (`bl < bh`).
    Cross2q { bh: usize, bl: usize, u: [C64; 16] },
}

impl ShardOp {
    fn mask(&self) -> Mask {
        match *self {
            ShardOp::Local1q { .. } | ShardOp::Local2q { .. } => Mask::default(),
            ShardOp::Cross1q { b, .. } | ShardOp::Mixed2q { b, .. } => Mask::one(b),
            ShardOp::Cross2q { bh, bl, .. } => Mask::two(bl, bh),
        }
    }
}

fn u4_of(u: &Matrix) -> [C64; 4] {
    let d = u.data();
    [d[0], d[1], d[2], d[3]]
}

/// Row-major coefficients with gate bits swapped: `out[r][c] =
/// u[swap(r)][swap(c)]` where `swap` exchanges the two gate index bits.
/// Used when the caller's first-listed qubit is the *lower* memory bit, so
/// the kernels can always treat gate bit 1 as the higher one.
fn u16_swapped(u: &Matrix) -> [C64; 16] {
    let sw = |i: usize| ((i & 1) << 1) | (i >> 1);
    let mut out = [C64::ZERO; 16];
    for (r, row) in out.chunks_exact_mut(4).enumerate() {
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = u[(sw(r), sw(c))];
        }
    }
    out
}

fn u16_of(u: &Matrix) -> [C64; 16] {
    let mut out = [C64::ZERO; 16];
    out.copy_from_slice(u.data());
    out
}

/// Classifies a 1q/2q gate against the shard boundary `sb`; `None` for any
/// other arity.
fn compile_op(u: &Matrix, qubits: &[usize], sb: usize) -> Option<ShardOp> {
    match *qubits {
        [q] => Some(if q < sb {
            ShardOp::Local1q { q, u: u4_of(u) }
        } else {
            ShardOp::Cross1q {
                b: q - sb,
                u: u4_of(u),
            }
        }),
        [qa, qb] => {
            // Positional form: gate bit 1 = higher memory bit.
            let (qh, ql, u16) = if qa > qb {
                (qa, qb, u16_of(u))
            } else {
                (qb, qa, u16_swapped(u))
            };
            Some(if qh < sb {
                ShardOp::Local2q { qh, ql, u: u16 }
            } else if ql < sb {
                ShardOp::Mixed2q {
                    b: qh - sb,
                    ql,
                    u: u16,
                }
            } else {
                ShardOp::Cross2q {
                    bh: qh - sb,
                    bl: ql - sb,
                    u: u16,
                }
            })
        }
        _ => None,
    }
}

/// Shared amplitude base pointer for handing disjoint shard slices to
/// parallel tasks.
struct SharedAmps {
    ptr: *mut C64,
}

// SAFETY: tasks created by `run_segment` access disjoint shard index sets.
unsafe impl Send for SharedAmps {}
// SAFETY: as above — disjointness is enforced by the group enumeration.
unsafe impl Sync for SharedAmps {}

impl SharedAmps {
    /// # Safety
    /// Callers must hold a unique borrow of the underlying array and never
    /// request the same shard index from two live slices.
    #[allow(clippy::mut_from_ref)] // disjointness contract documented above
    unsafe fn shard(&self, idx: usize, shard_len: usize) -> &mut [C64] {
        std::slice::from_raw_parts_mut(self.ptr.add(idx * shard_len), shard_len)
    }
}

/// Applies a fused segment: every op in `ops`, in order, over each shard
/// group induced by `mask`. Groups are disjoint, so they run in parallel
/// when the array is large; the serial path walks the identical groups.
fn run_segment(amps: &mut [C64], sb: usize, mask: Mask, ops: &[ShardOp]) {
    let shard_len = 1usize << sb;
    let ns = amps.len() >> sb;
    let p = mask.len;
    let groups = ns >> p;
    let len = amps.len();
    let shared = SharedAmps {
        ptr: amps.as_mut_ptr(),
    };
    let run = |g: usize| {
        // Base shard of the group: insert zeros at the mask bits
        // (ascending), then enumerate the group's shards in gate-subset
        // order.
        let mut base = g;
        for &b in mask.slice() {
            base = insert_zero(base, b);
        }
        let mut idx = [0usize; 4];
        for (sub, slot) in idx[..1 << p].iter_mut().enumerate() {
            let mut s = base;
            for (j, &b) in mask.slice().iter().enumerate() {
                if (sub >> j) & 1 == 1 {
                    s |= 1 << b;
                }
            }
            *slot = s;
        }
        for op in ops {
            // SAFETY: groups partition the shard set and `idx` holds
            // distinct indices, so all slices handed out are disjoint.
            unsafe { apply_to_group(&shared, shard_len, &idx, p, mask, op) }
        }
    };
    if len >= PAR_THRESHOLD && groups > 1 {
        (0..groups).into_par_iter().for_each(run);
    } else {
        (0..groups).for_each(run);
    }
}

/// Applies one op to the shard group `idx[..1 << p]`.
///
/// # Safety
/// The group's shard indices must be disjoint from those of any other live
/// task, and `idx[sub]` must follow the gate-subset order built by
/// `run_segment`.
unsafe fn apply_to_group(
    shared: &SharedAmps,
    shard_len: usize,
    idx: &[usize; 4],
    p: usize,
    mask: Mask,
    op: &ShardOp,
) {
    match op {
        ShardOp::Local1q { q, u } => {
            for &s in &idx[..1 << p] {
                dispatch::apply_1q_slice(shared.shard(s, shard_len), *q, u);
            }
        }
        ShardOp::Local2q { qh, ql, u } => {
            for &s in &idx[..1 << p] {
                dispatch::apply_2q_slice(shared.shard(s, shard_len), *qh, *ql, u);
            }
        }
        ShardOp::Cross1q { b, u } => {
            let j = 1usize << mask.pos(*b);
            for sub in 0..(1usize << p) {
                if sub & j == 0 {
                    dispatch::apply_1q_pair(
                        shared.shard(idx[sub], shard_len),
                        shared.shard(idx[sub | j], shard_len),
                        u,
                    );
                }
            }
        }
        ShardOp::Mixed2q { b, ql, u } => {
            let j = 1usize << mask.pos(*b);
            for sub in 0..(1usize << p) {
                if sub & j == 0 {
                    dispatch::apply_2q_pair(
                        shared.shard(idx[sub], shard_len),
                        shared.shard(idx[sub | j], shard_len),
                        *ql,
                        u,
                    );
                }
            }
        }
        ShardOp::Cross2q { bh, bl, u } => {
            let jh = 1usize << mask.pos(*bh);
            let jl = 1usize << mask.pos(*bl);
            for sub in 0..(1usize << p) {
                if sub & (jh | jl) == 0 {
                    dispatch::apply_2q_quad(
                        shared.shard(idx[sub], shard_len),
                        shared.shard(idx[sub | jl], shard_len),
                        shared.shard(idx[sub | jh], shard_len),
                        shared.shard(idx[sub | jh | jl], shard_len),
                        u,
                    );
                }
            }
        }
    }
}

thread_local! {
    /// Reusable gather buffer for the k-qubit gather/scatter path — one
    /// allocation per thread instead of one per chunk (same pattern as
    /// `Tensor::contract`'s GEMM scratch).
    static KQ_SCRATCH: RefCell<Vec<C64>> = const { RefCell::new(Vec::new()) };
}

fn apply_kq(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
    let k = qubits.len();
    let dim = 1usize << k;
    let top = *qubits.iter().max().expect("k >= 1");
    let chunk = 1usize << (top + 1);
    // Sorted qubit positions for zero-insertion enumeration.
    let mut sorted: Vec<usize> = qubits.to_vec();
    sorted.sort_unstable();
    // offsets[g] = OR of qubit masks selected by gate index g
    // (gate bit (k-1-j) <-> qubits[j]).
    let offsets: Vec<usize> = (0..dim)
        .map(|g| {
            let mut off = 0usize;
            for (j, &q) in qubits.iter().enumerate() {
                if (g >> (k - 1 - j)) & 1 == 1 {
                    off |= 1 << q;
                }
            }
            off
        })
        .collect();

    let per_chunk = chunk >> k;
    let body = |slice: &mut [C64]| {
        KQ_SCRATCH.with(|cell| {
            let mut buf = cell.borrow_mut();
            if buf.len() < dim {
                buf.resize(dim, C64::ZERO);
            }
            let gathered = &mut buf[..dim];
            for i in 0..per_chunk {
                // expand i by inserting zero bits at each sorted qubit
                // position
                let mut base = i;
                for &q in &sorted {
                    base = insert_zero(base, q);
                }
                for (g, &off) in offsets.iter().enumerate() {
                    gathered[g] = slice[base | off];
                }
                for (row, &off) in offsets.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (col, &g) in gathered.iter().enumerate() {
                        acc = u[(row, col)].mul_add(g, acc);
                    }
                    slice[base | off] = acc;
                }
            }
        })
    };
    if amps.len() >= PAR_THRESHOLD && amps.len() / chunk > 1 {
        amps.par_chunks_mut(chunk).for_each(body);
    } else {
        amps.chunks_mut(chunk).for_each(body);
    }
}

/// One partial per [`SHARD_LEN`] chunk (the last may be short), in shard
/// order, computed in parallel above [`PAR_THRESHOLD`]. Each partial is a
/// pure function of its chunk, so the vector is thread-count-invariant.
pub(crate) fn shard_partials<T, F>(amps: &[C64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[C64]) -> T + Sync,
{
    if amps.len() >= PAR_THRESHOLD {
        let chunks: Vec<(usize, &[C64])> = amps.chunks(SHARD_LEN).enumerate().collect();
        chunks.into_par_iter().map(|(i, c)| f(i, c)).collect()
    } else {
        amps.chunks(SHARD_LEN)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect()
    }
}

/// Ascending pairwise tree fold: `parts[i] <- parts[2i] + parts[2i+1]`
/// per level. Fixed order, so reductions are bit-identical regardless of
/// how the partials were scheduled.
pub(crate) fn tree_fold_f64(mut parts: Vec<f64>) -> f64 {
    if parts.is_empty() {
        return 0.0;
    }
    let mut n = parts.len();
    while n > 1 {
        let half = n / 2;
        for i in 0..half {
            parts[i] = parts[2 * i] + parts[2 * i + 1];
        }
        if n % 2 == 1 {
            parts[half] = parts[n - 1];
            n = half + 1;
        } else {
            n = half;
        }
    }
    parts[0]
}

/// Complex variant of [`tree_fold_f64`] — same fixed fold order.
pub(crate) fn tree_fold_c64(mut parts: Vec<C64>) -> C64 {
    if parts.is_empty() {
        return C64::ZERO;
    }
    let mut n = parts.len();
    while n > 1 {
        let half = n / 2;
        for i in 0..half {
            parts[i] = parts[2 * i] + parts[2 * i + 1];
        }
        if n % 2 == 1 {
            parts[half] = parts[n - 1];
            n = half + 1;
        } else {
            n = half;
        }
    }
    parts[0]
}

/// Squared norm of an amplitude array: per-shard 8-lane partials
/// ([`bgls_linalg::dispatch::sum_norm_sqr`]) combined by ascending tree
/// fold — bit-identical for every thread count and ISA path.
pub fn norm_sqr(amps: &[C64]) -> f64 {
    tree_fold_f64(shard_partials(amps, |_, c| dispatch::sum_norm_sqr(c)))
}

/// Scales every amplitude by a real factor.
pub fn scale(amps: &mut [C64], factor: f64) {
    if amps.len() >= PAR_THRESHOLD {
        amps.par_chunks_mut(SHARD_LEN)
            .for_each(|c| dispatch::scale(c, factor));
    } else {
        dispatch::scale(amps, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{embed_unitary, Gate, Qubit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_amps(rng: &mut StdRng, n: usize) -> Vec<C64> {
        (0..1usize << n)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn check_against_embedding(gate: &Gate, qubits: &[usize], n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let amps = random_amps(&mut rng, n);
        let u = gate.unitary().unwrap();

        let mut fast = amps.clone();
        apply_matrix(&mut fast, &u, qubits);

        let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
        let full = embed_unitary(&u, &qs, n);
        let slow = full.matvec(&amps);

        for (a, b) in fast.iter().zip(&slow) {
            assert!(
                a.approx_eq(*b, 1e-10),
                "{} on {:?}: {a:?} vs {b:?}",
                gate.name(),
                qubits
            );
        }
    }

    /// The pre-shard flat reference loops (bit-for-bit the old kernel
    /// semantics): 1q/2q row updates with left-associated accumulation.
    #[allow(clippy::assign_op_pattern)] // verbatim copy of the legacy loop
    fn reference_apply(amps: &mut [C64], u: &Matrix, qubits: &[usize]) {
        let masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
        let k = qubits.len();
        let dim = 1usize << k;
        let offsets: Vec<usize> = (0..dim)
            .map(|g| {
                let mut off = 0;
                for (j, &m) in masks.iter().enumerate() {
                    if (g >> (k - 1 - j)) & 1 == 1 {
                        off |= m;
                    }
                }
                off
            })
            .collect();
        let all: usize = masks.iter().sum();
        for base in 0..amps.len() {
            if base & all != 0 {
                continue;
            }
            let vals: Vec<C64> = offsets.iter().map(|&o| amps[base | o]).collect();
            for (row, &off) in offsets.iter().enumerate() {
                let mut acc = u[(row, 0)] * vals[0];
                for (col, v) in vals.iter().enumerate().skip(1) {
                    acc = acc + u[(row, col)] * *v;
                }
                amps[base | off] = acc;
            }
        }
    }

    fn bit_eq(a: &[C64], b: &[C64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "bit mismatch at {i}: {x:?} vs {y:?}"
            );
        }
    }

    #[test]
    fn one_qubit_kernels_match_embedding() {
        for q in 0..4 {
            check_against_embedding(&Gate::H, &[q], 4, 1);
            check_against_embedding(&Gate::SqrtX, &[q], 4, 2);
            check_against_embedding(&Gate::Rz(0.7.into()), &[q], 4, 3);
        }
    }

    #[test]
    fn two_qubit_kernels_match_embedding_all_orders() {
        for qa in 0..4 {
            for qb in 0..4 {
                if qa == qb {
                    continue;
                }
                check_against_embedding(&Gate::Cnot, &[qa, qb], 4, 4);
                check_against_embedding(&Gate::ISwap, &[qa, qb], 4, 5);
                check_against_embedding(&Gate::Rzz(0.3.into()), &[qa, qb], 4, 6);
            }
        }
    }

    #[test]
    fn three_qubit_kernels_match_embedding() {
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            check_against_embedding(&Gate::Ccx, &p, 4, 7);
            check_against_embedding(&Gate::Cswap, &p, 5, 8);
        }
    }

    #[test]
    fn sharded_path_matches_flat_reference() {
        // 16 qubits = 4 shards: exercises local, cross-pair, mixed, and
        // cross-quad shard cases against the flat pre-shard loops.
        //
        // Gates listed higher-qubit-first accumulate their 4-term rows in
        // the same column order as the legacy loops, so they must agree to
        // 0 ulp. Gates listed lower-qubit-first are permuted to positional
        // order (gate bit 1 = higher memory bit), which reorders the
        // addition chain — those agree to 1e-12 instead.
        let n = 16;
        let mut rng = StdRng::seed_from_u64(12);
        let amps = random_amps(&mut rng, n);
        let exact: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::H, vec![0]),
            (Gate::H, vec![13]),
            (Gate::H, vec![14]),
            (Gate::H, vec![15]),
            (Gate::Cnot, vec![9, 3]),
            (Gate::ISwap, vec![14, 2]),
            (Gate::Rzz(0.3.into()), vec![15, 14]),
            (Gate::Cnot, vec![15, 0]),
        ];
        for (gate, qs) in exact {
            let u = gate.unitary().unwrap();
            let mut fast = amps.clone();
            apply_matrix(&mut fast, &u, &qs);
            let mut slow = amps.clone();
            reference_apply(&mut slow, &u, &qs);
            bit_eq(&fast, &slow);
        }
        let reordered: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::Cnot, vec![3, 9]),
            (Gate::ISwap, vec![2, 14]),
            (Gate::Rzz(0.3.into()), vec![14, 15]),
        ];
        for (gate, qs) in reordered {
            let u = gate.unitary().unwrap();
            let mut fast = amps.clone();
            apply_matrix(&mut fast, &u, &qs);
            let mut slow = amps.clone();
            reference_apply(&mut slow, &u, &qs);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b, 1e-12));
            }
        }
    }

    #[test]
    fn fused_passes_match_gate_by_gate_bitwise() {
        let n = 16;
        let mut rng = StdRng::seed_from_u64(13);
        let amps = random_amps(&mut rng, n);
        let mut ops: Vec<(Matrix, Vec<usize>)> = Vec::new();
        for q in 0..n {
            ops.push((Gate::H.unitary().unwrap(), vec![q]));
        }
        for q in 0..n - 1 {
            ops.push((Gate::Rzz(0.3.into()).unitary().unwrap(), vec![q, q + 1]));
        }
        ops.push((Gate::Ccx.unitary().unwrap(), vec![15, 2, 7]));
        ops.push((Gate::ISwap.unitary().unwrap(), vec![1, 14]));

        let mut unfused = amps.clone();
        for (u, qs) in &ops {
            apply_matrix(&mut unfused, u, qs);
        }
        let mut fused = amps.clone();
        let refs: Vec<(&Matrix, &[usize])> = ops.iter().map(|(u, q)| (u, q.as_slice())).collect();
        apply_unitaries(&mut fused, &refs);
        bit_eq(&fused, &unfused);
    }

    #[test]
    fn large_array_parallel_path_matches() {
        // exceed PAR_THRESHOLD to exercise the rayon branches
        let n = 16;
        let mut rng = StdRng::seed_from_u64(9);
        let amps = random_amps(&mut rng, n);
        let u = Gate::Cnot.unitary().unwrap();

        let mut fast = amps.clone();
        apply_matrix(&mut fast, &u, &[14, 3]);

        let mut seq = amps;
        reference_apply(&mut seq, &u, &[14, 3]);
        for (a, b) in fast.iter().zip(&seq) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }

    #[test]
    fn norm_tree_fold_matches_plain_sum() {
        let mut rng = StdRng::seed_from_u64(17);
        for n in [3usize, 10, 15, 16] {
            let amps = random_amps(&mut rng, n);
            let plain: f64 = amps.iter().map(|z| z.norm_sqr()).sum();
            let tree = norm_sqr(&amps);
            assert!(
                (plain - tree).abs() <= 1e-10 * plain.max(1.0),
                "n={n}: {plain} vs {tree}"
            );
        }
    }

    #[test]
    fn tree_fold_is_ascending_pairwise() {
        let parts = vec![1.0, 2.0, 4.0, 8.0, 16.0];
        // ((1+2) + (4+8)) fold with odd carry: level 1 -> [3, 12, 16],
        // level 2 -> [15, 16], level 3 -> 31.
        assert_eq!(tree_fold_f64(parts), 31.0);
        assert_eq!(tree_fold_f64(vec![]), 0.0);
        assert_eq!(tree_fold_c64(vec![C64::ONE; 5]), C64::real(5.0));
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut amps = random_amps(&mut rng, 6);
        let before = norm_sqr(&amps);
        apply_matrix(&mut amps, &Gate::H.unitary().unwrap(), &[3]);
        apply_matrix(&mut amps, &Gate::Ccx.unitary().unwrap(), &[5, 0, 2]);
        let after = norm_sqr(&amps);
        assert!((before - after).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn duplicate_qubits_panic() {
        let mut amps = vec![C64::ONE; 4];
        apply_matrix(&mut amps, &Gate::Cnot.unitary().unwrap(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut amps = vec![C64::ONE; 4];
        apply_matrix(&mut amps, &Gate::X.unitary().unwrap(), &[2]);
    }
}

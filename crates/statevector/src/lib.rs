//! # bgls-statevector
//!
//! Dense simulation states for BGLS: [`StateVector`] (pure states, the
//! `cirq.StateVectorSimulationState` substitute) and [`DensityMatrix`]
//! (mixed states with exact channel application). Both implement the
//! [`bgls_core::BglsState`] trait family and plug directly into
//! `bgls_core::Simulator`.
//!
//! ```
//! use bgls_circuit::{Circuit, Gate, Operation, Qubit};
//! use bgls_core::Simulator;
//! use bgls_statevector::StateVector;
//!
//! let mut circuit = Circuit::new();
//! circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
//! circuit.push(Operation::measure(Qubit::range(2), "z").unwrap());
//!
//! let results = Simulator::new(StateVector::zero(2))
//!     .with_seed(1)
//!     .run(&circuit, 100)
//!     .unwrap();
//! let h = results.histogram("z").unwrap();
//! assert_eq!(h.count_value(0b00) + h.count_value(0b11), 100);
//! ```

#![warn(missing_docs)]

mod density;
mod kernel;
mod shard;
mod statevector;

pub use density::DensityMatrix;
pub use kernel::{
    apply_matrix, apply_unitaries, norm_sqr, scale, PAR_THRESHOLD, SHARD_BITS, SHARD_LEN,
};
pub use shard::{ShardedBuffer, AMP_ALIGN};
pub use statevector::StateVector;

use bgls_core::{BglsState, BitString};

/// Convenience: the paper's `compute_probability_state_vector` — provided
/// for the hook-style constructor `Simulator::with_hooks`.
pub fn compute_probability_state_vector(state: &StateVector, bits: BitString) -> f64 {
    state.probability(bits)
}

//! Dense state-vector simulation state — the
//! `cirq.StateVectorSimulationState` substitute.

use crate::kernel;
use crate::shard::ShardedBuffer;
use bgls_circuit::{Channel, Circuit, Gate, OpKind, PauliString};
use bgls_core::{AmplitudeState, BglsState, BitString, MarginalState, SimError};
use bgls_linalg::{Matrix, C64};
use rand::{Rng, RngCore};

/// A pure state as a dense vector of `2^n` amplitudes. State-index bit `i`
/// is qubit `i`. Storage is a cache-line-aligned [`ShardedBuffer`] so the
/// sharded kernels in `crate::kernel` never straddle a vector lane at a
/// shard boundary.
#[derive(Debug)]
pub struct StateVector {
    amps: ShardedBuffer,
    n: usize,
}

impl Clone for StateVector {
    fn clone(&self) -> Self {
        StateVector {
            amps: self.amps.clone(),
            n: self.n,
        }
    }

    /// Buffer-reusing clone: overwrites the existing amplitude vector in
    /// place (no reallocation when the widths match) — the per-trajectory
    /// scratch-state path leans on this.
    fn clone_from(&mut self, source: &Self) {
        self.amps.clone_from(&source.amps);
        self.n = source.n;
    }
}

impl StateVector {
    /// The all-zeros computational basis state on `n` qubits.
    pub fn zero(n: usize) -> Self {
        Self::computational_basis(n, 0)
    }

    /// The computational basis state `|basis>` on `n` qubits.
    pub fn computational_basis(n: usize, basis: u64) -> Self {
        assert!(n <= 30, "dense state vector limited to 30 qubits");
        assert!(n == 64 || basis >> n == 0, "basis index wider than n");
        let mut amps = ShardedBuffer::zeroed(1usize << n);
        amps[basis as usize] = C64::ONE;
        StateVector { amps, n }
    }

    /// Builds a state from explicit amplitudes (length must be a power of
    /// two); normalizes.
    pub fn from_amplitudes(amps: Vec<C64>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() || amps.is_empty() {
            return Err(SimError::Invalid(
                "amplitude count must be a nonzero power of two".into(),
            ));
        }
        let n = amps.len().trailing_zeros() as usize;
        let norm = kernel::norm_sqr(&amps);
        if norm <= 0.0 || !norm.is_finite() {
            return Err(SimError::Invalid("state has zero or invalid norm".into()));
        }
        let mut amps = ShardedBuffer::from(amps);
        kernel::scale(&mut amps, 1.0 / norm.sqrt());
        Ok(StateVector { amps, n })
    }

    /// Evolves |0...0> through a unitary circuit (gates only).
    ///
    /// The whole gate list is handed to [`apply_unitaries`](crate::apply_unitaries) in one
    /// call, so runs of gates whose shard footprints overlap fuse into a
    /// single pass over the amplitudes instead of one sweep per gate.
    pub fn from_circuit(circuit: &Circuit, n: usize) -> Result<Self, SimError> {
        let mut sv = StateVector::zero(n);
        let mut owned: Vec<(Matrix, Vec<usize>)> = Vec::new();
        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    sv.check_qubits(&qs)?;
                    owned.push((g.unitary()?, qs));
                }
                OpKind::Measure { .. } => {}
                OpKind::Channel(c) => {
                    return Err(SimError::Unsupported(format!(
                        "channel {} in StateVector::from_circuit",
                        c.name()
                    )))
                }
            }
        }
        let ops: Vec<(&Matrix, &[usize])> =
            owned.iter().map(|(m, qs)| (m, qs.as_slice())).collect();
        kernel::apply_unitaries(&mut sv.amps, &ops);
        Ok(sv)
    }

    /// Raw amplitudes.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// The full Born distribution `P(b) = |<b|psi>|^2` as a dense vector.
    pub fn born_distribution(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Inner product `<self|other>`.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Squared norm (should stay 1 within rounding for unitary circuits).
    pub fn norm_sqr(&self) -> f64 {
        kernel::norm_sqr(&self.amps)
    }

    /// Renormalizes to unit norm.
    pub fn renormalize(&mut self) -> Result<(), SimError> {
        let norm = self.norm_sqr();
        if norm <= 0.0 || !norm.is_finite() {
            return Err(SimError::ZeroProbabilityEvent);
        }
        kernel::scale(&mut self.amps, 1.0 / norm.sqrt());
        Ok(())
    }
}

impl BglsState for StateVector {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        kernel::apply_matrix(&mut self.amps, &u, qubits);
        Ok(())
    }

    fn probability(&self, bits: BitString) -> f64 {
        debug_assert_eq!(bits.len(), self.n);
        self.amps[bits.as_u64() as usize].norm_sqr()
    }

    /// Batched form: one bounds-checked slice walk over direct amplitude
    /// lookups, with no per-candidate trait dispatch. Values are the same
    /// `|amps[b]|^2` the scalar path computes, bit for bit.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        let mut out = Vec::with_capacity(candidates.len());
        for c in candidates {
            debug_assert_eq!(c.len(), self.n);
            out.push(self.amps[c.as_u64() as usize].norm_sqr());
        }
        out
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        self.check_qubits(qubits)?;
        // Quantum-trajectory branch selection: P(i) = |K_i |psi>|^2.
        let mut r: f64 = rng.gen::<f64>();
        let last = channel.kraus().len() - 1;
        for (i, k) in channel.kraus().iter().enumerate() {
            let mut cand = self.amps.clone();
            kernel::apply_matrix(&mut cand, k, qubits);
            let norm = kernel::norm_sqr(&cand);
            if r < norm || i == last {
                if norm <= 0.0 {
                    return Err(SimError::ZeroProbabilityEvent);
                }
                kernel::scale(&mut cand, 1.0 / norm.sqrt());
                self.amps = cand;
                return Ok(i);
            }
            r -= norm;
        }
        unreachable!("last branch always taken")
    }

    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        self.check_qubits(qubits)?;
        // P(i) = |K_i |psi>|^2 — one reusable scratch buffer for every
        // branch.
        let mut scratch = vec![C64::ZERO; self.amps.len()];
        Ok(channel
            .kraus()
            .iter()
            .map(|k| {
                scratch.copy_from_slice(&self.amps);
                kernel::apply_matrix(&mut scratch, k, qubits);
                kernel::norm_sqr(&scratch)
            })
            .collect())
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let k = channel
            .kraus()
            .get(branch)
            .ok_or_else(|| SimError::Invalid(format!("Kraus branch {branch} out of range")))?;
        // apply on a candidate so a zero-weight branch leaves the state
        // untouched instead of poisoned
        let mut cand = self.amps.clone();
        kernel::apply_matrix(&mut cand, k, qubits);
        let norm = kernel::norm_sqr(&cand);
        if norm <= 0.0 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        kernel::scale(&mut cand, 1.0 / norm.sqrt());
        self.amps = cand;
        Ok(())
    }

    /// Exact `<psi|P|psi>` by one inner-product pass over the
    /// amplitudes: with `P = i^{ny} X^x Z^z`, `P|b> = i^{ny}
    /// (-1)^{|b & z|} |b ^ x>`, so each amplitude pairs with its
    /// X-flipped partner under a Z-parity sign. Accumulated as one
    /// partial per shard combined by ascending tree fold, so the result
    /// is bit-identical for every thread count.
    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check_qubits(&[q])?;
        }
        let (x, z, ny) = observable.dense_masks();
        let x = x as usize;
        let amps = self.amps.as_slice();
        let parts = kernel::shard_partials(amps, |ci, chunk| {
            let base = ci * kernel::SHARD_LEN;
            let mut acc = C64::ZERO;
            for (i, &amp) in chunk.iter().enumerate() {
                let b = base + i;
                let term = amps[b ^ x].conj() * amp;
                if (b as u64 & z).count_ones() % 2 == 1 {
                    acc -= term;
                } else {
                    acc += term;
                }
            }
            acc
        });
        Ok((kernel::tree_fold_c64(parts) * C64::i_pow(ny as i64)).re)
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubits(&[qubit])?;
        let mask = 1usize << qubit;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & mask != 0) != value {
                *a = C64::ZERO;
            }
        }
        self.renormalize()
    }
}

impl AmplitudeState for StateVector {
    fn amplitude(&self, bits: BitString) -> C64 {
        self.amps[bits.as_u64() as usize]
    }
}

impl MarginalState for StateVector {
    /// Marginal mass as one partial per shard combined by ascending tree
    /// fold (thread-count-invariant). Mask bits at or above the shard
    /// boundary are constant across a shard, so non-matching shards are
    /// skipped without touching their amplitudes.
    fn marginal_probability(&self, assignment: &[(usize, bool)]) -> f64 {
        let mut mask = 0usize;
        let mut want = 0usize;
        for &(q, v) in assignment {
            mask |= 1 << q;
            if v {
                want |= 1 << q;
            }
        }
        let high = mask & !(kernel::SHARD_LEN - 1);
        let low_mask = mask & (kernel::SHARD_LEN - 1);
        let low_want = want & (kernel::SHARD_LEN - 1);
        let parts = kernel::shard_partials(&self.amps, |ci, chunk| {
            let base = ci * kernel::SHARD_LEN;
            if base & high != want & high {
                return 0.0;
            }
            chunk
                .iter()
                .enumerate()
                .filter(|(i, _)| i & low_mask == low_want)
                .map(|(_, a)| a.norm_sqr())
                .sum()
        });
        kernel::tree_fold_f64(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Operation, Qubit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let sv = StateVector::zero(3);
        assert_eq!(sv.num_qubits(), 3);
        assert!((sv.probability(BitString::zeros(3)) - 1.0).abs() < 1e-15);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn hadamard_splits_amplitude() {
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        assert!(sv
            .amplitude(BitString::zeros(1))
            .approx_eq(C64::real(FRAC_1_SQRT_2), 1e-12));
        assert!((sv.probability(BitString::from_u64(1, 1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_amplitudes() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(1), Qubit(2)]).unwrap());
        let sv = StateVector::from_circuit(&c, 3).unwrap();
        assert!((sv.probability(BitString::from_u64(3, 0b000)) - 0.5).abs() < 1e-12);
        assert!((sv.probability(BitString::from_u64(3, 0b111)) - 0.5).abs() < 1e-12);
        assert!(sv.probability(BitString::from_u64(3, 0b001)) < 1e-15);
    }

    #[test]
    fn marginal_probability_sums_correctly() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        // P(q0 = 0) = 0.5, P(q1 = 0) = 1.0
        assert!((sv.marginal_probability(&[(0, false)]) - 0.5).abs() < 1e-12);
        assert!((sv.marginal_probability(&[(1, false)]) - 1.0).abs() < 1e-12);
        assert!((sv.marginal_probability(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_collapses_and_renormalizes() {
        let mut sv = StateVector::zero(1);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        sv.project(0, true).unwrap();
        assert!((sv.probability(BitString::from_u64(1, 1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projecting_impossible_outcome_errors() {
        let mut sv = StateVector::zero(1);
        assert!(matches!(
            sv.project(0, true),
            Err(SimError::ZeroProbabilityEvent)
        ));
    }

    #[test]
    fn kraus_bit_flip_statistics() {
        let ch = Channel::bit_flip(0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut flips = 0;
        for _ in 0..4000 {
            let mut sv = StateVector::zero(1);
            let branch = sv.apply_kraus(&ch, &[0], &mut rng).unwrap();
            if branch == 1 {
                flips += 1;
                assert!((sv.probability(BitString::from_u64(1, 1)) - 1.0).abs() < 1e-12);
            }
        }
        let f = flips as f64 / 4000.0;
        assert!((f - 0.25).abs() < 0.03, "flip rate {f}");
    }

    #[test]
    fn kraus_branch_probabilities_match_channel_weights() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        let ch = Channel::depolarizing(0.12).unwrap();
        let probs = sv.kraus_branch_probabilities(&ch, &[0]).unwrap();
        assert_eq!(probs.len(), 4);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((probs[0] - 0.88).abs() < 1e-12);
        for p in &probs[1..] {
            assert!((p - 0.04).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_kraus_branch_matches_sampled_branch_state() {
        // forcing branch 1 of a bit flip must yield exactly X|0> = |1>
        let ch = Channel::bit_flip(0.25).unwrap();
        let mut sv = StateVector::zero(1);
        sv.apply_kraus_branch(&ch, 1, &[0]).unwrap();
        assert!((sv.probability(BitString::from_u64(1, 1)) - 1.0).abs() < 1e-12);
        // zero-weight branch errors instead of producing NaNs, and the
        // state is left untouched
        let zero = Channel::bit_flip(0.0).unwrap();
        let mut sv = StateVector::zero(1);
        assert!(matches!(
            sv.apply_kraus_branch(&zero, 1, &[0]),
            Err(SimError::ZeroProbabilityEvent)
        ));
        assert!((sv.probability(BitString::zeros(1)) - 1.0).abs() < 1e-15);
        // out-of-range branch is a typed error
        let mut sv = StateVector::zero(1);
        assert!(sv.apply_kraus_branch(&ch, 9, &[0]).is_err());
    }

    #[test]
    fn clone_from_reuses_buffer_and_copies_amplitudes() {
        let mut src = StateVector::zero(3);
        src.apply_gate(&Gate::H, &[1]).unwrap();
        let mut dst = StateVector::zero(3);
        let buf = dst.amps.as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst.amps.as_ptr(), buf, "clone_from reallocated");
        for (a, b) in dst.amplitudes().iter().zip(src.amplitudes()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let sv = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]).unwrap();
        assert!((sv.probability(BitString::zeros(1)) - 9.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn from_amplitudes_rejects_bad_input() {
        assert!(StateVector::from_amplitudes(vec![C64::ZERO; 3]).is_err());
        assert!(StateVector::from_amplitudes(vec![C64::ZERO; 4]).is_err());
        assert!(StateVector::from_amplitudes(vec![]).is_err());
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::computational_basis(2, 0);
        let b = StateVector::computational_basis(2, 3);
        assert!(a.fidelity(&b) < 1e-15);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_qubit_rejected() {
        let mut sv = StateVector::zero(2);
        assert!(matches!(
            sv.apply_gate(&Gate::X, &[2]),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn pauli_expectation_matches_dense_operator() {
        use bgls_circuit::{embed_unitary, PauliString};
        let mut sv = StateVector::zero(3);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::Ry(0.7.into()), vec![1]),
            (Gate::ISwap, vec![1, 2]),
        ] {
            sv.apply_gate(&g, &qs).unwrap();
        }
        for s in ["I", "Z0", "X1", "Y2", "Z0 Z2", "X0 Y1 Z2", "Y0 Y1"] {
            let p: PauliString = s.parse().unwrap();
            // brute force: apply each embedded factor to the ket
            let mut v = sv.amplitudes().to_vec();
            for (q, op) in p.iter() {
                v = embed_unitary(&op.matrix(), &[Qubit(q as u32)], 3).matvec(&v);
            }
            let want: C64 = sv
                .amplitudes()
                .iter()
                .zip(&v)
                .map(|(a, b)| a.conj() * *b)
                .sum();
            assert!(want.im.abs() < 1e-12);
            let got = sv.expectation(&p).unwrap();
            assert!((got - want.re).abs() < 1e-12, "{s}: {got} vs {want:?}");
        }
        assert!(matches!(
            sv.expectation(&"Z5".parse().unwrap()),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn born_distribution_sums_to_one() {
        let mut sv = StateVector::zero(4);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        sv.apply_gate(&Gate::H, &[2]).unwrap();
        sv.apply_gate(&Gate::Cnot, &[0, 3]).unwrap();
        let p = sv.born_distribution();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}

//! Density-matrix simulation state — the
//! `cirq.DensityMatrixSimulationState` substitute.
//!
//! Implementation detail: the matrix is stored *vectorized*, i.e. as a
//! `4^n`-amplitude array viewed as a 2n-qubit state, with rho[r, c] at
//! index `r | (c << n)`. Applying `U rho U^dagger` is then just applying
//! `U` on the row qubits and `conj(U)` on the column qubits with the same
//! dense kernels used by [`crate::StateVector`]. Channels apply their full
//! Kraus sum — exactly, with no trajectory sampling — so noisy circuits
//! keep the sample-parallelized BGLS path.

use crate::kernel;
use crate::shard::ShardedBuffer;
use bgls_circuit::{Channel, Gate, PauliString};
use bgls_core::{BglsState, BitString, MarginalState, SimError};
use bgls_linalg::{Matrix, C64};
use rand::RngCore;

/// Mixed state of `n` qubits as a vectorized `2^n x 2^n` density matrix.
/// Entries live in a cache-line-aligned [`ShardedBuffer`], so the sharded
/// dense kernels apply to the vectorized form exactly as they do to a
/// state vector.
#[derive(Debug)]
pub struct DensityMatrix {
    /// Vectorized entries: `rho[r, c]` at `r | (c << n)`.
    vec: ShardedBuffer,
    n: usize,
}

impl Clone for DensityMatrix {
    fn clone(&self) -> Self {
        DensityMatrix {
            vec: self.vec.clone(),
            n: self.n,
        }
    }

    /// Buffer-reusing clone: overwrites the existing entry vector in
    /// place (no reallocation when the widths match) — the per-trajectory
    /// scratch-state path leans on this.
    fn clone_from(&mut self, source: &Self) {
        self.vec.clone_from(&source.vec);
        self.n = source.n;
    }
}

impl DensityMatrix {
    /// The pure all-zeros state `|0..0><0..0|`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= 13, "density matrix limited to 13 qubits (4^n memory)");
        let mut vec = ShardedBuffer::zeroed(1usize << (2 * n));
        vec[0] = C64::ONE;
        DensityMatrix { vec, n }
    }

    /// A pure state `|psi><psi|` from amplitudes of length `2^n`.
    pub fn from_pure(amps: &[C64]) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() || amps.is_empty() {
            return Err(SimError::Invalid(
                "amplitude count must be a power of two".into(),
            ));
        }
        let n = amps.len().trailing_zeros() as usize;
        let dim = amps.len();
        let mut vec = ShardedBuffer::zeroed(dim * dim);
        for c in 0..dim {
            for r in 0..dim {
                vec[r | (c << n)] = amps[r] * amps[c].conj();
            }
        }
        let mut dm = DensityMatrix { vec, n };
        let tr = dm.trace();
        if tr.abs() <= 0.0 {
            return Err(SimError::Invalid("zero-trace state".into()));
        }
        kernel::scale(&mut dm.vec, 1.0 / tr);
        Ok(dm)
    }

    /// The maximally mixed state `I / 2^n`.
    pub fn maximally_mixed(n: usize) -> Self {
        let mut dm = DensityMatrix::zero(n);
        dm.vec[0] = C64::ZERO;
        let dim = 1usize << n;
        let w = 1.0 / dim as f64;
        for r in 0..dim {
            dm.vec[r | (r << n)] = C64::real(w);
        }
        dm
    }

    /// Trace (should be 1 within rounding).
    pub fn trace(&self) -> f64 {
        let dim = 1usize << self.n;
        (0..dim).map(|r| self.vec[r | (r << self.n)].re).sum()
    }

    /// Purity `Tr(rho^2)`; 1 for pure states, `1/2^n` for maximally mixed.
    pub fn purity(&self) -> f64 {
        // Tr(rho^2) = sum_{r,c} rho[r,c] rho[c,r] = sum |rho[r,c]|^2 for
        // Hermitian rho — the squared norm of the vectorized entries.
        kernel::norm_sqr(&self.vec)
    }

    /// Dense copy of the matrix (verification only).
    pub fn to_matrix(&self) -> Matrix {
        let dim = 1usize << self.n;
        Matrix::from_fn(dim, dim, |r, c| self.vec[r | (c << self.n)])
    }

    /// Applies a matrix to the row side and its conjugate to the column
    /// side: `rho -> M rho M^dagger` (not necessarily trace preserving).
    /// Both sides go through [`apply_unitaries`](crate::apply_unitaries) in one call, so
    /// the row and column sweeps fuse into a single pass when their shard
    /// footprints allow it.
    fn conjugate_by(&mut self, m: &Matrix, qubits: &[usize]) {
        let col_qubits: Vec<usize> = qubits.iter().map(|&q| q + self.n).collect();
        let conj = m.conj();
        kernel::apply_unitaries(&mut self.vec, &[(m, qubits), (&conj, &col_qubits)]);
    }

    /// Exact channel application: `rho -> sum_i K_i rho K_i^dagger`.
    fn apply_channel_exact(&mut self, channel: &Channel, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let mut acc = ShardedBuffer::zeroed(self.vec.len());
        for k in channel.kraus() {
            let mut branch = self.clone();
            branch.conjugate_by(k, qubits);
            for (a, b) in acc.iter_mut().zip(branch.vec.iter()) {
                *a += *b;
            }
        }
        self.vec = acc;
        Ok(())
    }
}

impl BglsState for DensityMatrix {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        self.conjugate_by(&u, qubits);
        Ok(())
    }

    fn probability(&self, bits: BitString) -> f64 {
        let r = bits.as_u64() as usize;
        self.vec[r | (r << self.n)].re.max(0.0)
    }

    /// Batched form: the diagonal index arithmetic `r | (r << n)` hoisted
    /// into one tight loop. Same clamped diagonal entries as the scalar
    /// path, bit for bit.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        let n = self.n;
        let mut out = Vec::with_capacity(candidates.len());
        for c in candidates {
            let r = c.as_u64() as usize;
            out.push(self.vec[r | (r << n)].re.max(0.0));
        }
        out
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        _rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        self.apply_channel_exact(channel, qubits).map(|_| 0)
    }

    /// Density matrices absorb the whole channel exactly, so the
    /// "branching" is the single certain branch `[1.0]` — a forest node
    /// on this backend never forks at a channel.
    fn kraus_branch_probabilities(
        &self,
        _channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        self.check_qubits(qubits)?;
        Ok(vec![1.0])
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        if branch != 0 {
            return Err(SimError::Invalid(format!(
                "deterministic channel has a single branch, got {branch}"
            )));
        }
        self.apply_channel_exact(channel, qubits)
    }

    /// Exact `Tr(rho P)` by one pass over the generalized diagonal:
    /// `P|b> = i^{ny} (-1)^{|b & z|} |b ^ x>` makes the trace a sum of
    /// `rho[b, b ^ x]` entries under Z-parity signs. `O(2^n)` time on
    /// the `O(4^n)` representation, no allocation.
    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check_qubits(&[q])?;
        }
        let (x, z, ny) = observable.dense_masks();
        let x = x as usize;
        let dim = 1usize << self.n;
        let mut acc = C64::ZERO;
        for b in 0..dim {
            // Tr(rho P) = sum_b <b| rho P |b> = sum_b phase(b) rho[b, b^x]
            let term = self.vec[b | ((b ^ x) << self.n)];
            if (b as u64 & z).count_ones() % 2 == 1 {
                acc -= term;
            } else {
                acc += term;
            }
        }
        Ok((acc * C64::i_pow(ny as i64)).re)
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubits(&[qubit])?;
        let rmask = 1usize << qubit;
        let cmask = 1usize << (qubit + self.n);
        for (i, z) in self.vec.iter_mut().enumerate() {
            let rbit = i & rmask != 0;
            let cbit = i & cmask != 0;
            if rbit != value || cbit != value {
                *z = C64::ZERO;
            }
        }
        let tr = self.trace();
        if tr <= 0.0 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        kernel::scale(&mut self.vec, 1.0 / tr);
        Ok(())
    }

    fn channels_are_deterministic(&self) -> bool {
        true
    }
}

impl MarginalState for DensityMatrix {
    fn marginal_probability(&self, assignment: &[(usize, bool)]) -> f64 {
        let dim = 1usize << self.n;
        let mut mask = 0usize;
        let mut want = 0usize;
        for &(q, v) in assignment {
            mask |= 1 << q;
            if v {
                want |= 1 << q;
            }
        }
        (0..dim)
            .filter(|r| r & mask == want)
            .map(|r| self.vec[r | (r << self.n)].re)
            .sum::<f64>()
            .max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dummy_rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn zero_state_is_pure_with_unit_trace() {
        let dm = DensityMatrix::zero(2);
        assert!((dm.trace() - 1.0).abs() < 1e-15);
        assert!((dm.purity() - 1.0).abs() < 1e-15);
        assert!((dm.probability(BitString::zeros(2)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn unitary_evolution_matches_state_vector() {
        let mut dm = DensityMatrix::zero(3);
        let mut sv = StateVector::zero(3);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::Rzz(0.4.into()), vec![1, 2]),
        ] {
            dm.apply_gate(&g, &qs).unwrap();
            sv.apply_gate(&g, &qs).unwrap();
        }
        for v in 0..8u64 {
            let b = BitString::from_u64(3, v);
            assert!(
                (dm.probability(b) - sv.probability(b)).abs() < 1e-12,
                "mismatch at {b}"
            );
        }
        assert!((dm.purity() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_gate(&Gate::H, &[0]).unwrap();
        let ch = Channel::depolarizing(0.5).unwrap();
        dm.apply_kraus(&ch, &[0], &mut dummy_rng()).unwrap();
        assert!((dm.trace() - 1.0).abs() < 1e-12);
        assert!(dm.purity() < 0.99);
    }

    #[test]
    fn bit_flip_probabilities_are_exact() {
        let mut dm = DensityMatrix::zero(1);
        let ch = Channel::bit_flip(0.3).unwrap();
        dm.apply_kraus(&ch, &[0], &mut dummy_rng()).unwrap();
        assert!((dm.probability(BitString::from_u64(1, 1)) - 0.3).abs() < 1e-12);
        assert!((dm.probability(BitString::from_u64(1, 0)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_fixed_point_is_ground_state() {
        let mut dm = DensityMatrix::zero(1);
        dm.apply_gate(&Gate::X, &[0]).unwrap();
        let ch = Channel::amplitude_damping(1.0).unwrap();
        dm.apply_kraus(&ch, &[0], &mut dummy_rng()).unwrap();
        assert!((dm.probability(BitString::zeros(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_probabilities_uniform() {
        let dm = DensityMatrix::maximally_mixed(2);
        for v in 0..4u64 {
            assert!((dm.probability(BitString::from_u64(2, v)) - 0.25).abs() < 1e-15);
        }
        assert!((dm.purity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn projection_conditions_the_state() {
        let mut dm = DensityMatrix::zero(2);
        dm.apply_gate(&Gate::H, &[0]).unwrap();
        dm.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        dm.project(0, true).unwrap();
        assert!((dm.probability(BitString::from_u64(2, 0b11)) - 1.0).abs() < 1e-12);
        assert!((dm.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_pure_matches_direct_construction() {
        let mut sv = StateVector::zero(2);
        sv.apply_gate(&Gate::H, &[0]).unwrap();
        sv.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        let dm = DensityMatrix::from_pure(sv.amplitudes()).unwrap();
        assert!((dm.purity() - 1.0).abs() < 1e-12);
        assert!((dm.probability(BitString::from_u64(2, 0b11)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_match_statevector() {
        let mut dm = DensityMatrix::zero(2);
        let mut sv = StateVector::zero(2);
        for (g, qs) in [(Gate::H, vec![0usize]), (Gate::Ry(0.8.into()), vec![1])] {
            dm.apply_gate(&g, &qs).unwrap();
            sv.apply_gate(&g, &qs).unwrap();
        }
        use bgls_core::MarginalState as _;
        for q in 0..2 {
            for v in [false, true] {
                let a = dm.marginal_probability(&[(q, v)]);
                let b = sv.marginal_probability(&[(q, v)]);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kraus_branching_is_the_single_exact_channel() {
        let ch = Channel::bit_flip(0.3).unwrap();
        let dm = DensityMatrix::zero(1);
        assert_eq!(dm.kraus_branch_probabilities(&ch, &[0]).unwrap(), vec![1.0]);
        let mut dm = DensityMatrix::zero(1);
        dm.apply_kraus_branch(&ch, 0, &[0]).unwrap();
        assert!((dm.probability(BitString::from_u64(1, 1)) - 0.3).abs() < 1e-12);
        let mut dm = DensityMatrix::zero(1);
        assert!(dm.apply_kraus_branch(&ch, 1, &[0]).is_err());
    }

    #[test]
    fn pauli_expectation_is_the_operator_trace() {
        use bgls_circuit::{embed_unitary, PauliString, Qubit};
        // mixed state: entangle, then a channel
        let mut dm = DensityMatrix::zero(2);
        dm.apply_gate(&Gate::H, &[0]).unwrap();
        dm.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        dm.apply_gate(&Gate::T, &[1]).unwrap();
        dm.apply_kraus(&Channel::depolarizing(0.2).unwrap(), &[0], &mut dummy_rng())
            .unwrap();
        for s in ["I", "Z0", "X0 X1", "Y0 Z1", "Y0 Y1", "X1"] {
            let p: PauliString = s.parse().unwrap();
            let mut op = Matrix::identity(4);
            for (q, factor) in p.iter() {
                op = embed_unitary(&factor.matrix(), &[Qubit(q as u32)], 2).matmul(&op);
            }
            let want = dm.to_matrix().matmul(&op).trace();
            assert!(want.im.abs() < 1e-12);
            let got = dm.expectation(&p).unwrap();
            assert!((got - want.re).abs() < 1e-12, "{s}: {got} vs {want:?}");
        }
        // depolarizing shrinks <Z0> on |0><0| below 1
        let mut dm = DensityMatrix::zero(1);
        dm.apply_kraus(&Channel::depolarizing(0.3).unwrap(), &[0], &mut dummy_rng())
            .unwrap();
        let z = dm.expectation(&PauliString::z(0)).unwrap();
        assert!((z - 0.6).abs() < 1e-12, "depolarized <Z> = {z}");
    }

    #[test]
    fn clone_from_reuses_buffer() {
        let mut src = DensityMatrix::zero(2);
        src.apply_gate(&Gate::H, &[0]).unwrap();
        let mut dst = DensityMatrix::zero(2);
        let buf = dst.vec.as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst.vec.as_ptr(), buf, "clone_from reallocated");
        assert!((dst.probability(BitString::from_u64(2, 1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn channels_flagged_deterministic() {
        assert!(DensityMatrix::zero(1).channels_are_deterministic());
        assert!(!StateVector::zero(1).channels_are_deterministic());
    }
}

//! Cache-line-aligned amplitude storage for the dense backends.
//!
//! One contiguous allocation aligned to [`AMP_ALIGN`] (a full x86 cache
//! line, which is also the AVX-512 vector width), viewed logically as
//! fixed-length shards by the kernel layer in `crate::kernel`. Keeping the
//! storage contiguous preserves the flat `&[C64]` surface (`amplitudes()`,
//! direct Born lookups, `inner_product`) while the alignment guarantees that
//! every shard starts on a cache-line/vector boundary, so the
//! runtime-dispatched SIMD kernels never straddle lines at shard edges.

use bgls_linalg::C64;
use std::alloc::{alloc, alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment of dense amplitude allocations, in bytes.
pub const AMP_ALIGN: usize = 64;

/// A fixed-length, 64-byte-aligned buffer of complex amplitudes.
///
/// Dereferences to `[C64]`, so all slice-based kernels and accessors work
/// unchanged; `clone_from` reuses the existing allocation when the lengths
/// match (the per-trajectory scratch-state path relies on that).
pub struct ShardedBuffer {
    ptr: NonNull<C64>,
    len: usize,
}

// SAFETY: the buffer uniquely owns its allocation of plain `C64` data.
unsafe impl Send for ShardedBuffer {}
// SAFETY: shared access is only through `&self` slices of `C64: Sync`.
unsafe impl Sync for ShardedBuffer {}

impl ShardedBuffer {
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<C64>(), AMP_ALIGN)
            .expect("amplitude buffer layout overflow")
    }

    /// Allocates without initializing. The caller must write every element
    /// before the buffer is read.
    fn alloc_uninit(len: usize) -> Self {
        if len == 0 {
            return ShardedBuffer {
                ptr: NonNull::dangling(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size.
        let raw = unsafe { alloc(layout) } as *mut C64;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        ShardedBuffer { ptr, len }
    }

    /// An all-zero buffer of `len` amplitudes.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return Self::alloc_uninit(0);
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size; all-zero bits are a valid C64.
        let raw = unsafe { alloc_zeroed(layout) } as *mut C64;
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        ShardedBuffer { ptr, len }
    }

    /// Copies a slice into a fresh aligned buffer.
    pub fn from_slice(src: &[C64]) -> Self {
        let mut buf = Self::alloc_uninit(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    /// The amplitudes as a flat slice.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        // SAFETY: ptr covers exactly `len` initialized elements.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The amplitudes as a flat mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        // SAFETY: ptr covers exactly `len` elements owned uniquely by self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl From<Vec<C64>> for ShardedBuffer {
    fn from(v: Vec<C64>) -> Self {
        Self::from_slice(&v)
    }
}

impl Drop for ShardedBuffer {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated with the identical layout; C64 needs no drop.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) }
        }
    }
}

impl Clone for ShardedBuffer {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }

    /// Reuses the existing allocation when the lengths match; reallocates
    /// otherwise.
    fn clone_from(&mut self, source: &Self) {
        if self.len == source.len {
            self.as_mut_slice().copy_from_slice(source.as_slice());
        } else {
            *self = source.clone();
        }
    }
}

impl Deref for ShardedBuffer {
    type Target = [C64];
    #[inline]
    fn deref(&self) -> &[C64] {
        self.as_slice()
    }
}

impl DerefMut for ShardedBuffer {
    #[inline]
    fn deref_mut(&mut self) -> &mut [C64] {
        self.as_mut_slice()
    }
}

impl fmt::Debug for ShardedBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedBuffer")
            .field("len", &self.len)
            .field("align", &AMP_ALIGN)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_cache_line_aligned() {
        for len in [1usize, 2, 16, 1 << 10, (1 << 14) + 3] {
            let buf = ShardedBuffer::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % AMP_ALIGN, 0);
            assert_eq!(buf.len(), len);
            assert!(buf.iter().all(|&z| z == C64::ZERO));
        }
    }

    #[test]
    fn round_trips_and_clones() {
        let src: Vec<C64> = (0..37).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let buf = ShardedBuffer::from_slice(&src);
        assert_eq!(buf.as_slice(), &src[..]);
        let copy = buf.clone();
        assert_eq!(copy.as_slice(), buf.as_slice());
        assert_ne!(copy.as_ptr(), buf.as_ptr());
    }

    #[test]
    fn clone_from_reuses_matching_allocation() {
        let src = ShardedBuffer::from_slice(&[C64::ONE; 64]);
        let mut dst = ShardedBuffer::zeroed(64);
        let p = dst.as_ptr();
        dst.clone_from(&src);
        assert_eq!(dst.as_ptr(), p);
        assert!(dst.iter().all(|&z| z == C64::ONE));
        // length mismatch falls back to reallocation
        let mut small = ShardedBuffer::zeroed(8);
        small.clone_from(&src);
        assert_eq!(small.len(), 64);
    }

    #[test]
    fn zero_length_buffer_is_safe() {
        let buf = ShardedBuffer::zeroed(0);
        assert!(buf.is_empty());
        let copy = buf.clone();
        assert!(copy.is_empty());
    }
}

//! Timing-calibrated planner cost model.
//!
//! The planner's static formulas (`ops * 2^n` for dense statevector,
//! `ops * n * chi^3` for the chain MPS, ...) predict *relative* cost
//! well enough for cold routing, but their constants are fictions: a
//! cache-friendly dense sweep and a pointer-chasing MPS contraction do
//! not cost the same per abstract "unit". [`CostModel`] keeps the
//! static formulas as priors and calibrates a per-`(backend, path)`
//! milliseconds-per-unit constant online from the wall-clock batch
//! timings the service already measures, using an exponentially
//! weighted moving average.
//!
//! Cold behaviour is *identical* to the static model: until a bucket
//! has seen [`CostModel::warmup`] observations, [`CostModel::predict_ms`]
//! returns `None` and routing falls back to the static cost comparison,
//! so fresh services plan exactly like before calibration existed.

use crate::planner::ExecPath;
use crate::profile::CircuitProfile;
use bgls_backend::BackendKind;
use bgls_linalg::FxHashMap;

/// Default EWMA smoothing factor: each new observation contributes 30%.
const DEFAULT_ALPHA: f64 = 0.3;

/// Default observations before a bucket's calibration is trusted.
const DEFAULT_WARMUP: u32 = 3;

/// One calibrated `(backend, path)` bucket.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// EWMA of measured milliseconds per static cost unit.
    ms_per_unit: f64,
    /// Observations folded in so far.
    samples: u32,
}

/// Online-calibrated execution-cost model: static per-backend formulas
/// as priors, EWMA-calibrated `ms/unit` constants per `(backend, path)`
/// bucket once real timings arrive.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// EWMA smoothing factor in `(0, 1]`; higher adapts faster.
    pub alpha: f64,
    /// Observations a bucket needs before predictions are trusted.
    pub warmup: u32,
    buckets: FxHashMap<(&'static str, ExecPath), Bucket>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alpha: DEFAULT_ALPHA,
            warmup: DEFAULT_WARMUP,
            buckets: FxHashMap::default(),
        }
    }
}

/// Calibration bucket name for a backend: the MPS cap and other
/// parameters are folded into the unit formula, not the bucket key, so
/// observations aggregate across capped and uncapped runs.
fn bucket_name(backend: &BackendKind) -> &'static str {
    match backend {
        BackendKind::StateVector => "statevector",
        BackendKind::DensityMatrix => "density",
        BackendKind::ChForm => "chform",
        BackendKind::ChainMps { .. } => "mps",
        BackendKind::LazyNetwork => "lazy",
        BackendKind::Tableau => "tableau",
        BackendKind::PurifiedMps { .. } => "pmps",
    }
}

impl CostModel {
    /// A cold model with the default smoothing and warm-up.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// The static prior: abstract cost units for running `profile` once
    /// on `backend`. These are the planner's original formulas — only
    /// their *ratios* matter for routing; [`CostModel::observe`] learns
    /// the real milliseconds-per-unit scale.
    pub fn static_units(profile: &CircuitProfile, backend: &BackendKind) -> f64 {
        let ops = profile.num_operations.max(1) as f64;
        let n = profile.num_qubits.max(1) as f64;
        let chi = (profile.chi_bound() as f64).max(1.0);
        match backend {
            BackendKind::StateVector => ops * 2f64.powi(profile.num_qubits.min(60) as i32),
            BackendKind::DensityMatrix => ops * 4f64.powi(profile.num_qubits.min(30) as i32),
            BackendKind::ChainMps { chi: cap } => {
                let chi = cap.map(|c| (c as f64).min(chi)).unwrap_or(chi);
                ops * n * chi * chi * chi
            }
            BackendKind::LazyNetwork => ops * n * chi * chi,
            BackendKind::ChForm | BackendKind::Tableau => ops * n * n,
            BackendKind::PurifiedMps {
                chi: cap,
                kraus_dim,
            } => {
                let chi = cap.map(|c| (c as f64).min(chi)).unwrap_or(chi);
                // every contraction also sweeps the Kraus legs; without a
                // configured cap assume one single-qubit channel's growth
                // (4 Kraus operators) as the per-site prior
                let kappa = kraus_dim.map(|k| k as f64).unwrap_or(4.0);
                ops * n * chi * chi * chi * kappa
            }
        }
    }

    /// Folds one measured batch into the `(backend, path)` bucket:
    /// `units` is the static cost of the work actually executed
    /// (circuit units x repetitions), `elapsed_ms` its wall-clock time.
    /// Non-finite or non-positive observations are ignored.
    pub fn observe(&mut self, backend: &BackendKind, path: ExecPath, units: f64, elapsed_ms: f64) {
        if !units.is_finite() || units <= 0.0 || !elapsed_ms.is_finite() || elapsed_ms < 0.0 {
            return;
        }
        let rate = elapsed_ms / units;
        let entry = self
            .buckets
            .entry((bucket_name(backend), path))
            .or_insert(Bucket {
                ms_per_unit: rate,
                samples: 0,
            });
        entry.ms_per_unit += self.alpha * (rate - entry.ms_per_unit);
        entry.samples = entry.samples.saturating_add(1);
    }

    /// Calibrated wall-clock prediction in milliseconds for running
    /// `units` of work on `(backend, path)`, or `None` while the bucket
    /// is still inside its warm-up window (callers fall back to the
    /// static comparison — cold routing is unchanged by construction).
    pub fn predict_ms(&self, backend: &BackendKind, path: ExecPath, units: f64) -> Option<f64> {
        let b = self.buckets.get(&(bucket_name(backend), path))?;
        (b.samples >= self.warmup).then_some(b.ms_per_unit * units)
    }

    /// Observation count for a `(backend, path)` bucket.
    pub fn samples(&self, backend: &BackendKind, path: ExecPath) -> u32 {
        self.buckets
            .get(&(bucket_name(backend), path))
            .map(|b| b.samples)
            .unwrap_or(0)
    }

    /// True when both `a` and `b` have warmed-up buckets on `path`, i.e.
    /// a calibrated comparison between them is meaningful.
    pub fn can_compare(&self, a: &BackendKind, b: &BackendKind, path: ExecPath) -> bool {
        self.predict_ms(a, path, 1.0).is_some() && self.predict_ms(b, path, 1.0).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use bgls_circuit::Circuit;

    fn profile(n: usize, ops: usize) -> CircuitProfile {
        let mut p = CircuitProfile::of(&Circuit::new());
        p.num_qubits = n;
        p.num_operations = ops;
        p
    }

    #[test]
    fn cold_model_predicts_nothing() {
        let m = CostModel::new();
        assert_eq!(
            m.predict_ms(&BackendKind::StateVector, ExecPath::SampleParallel, 1e6),
            None
        );
        assert!(!m.can_compare(
            &BackendKind::StateVector,
            &BackendKind::ChainMps { chi: None },
            ExecPath::SampleParallel
        ));
    }

    #[test]
    fn warmup_gates_predictions() {
        let mut m = CostModel::new();
        let sv = BackendKind::StateVector;
        for _ in 0..m.warmup - 1 {
            m.observe(&sv, ExecPath::SampleParallel, 1000.0, 5.0);
        }
        assert_eq!(m.predict_ms(&sv, ExecPath::SampleParallel, 1000.0), None);
        m.observe(&sv, ExecPath::SampleParallel, 1000.0, 5.0);
        let p = m
            .predict_ms(&sv, ExecPath::SampleParallel, 1000.0)
            .expect("warmed up");
        assert!((p - 5.0).abs() < 1e-9, "constant-rate stream: {p}");
    }

    #[test]
    fn ewma_tracks_drifting_rates() {
        let mut m = CostModel::new();
        let sv = BackendKind::StateVector;
        for _ in 0..10 {
            m.observe(&sv, ExecPath::SampleParallel, 1000.0, 2.0);
        }
        for _ in 0..30 {
            m.observe(&sv, ExecPath::SampleParallel, 1000.0, 8.0);
        }
        let p = m.predict_ms(&sv, ExecPath::SampleParallel, 1000.0).unwrap();
        assert!(p > 7.0 && p < 8.5, "EWMA should approach the new rate: {p}");
    }

    #[test]
    fn mps_cap_buckets_aggregate() {
        let mut m = CostModel::new();
        let capped = BackendKind::ChainMps { chi: Some(4) };
        let uncapped = BackendKind::ChainMps { chi: None };
        for _ in 0..3 {
            m.observe(&capped, ExecPath::Replay, 100.0, 1.0);
        }
        assert!(m.predict_ms(&uncapped, ExecPath::Replay, 100.0).is_some());
    }

    #[test]
    fn static_units_preserve_the_planner_ratios() {
        let p = profile(20, 50);
        let sv = CostModel::static_units(&p, &BackendKind::StateVector);
        let mut narrow = profile(8, 50);
        narrow.log2_chi_bound = 1;
        let mps = CostModel::static_units(&narrow, &BackendKind::ChainMps { chi: Some(2) });
        assert!(sv > mps, "wide dense must dominate a chi-2 chain");
        assert!(CostModel::static_units(&p, &BackendKind::Tableau) < sv);
    }

    #[test]
    fn bad_observations_are_ignored() {
        let mut m = CostModel::new();
        let sv = BackendKind::StateVector;
        m.observe(&sv, ExecPath::Replay, 0.0, 5.0);
        m.observe(&sv, ExecPath::Replay, 100.0, f64::NAN);
        m.observe(&sv, ExecPath::Replay, -5.0, 5.0);
        assert_eq!(m.samples(&sv, ExecPath::Replay), 0);
    }
}

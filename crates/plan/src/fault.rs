//! Deterministic fault injection for chaos-testing the serving layer.
//!
//! A [`FaultPlan`] is a pure function from `(plan seed, job id, attempt
//! index)` to an [`InjectedFault`]: the "random" fault rolls are drawn
//! from counter-composed [`stream_seed`] streams, so a given plan
//! injects *exactly* the same faults at the same points on every run —
//! across thread counts, retry orderings, and batch compositions. That
//! determinism is what makes the chaos suite assert exact outcomes
//! (which jobs degrade, how many panics are caught, which histograms
//! are bit-identical) instead of statistical ones.
//!
//! The plan is wired in via [`crate::ServiceConfig::fault`] and costs
//! nothing when absent: the service consults it only when configured,
//! and a default (inert) plan injects nothing.
//!
//! Fault kinds:
//! * **Panic** — the job's execution slot panics before the simulator
//!   runs; exercises the `catch_unwind` isolation and the retry chain.
//! * **Budget exhaustion** — the job fails with
//!   [`bgls_core::SimError::BudgetExhausted`]; exercises the immediate
//!   degradation path (retrying an exhausted budget is pointless).
//! * **Backend failure** — the job executes for real but its simulator
//!   is armed with an [`OpFaultSpec`] that errors at the `fail_at_op`-th
//!   operation; exercises mid-circuit failure and state teardown.

use bgls_backend::{BackendKind, OpFaultSpec};
use bgls_core::stream_seed;

/// What the plan injects for one `(job, attempt)` slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Execute normally.
    None,
    /// Panic in the job's execution slot.
    Panic,
    /// Fail with a budget-exhaustion error (degrades immediately).
    BudgetExhaustion,
    /// Execute with an op-level fault armed at
    /// [`FaultPlan::fail_at_op`].
    BackendFailure,
}

/// A deterministic, seed-keyed fault-injection plan.
///
/// Probabilities are evaluated in the order panic → backend failure →
/// budget exhaustion from *independent* roll streams, so enabling one
/// fault kind never perturbs which jobs another kind selects.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Root seed of every fault roll.
    pub seed: u64,
    /// Probability that a `(job, attempt)` slot panics.
    pub panic_probability: f64,
    /// Probability that a slot runs with an armed op fault.
    pub backend_failure_probability: f64,
    /// Probability that a slot fails with budget exhaustion.
    pub budget_exhaustion_probability: f64,
    /// Operation ordinal (1-based) where an armed backend failure
    /// fires.
    pub fail_at_op: u64,
    /// Artificial service latency added per executed batch, in clock
    /// milliseconds — exercises deadline enforcement.
    pub latency_ms: u64,
    /// Faults are injected only while a job's attempt index is below
    /// this bound. The default of 1 faults only first attempts, so
    /// every faulted job can recover by retrying; raise it to force
    /// jobs down the degradation ladder, or to `u32::MAX` to make
    /// selected slots fail terminally.
    pub stop_after_attempts: u32,
    /// Restricts injection to jobs planned onto this backend family
    /// (`None` faults every backend).
    pub only_backend: Option<BackendKind>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_probability: 0.0,
            backend_failure_probability: 0.0,
            budget_exhaustion_probability: 0.0,
            fail_at_op: 1,
            latency_ms: 0,
            stop_after_attempts: 1,
            only_backend: None,
        }
    }
}

impl FaultPlan {
    /// An inert plan with the given root seed — switch individual
    /// faults on from here.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// True when the plan can never select a per-job fault (it may
    /// still add latency).
    pub fn is_inert(&self) -> bool {
        self.panic_probability <= 0.0
            && self.backend_failure_probability <= 0.0
            && self.budget_exhaustion_probability <= 0.0
    }

    /// A uniform roll in `[0, 1)` for one `(job, attempt, kind)` slot.
    /// Composed `stream_seed` hops keep the streams independent.
    fn roll(&self, job: u64, attempt: u32, kind_tag: u64) -> f64 {
        let stream = stream_seed(
            stream_seed(self.seed, job),
            ((attempt as u64) << 3) | kind_tag,
        );
        // take the top 53 bits, the double-precision mantissa width
        ((stream >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// The fault (if any) to inject for this `(job, attempt)` slot on
    /// `backend`. Pure and deterministic: same plan, same arguments,
    /// same answer.
    pub fn decide(&self, job: u64, attempt: u32, backend: BackendKind) -> InjectedFault {
        if attempt >= self.stop_after_attempts {
            return InjectedFault::None;
        }
        if let Some(only) = self.only_backend {
            if !only.same_family(backend) {
                return InjectedFault::None;
            }
        }
        if self.roll(job, attempt, 1) < self.panic_probability {
            return InjectedFault::Panic;
        }
        if self.roll(job, attempt, 2) < self.backend_failure_probability {
            return InjectedFault::BackendFailure;
        }
        if self.roll(job, attempt, 3) < self.budget_exhaustion_probability {
            return InjectedFault::BudgetExhaustion;
        }
        InjectedFault::None
    }

    /// The op-fault hook specification for a
    /// [`InjectedFault::BackendFailure`] slot.
    pub fn op_fault_spec(&self) -> OpFaultSpec {
        OpFaultSpec::new(
            self.fail_at_op.max(1),
            format!("injected backend fault at op {}", self.fail_at_op.max(1)),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_a_pure_function_of_the_slot() {
        let plan = FaultPlan {
            panic_probability: 0.3,
            backend_failure_probability: 0.3,
            budget_exhaustion_probability: 0.3,
            stop_after_attempts: u32::MAX,
            ..FaultPlan::seeded(42)
        };
        for job in 0..64u64 {
            for attempt in 0..4u32 {
                let a = plan.decide(job, attempt, BackendKind::StateVector);
                let b = plan.decide(job, attempt, BackendKind::StateVector);
                assert_eq!(a, b, "job {job} attempt {attempt}");
            }
        }
    }

    #[test]
    fn certain_probabilities_always_fire_in_precedence_order() {
        let everything = FaultPlan {
            panic_probability: 1.0,
            backend_failure_probability: 1.0,
            budget_exhaustion_probability: 1.0,
            ..FaultPlan::seeded(7)
        };
        assert_eq!(
            everything.decide(0, 0, BackendKind::StateVector),
            InjectedFault::Panic
        );
        let no_panic = FaultPlan {
            panic_probability: 0.0,
            ..everything.clone()
        };
        assert_eq!(
            no_panic.decide(0, 0, BackendKind::StateVector),
            InjectedFault::BackendFailure
        );
        let only_budget = FaultPlan {
            panic_probability: 0.0,
            backend_failure_probability: 0.0,
            ..everything
        };
        assert_eq!(
            only_budget.decide(0, 0, BackendKind::StateVector),
            InjectedFault::BudgetExhaustion
        );
    }

    #[test]
    fn faults_stop_after_the_configured_attempt() {
        let plan = FaultPlan {
            panic_probability: 1.0,
            stop_after_attempts: 2,
            ..FaultPlan::seeded(3)
        };
        assert_eq!(
            plan.decide(5, 0, BackendKind::StateVector),
            InjectedFault::Panic
        );
        assert_eq!(
            plan.decide(5, 1, BackendKind::StateVector),
            InjectedFault::Panic
        );
        assert_eq!(
            plan.decide(5, 2, BackendKind::StateVector),
            InjectedFault::None
        );
    }

    #[test]
    fn backend_scoping_spares_other_families() {
        let plan = FaultPlan {
            panic_probability: 1.0,
            only_backend: Some(BackendKind::ChainMps { chi: None }),
            ..FaultPlan::seeded(11)
        };
        assert_eq!(
            plan.decide(0, 0, BackendKind::StateVector),
            InjectedFault::None
        );
        assert_eq!(
            plan.decide(0, 0, BackendKind::ChainMps { chi: Some(8) }),
            InjectedFault::Panic,
            "chi does not affect family identity"
        );
    }

    #[test]
    fn partial_probabilities_select_a_strict_subset_of_jobs() {
        let plan = FaultPlan {
            panic_probability: 0.5,
            ..FaultPlan::seeded(99)
        };
        let faulted = (0..200u64)
            .filter(|&job| plan.decide(job, 0, BackendKind::StateVector) != InjectedFault::None)
            .count();
        assert!(faulted > 50 && faulted < 150, "got {faulted} of 200");
    }

    #[test]
    fn an_inert_plan_reports_itself_inert() {
        assert!(FaultPlan::default().is_inert());
        assert!(FaultPlan {
            latency_ms: 50,
            ..FaultPlan::default()
        }
        .is_inert());
        assert!(!FaultPlan {
            budget_exhaustion_probability: 0.01,
            ..FaultPlan::default()
        }
        .is_inert());
    }
}

//! The execution planner: profile a circuit, pick a backend and path.

use crate::profile::CircuitProfile;
use bgls_backend::{AnyState, BackendKind, SimulatorExt};
use bgls_circuit::{Circuit, PauliSum};
use bgls_core::{RunResult, SimError, Simulator, SimulatorOptions};
use bgls_linalg::FxHasher;
use std::hash::{Hash, Hasher};

/// What the caller wants out of the simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum Deliverable {
    /// Sampled measurement outcomes over `repetitions` shots.
    Histogram {
        /// Shot count.
        repetitions: u64,
    },
    /// The exact expectation value of a Pauli observable on the final
    /// state (the deterministic weighted-frontier walk — no sampling).
    Expectation {
        /// The observable.
        observable: PauliSum,
    },
}

/// Resource budgets the planner routes against.
///
/// The defaults describe a single workstation-class host: dense state
/// vectors up to ~16M amplitudes, dense density matrices up to ~16M
/// entries, and MPS bond dimensions that keep per-gate cost comfortably
/// below the dense crossover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Widest circuit routed to the dense state vector (`2^n` memory).
    pub max_statevector_qubits: usize,
    /// Widest circuit routed to the density matrix (`4^n` memory).
    pub max_density_qubits: usize,
    /// Largest Schmidt-rank bound for which the chain MPS is preferred;
    /// circuits whose bound exceeds this are not routed to MPS.
    pub mps_chi_cap: usize,
    /// Frontier budget handed to the trajectory forest
    /// ([`SimulatorOptions::max_forest_nodes`]); circuits whose
    /// fork count would overflow `2^log2(budget)` branch histories are
    /// planned for per-trajectory replay instead.
    pub max_forest_nodes: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_statevector_qubits: 24,
            max_density_qubits: 12,
            mps_chi_cap: 64,
            max_forest_nodes: 256,
        }
    }
}

/// Which execution engine inside [`Simulator`] the plan expects to run.
///
/// The path is realized through [`SimulatorOptions`], not a separate
/// code path: the simulator already picks its engine from the circuit
/// and options, so the plan's job is to configure the options such that
/// the intended engine is the one that fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecPath {
    /// The paper's multiplicity-map sample parallelization: all
    /// repetitions advance through one state sweep. Requires a circuit
    /// free of trajectory forks (unitary + terminal measurements, or
    /// deterministic channels on a density matrix).
    SampleParallel,
    /// The trajectory forest: distinct branch histories evolve once,
    /// with a frontier bounded by
    /// [`PlannerConfig::max_forest_nodes`]. Best for *sparse* noise.
    Forest,
    /// Per-trajectory replay: flat memory, one full circuit pass per
    /// repetition. Chosen when the fork count would blow the forest
    /// budget anyway (dense noise), skipping the doomed forest attempt.
    Replay,
    /// Trajectory collapse on a stabilizer tableau: mid-circuit
    /// measurements execute as projective collapse
    /// (`CliffordTableau::project`), which the CH form cannot do. The
    /// engine is the forest/replay machinery over tableau nodes.
    TableauCollapse,
    /// The deterministic weighted-frontier expectation walk
    /// (`Simulator::expectation_value`) — exact, no randomness.
    ExpectationWalk,
}

impl std::fmt::Display for ExecPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ExecPath::SampleParallel => "sample-parallel",
            ExecPath::Forest => "forest",
            ExecPath::Replay => "replay",
            ExecPath::TableauCollapse => "tableau-collapse",
            ExecPath::ExpectationWalk => "expectation-walk",
        };
        f.write_str(name)
    }
}

/// A routed execution: backend, path, and the options that realize it.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// The state representation to simulate on.
    pub backend: BackendKind,
    /// The engine the options select.
    pub path: ExecPath,
    /// Simulator options realizing the path (seed left `None`; callers
    /// set it per run).
    pub options: SimulatorOptions,
    /// The profile the routing decision was made from.
    pub profile: CircuitProfile,
    /// Human-readable one-line justification of the choice.
    pub rationale: String,
}

impl ExecutionPlan {
    /// A simulator realizing this plan for an `n`-qubit circuit, seeded
    /// with `seed`.
    pub fn simulator(&self, n: usize, seed: Option<u64>) -> Simulator<AnyState> {
        let mut options = self.options.clone();
        options.seed = seed;
        Simulator::for_backend(self.backend, n.max(1), options)
    }

    /// Runs `circuit` under this plan. The result is bit-identical to
    /// any other execution of the same `(circuit, plan, seed,
    /// repetitions)` tuple — the invariant the serving cache relies on.
    pub fn run(
        &self,
        circuit: &Circuit,
        repetitions: u64,
        seed: Option<u64>,
    ) -> Result<RunResult, SimError> {
        self.simulator(circuit.num_qubits(), seed)
            .run(circuit, repetitions)
    }

    /// Exact expectation of `observable` on the final state under this
    /// plan (deterministic; consumes no randomness).
    pub fn expectation(&self, circuit: &Circuit, observable: &PauliSum) -> Result<f64, SimError> {
        self.simulator(circuit.num_qubits(), None)
            .expectation_value(circuit, observable)
    }

    /// Fingerprint of everything about the plan that can change a seeded
    /// result: the backend and the result-affecting options. Parallelism
    /// toggles are excluded — the engine's determinism contract makes
    /// them bit-identical. This is the `backend` component of a
    /// serving-layer cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        self.backend.name().hash(&mut h);
        self.options.parallelize_samples.hash(&mut h);
        self.options.skip_diagonal_updates.hash(&mut h);
        self.options.trajectory_forest.hash(&mut h);
        self.options.max_forest_nodes.hash(&mut h);
        self.options.fuse_gates.hash(&mut h);
        h.finish()
    }
}

/// Routes `circuit` to the backend and execution path expected to
/// simulate it best for the requested `deliverable`.
///
/// The decision table (documented in `docs/ARCHITECTURE.md`):
///
/// 1. Pure Clifford, terminal measurements → CH form, sample-parallel.
/// 2. Pure Clifford, mid-circuit measurements → stabilizer tableau with
///    projective collapse.
/// 3. Noisy and narrow (`n <= max_density_qubits`) → density matrix,
///    sample-parallel (channels apply deterministically).
/// 4. Noisy and wider → a forest-capable pure-state backend
///    (statevector / MPS / lazy by width and rank bound); replay when
///    the fork count would overflow the forest budget.
/// 5. Unitary non-Clifford → cost model between dense statevector
///    (`ops * 2^n`) and chain MPS (`ops * n * chi^3`) when the rank
///    bound is small; lazy network as the wide fallback.
/// 6. Expectation deliverables → the exact weighted-frontier walk on
///    the cheapest exact backend for the circuit class.
///
/// Errors with [`SimError::Invalid`] on unresolved parameters and
/// [`SimError::Unsupported`] when no backend fits (e.g. a wide circuit
/// with Toffoli-class gates that MPS cannot take and dense memory
/// cannot hold).
pub fn plan(
    circuit: &Circuit,
    deliverable: &Deliverable,
    config: &PlannerConfig,
) -> Result<ExecutionPlan, SimError> {
    let profile = CircuitProfile::of(circuit);
    if profile.parameterized {
        return Err(SimError::Invalid(
            "cannot plan a parameterized circuit: resolve its symbols first \
             (or submit it with a resolver)"
                .into(),
        ));
    }
    let n = profile.num_qubits;
    let sv_ok = n <= config.max_statevector_qubits;
    let dm_ok = n <= config.max_density_qubits;
    let mps_ok = profile.max_arity <= 2;
    let low_chi = profile.chi_bound() <= config.mps_chi_cap as u64;
    // The forest frontier holds one node per distinct branch history;
    // `fork_ops` forks of >=2 branches each overflow a budget of B nodes
    // once 2^forks > B, at which point replay (flat memory) wins by
    // skipping the abandoned forest attempt.
    let forest_fits = profile.fork_ops <= (config.max_forest_nodes.max(2)).ilog2() as usize;
    let trajectory_path = if forest_fits {
        ExecPath::Forest
    } else {
        ExecPath::Replay
    };

    let mut options = SimulatorOptions {
        max_forest_nodes: config.max_forest_nodes,
        ..SimulatorOptions::default()
    };

    let (backend, path, rationale): (BackendKind, ExecPath, String) = match deliverable {
        Deliverable::Expectation { .. } => {
            let backend = if profile.is_clifford() && !profile.mid_circuit_measurements {
                BackendKind::ChForm
            } else if profile.is_clifford() {
                // The walk collapses interior measurements projectively;
                // only the tableau can do that among stabilizer states.
                BackendKind::Tableau
            } else {
                pick_pure_state_backend(&profile, config, sv_ok, mps_ok, low_chi)?
            };
            (
                backend,
                ExecPath::ExpectationWalk,
                format!(
                    "exact expectation walk on {} (clifford fraction {:.2}, chi bound {})",
                    backend.name(),
                    profile.clifford_fraction(),
                    profile.chi_bound()
                ),
            )
        }
        Deliverable::Histogram { .. } => {
            if profile.is_clifford() && !profile.mid_circuit_measurements {
                (
                    BackendKind::ChForm,
                    ExecPath::SampleParallel,
                    format!(
                        "pure Clifford with terminal measurements: CH form samples all \
                         repetitions in one sweep at any width (n = {n})"
                    ),
                )
            } else if profile.is_clifford() {
                (
                    BackendKind::Tableau,
                    ExecPath::TableauCollapse,
                    format!(
                        "Clifford with mid-circuit measurements: tableau projective \
                         collapse ({} fork qubits)",
                        profile.fork_ops
                    ),
                )
            } else if profile.has_channels && dm_ok {
                (
                    BackendKind::DensityMatrix,
                    ExecPath::SampleParallel,
                    format!(
                        "noisy and narrow (n = {n} <= {}): density matrix applies channels \
                         deterministically, keeping sample parallelization",
                        config.max_density_qubits
                    ),
                )
            } else if profile.has_channels || profile.mid_circuit_measurements {
                let backend = pick_pure_state_backend(&profile, config, sv_ok, mps_ok, low_chi)?;
                if matches!(trajectory_path, ExecPath::Replay) {
                    options.trajectory_forest = false;
                }
                (
                    backend,
                    trajectory_path,
                    format!(
                        "stochastic branches on {} ({} forks vs forest budget {}): {}",
                        backend.name(),
                        profile.fork_ops,
                        config.max_forest_nodes,
                        if forest_fits {
                            "forest shares branch histories"
                        } else {
                            "dense forks overflow the forest, replay has flat memory"
                        }
                    ),
                )
            } else {
                // Unitary non-Clifford, terminal measurements: cost model.
                let backend = pick_unitary_backend(&profile, config, sv_ok, mps_ok, low_chi)?;
                (
                    backend,
                    ExecPath::SampleParallel,
                    format!(
                        "unitary non-Clifford: {} minimizes the cost model \
                         (n = {n}, chi bound {})",
                        backend.name(),
                        profile.chi_bound()
                    ),
                )
            }
        }
    };

    Ok(ExecutionPlan {
        backend,
        path,
        options,
        profile,
        rationale,
    })
}

/// The pure-state ladder used for trajectory and expectation work:
/// dense when it fits, chain MPS when the rank bound is small, lazy
/// network as the wide two-local fallback.
fn pick_pure_state_backend(
    profile: &CircuitProfile,
    config: &PlannerConfig,
    sv_ok: bool,
    mps_ok: bool,
    low_chi: bool,
) -> Result<BackendKind, SimError> {
    if sv_ok {
        Ok(BackendKind::StateVector)
    } else if mps_ok && low_chi {
        Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        })
    } else if mps_ok {
        Ok(BackendKind::LazyNetwork)
    } else {
        Err(too_wide(profile, config))
    }
}

/// Cost-model pick for unitary non-Clifford circuits with terminal
/// measurements: dense statevector `ops * 2^n` vs exact chain MPS
/// `ops * n * chi^3`, lazy network when neither fits.
fn pick_unitary_backend(
    profile: &CircuitProfile,
    config: &PlannerConfig,
    sv_ok: bool,
    mps_ok: bool,
    low_chi: bool,
) -> Result<BackendKind, SimError> {
    let ops = profile.num_operations.max(1) as u128;
    let sv_cost = if sv_ok {
        Some(ops << profile.num_qubits.min(100))
    } else {
        None
    };
    let mps_cost = if mps_ok && low_chi {
        let chi = profile.chi_bound() as u128;
        Some(ops * profile.num_qubits.max(1) as u128 * chi * chi * chi)
    } else {
        None
    };
    match (sv_cost, mps_cost) {
        (Some(sv), Some(mps)) if mps < sv => Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        }),
        (Some(_), _) => Ok(BackendKind::StateVector),
        (None, Some(_)) => Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        }),
        (None, None) if mps_ok => Ok(BackendKind::LazyNetwork),
        (None, None) => Err(too_wide(profile, config)),
    }
}

fn too_wide(profile: &CircuitProfile, config: &PlannerConfig) -> SimError {
    SimError::Unsupported(format!(
        "no backend fits: {} qubits exceeds the dense budget ({} sv / {} dm) and \
         arity-{} operations rule out the chain MPS and lazy network",
        profile.num_qubits,
        config.max_statevector_qubits,
        config.max_density_qubits,
        profile.max_arity
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Channel, Gate, Operation, Qubit};

    fn q(i: u32) -> Qubit {
        Qubit(i)
    }

    fn hist() -> Deliverable {
        Deliverable::Histogram { repetitions: 100 }
    }

    fn measured_ghz(n: u32) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        for i in 1..n {
            c.push(Operation::gate(Gate::Cnot, vec![q(i - 1), q(i)]).unwrap());
        }
        c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        c
    }

    #[test]
    fn pure_clifford_routes_to_chform_sample_parallel() {
        let plan = plan(&measured_ghz(30), &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::ChForm);
        assert_eq!(plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn mid_circuit_clifford_routes_to_tableau_collapse() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        c.push(Operation::measure(vec![q(0)], "early").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![q(0), q(1)]).unwrap());
        c.push(Operation::measure(vec![q(0), q(1)], "late").unwrap());
        let plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::Tableau);
        assert_eq!(plan.path, ExecPath::TableauCollapse);
    }

    #[test]
    fn noisy_narrow_routes_to_density_matrix() {
        let mut c = measured_ghz(4);
        let mut noisy = Circuit::new();
        noisy.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        noisy.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(0)]).unwrap());
        noisy.extend_circuit(&c);
        c = noisy;
        let plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::DensityMatrix);
        assert_eq!(plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn noisy_wide_routes_to_forest_then_replay_as_noise_densifies() {
        let cfg = PlannerConfig::default();
        // 16 qubits: too wide for the density matrix, fine for the
        // statevector. Channels go *before* the terminal measurement.
        let noisy = |channel_qubits: u32| {
            let mut c = measured_ghz(16).without_measurements();
            for i in 0..channel_qubits {
                c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(i)]).unwrap());
            }
            c.push(Operation::measure((0..16).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
            c
        };
        let p1 = plan(&noisy(1), &hist(), &cfg).unwrap();
        assert_eq!(p1.backend, BackendKind::StateVector);
        assert_eq!(p1.path, ExecPath::Forest);
        assert!(p1.options.trajectory_forest);

        let p2 = plan(&noisy(16), &hist(), &cfg).unwrap();
        assert_eq!(p2.path, ExecPath::Replay);
        assert!(!p2.options.trajectory_forest);
    }

    #[test]
    fn low_chi_wide_chain_routes_to_capped_mps() {
        // 30 qubits (> sv budget) of T-dusted nearest-neighbour ladder:
        // chi bound is 2, MPS is the only sane exact route.
        let mut c = Circuit::new();
        for i in 0..30u32 {
            c.push(Operation::gate(Gate::T, vec![q(i)]).unwrap());
        }
        for i in 1..30u32 {
            c.push(Operation::gate(Gate::Cnot, vec![q(i - 1), q(i)]).unwrap());
        }
        c.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        let plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::ChainMps { chi: Some(2) });
        assert_eq!(plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn expectation_deliverable_routes_to_the_walk() {
        let c = measured_ghz(4).without_measurements();
        let obs: PauliSum = "Z0 Z1".parse().unwrap();
        let plan = plan(
            &c,
            &Deliverable::Expectation { observable: obs },
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.path, ExecPath::ExpectationWalk);
        assert_eq!(plan.backend, BackendKind::ChForm);
    }

    #[test]
    fn wide_toffoli_circuits_are_rejected_with_a_typed_error() {
        let mut c = Circuit::new();
        for i in 0..30u32 {
            c.push(Operation::gate(Gate::H, vec![q(i)]).unwrap());
        }
        c.push(Operation::gate(Gate::Ccx, vec![q(0), q(1), q(2)]).unwrap());
        c.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        match plan(&c, &hist(), &PlannerConfig::default()) {
            Err(SimError::Unsupported(msg)) => assert!(msg.contains("arity-3"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn parameterized_circuits_are_rejected_at_plan_time() {
        let mut c = Circuit::new();
        c.push(
            Operation::gate(Gate::Rz(bgls_circuit::Param::symbol("theta")), vec![q(0)]).unwrap(),
        );
        c.push(Operation::measure(vec![q(0)], "m").unwrap());
        assert!(matches!(
            plan(&c, &hist(), &PlannerConfig::default()),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn fingerprint_distinguishes_result_affecting_options() {
        let p1 = plan(&measured_ghz(4), &hist(), &PlannerConfig::default()).unwrap();
        let mut p2 = p1.clone();
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        p2.options.fuse_gates = true;
        assert_ne!(p1.fingerprint(), p2.fingerprint());
        let mut p3 = p1.clone();
        p3.options.parallel_trajectories = false; // bit-identical by contract
        assert_eq!(p1.fingerprint(), p3.fingerprint());
    }
}

//! The execution planner: profile a circuit, pick a backend and path.

use crate::cost::CostModel;
use crate::profile::CircuitProfile;
use bgls_backend::{AnyState, BackendKind, SimulatorExt};
use bgls_circuit::{
    lightcone_prune_for, optimize, Circuit, OptimizeConfig, PassStats, PauliSum, Qubit,
    RewriteStats,
};
use bgls_core::{RunResult, SimError, Simulator, SimulatorOptions};
use bgls_linalg::FxHasher;
use std::hash::{Hash, Hasher};

/// What the caller wants out of the simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum Deliverable {
    /// Sampled measurement outcomes over `repetitions` shots.
    Histogram {
        /// Shot count.
        repetitions: u64,
    },
    /// The exact expectation value of a Pauli observable on the final
    /// state (the deterministic weighted-frontier walk — no sampling).
    Expectation {
        /// The observable.
        observable: PauliSum,
    },
}

/// Resource budgets the planner routes against.
///
/// The defaults describe a single workstation-class host: dense state
/// vectors up to ~16M amplitudes, dense density matrices up to ~16M
/// entries, and MPS bond dimensions that keep per-gate cost comfortably
/// below the dense crossover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannerConfig {
    /// Widest circuit routed to the dense state vector (`2^n` memory).
    pub max_statevector_qubits: usize,
    /// Widest circuit routed to the density matrix (`4^n` memory).
    pub max_density_qubits: usize,
    /// Largest Schmidt-rank bound for which the chain MPS is preferred;
    /// circuits whose bound exceeds this are not routed to MPS.
    pub mps_chi_cap: usize,
    /// Frontier budget handed to the trajectory forest
    /// ([`SimulatorOptions::max_forest_nodes`]); circuits whose
    /// fork count would overflow `2^log2(budget)` branch histories are
    /// planned for per-trajectory replay instead.
    pub max_forest_nodes: usize,
    /// Optimizer pipeline run on circuits before routing and execution
    /// (default: the standard pipeline, [`OptimizeConfig::default`]).
    /// `None` plans and executes circuits exactly as written. Clifford
    /// circuits automatically get the
    /// [`OptimizeConfig::stabilizer_safe`] subset so they stay on the
    /// stabilizer backends; expectation deliverables get only the
    /// observable-lightcone prune (the one pass that commutes with
    /// parameter resolution, keeping merged sweeps bit-identical to
    /// standalone walks).
    pub optimize: Option<OptimizeConfig>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_statevector_qubits: 24,
            max_density_qubits: 12,
            mps_chi_cap: 64,
            max_forest_nodes: 256,
            optimize: Some(OptimizeConfig::default()),
        }
    }
}

/// Which execution engine inside [`Simulator`] the plan expects to run.
///
/// The path is realized through [`SimulatorOptions`], not a separate
/// code path: the simulator already picks its engine from the circuit
/// and options, so the plan's job is to configure the options such that
/// the intended engine is the one that fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecPath {
    /// The paper's multiplicity-map sample parallelization: all
    /// repetitions advance through one state sweep. Requires a circuit
    /// free of trajectory forks (unitary + terminal measurements, or
    /// deterministic channels on a density matrix).
    SampleParallel,
    /// The trajectory forest: distinct branch histories evolve once,
    /// with a frontier bounded by
    /// [`PlannerConfig::max_forest_nodes`]. Best for *sparse* noise.
    Forest,
    /// Per-trajectory replay: flat memory, one full circuit pass per
    /// repetition. Chosen when the fork count would blow the forest
    /// budget anyway (dense noise), skipping the doomed forest attempt.
    Replay,
    /// Trajectory collapse on a stabilizer tableau: mid-circuit
    /// measurements execute as projective collapse
    /// (`CliffordTableau::project`), which the CH form cannot do. The
    /// engine is the forest/replay machinery over tableau nodes.
    TableauCollapse,
    /// The deterministic weighted-frontier expectation walk
    /// (`Simulator::expectation_value`) — exact, no randomness.
    ExpectationWalk,
    /// Grouped-shot sampling estimate of an expectation value
    /// (`Simulator::estimate_expectation`) — the degraded stand-in when
    /// the exact walk's frontier budget is exhausted. Seeded runs are
    /// deterministic, but the value is an estimate, not the exact
    /// expectation, so this path is only ever chosen by [`degrade`],
    /// never by [`plan`].
    ShotEstimate,
}

impl std::fmt::Display for ExecPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ExecPath::SampleParallel => "sample-parallel",
            ExecPath::Forest => "forest",
            ExecPath::Replay => "replay",
            ExecPath::TableauCollapse => "tableau-collapse",
            ExecPath::ExpectationWalk => "expectation-walk",
            ExecPath::ShotEstimate => "shot-estimate",
        };
        f.write_str(name)
    }
}

/// A routed execution: backend, path, the options that realize it, and
/// the (possibly optimizer-rewritten) circuit executions run.
#[derive(Clone, Debug)]
pub struct ExecutionPlan {
    /// The state representation to simulate on.
    pub backend: BackendKind,
    /// The engine the options select.
    pub path: ExecPath,
    /// Simulator options realizing the path (seed left `None`; callers
    /// set it per run).
    pub options: SimulatorOptions,
    /// The circuit this plan executes: the optimizer-pipeline output
    /// when [`PlannerConfig::optimize`] is set, otherwise a verbatim
    /// copy of the planned circuit. [`ExecutionPlan::run`] and
    /// [`ExecutionPlan::expectation`] run *this* circuit.
    pub circuit: Circuit,
    /// What the optimizer did to the circuit (all-zero deltas when the
    /// pipeline was off).
    pub rewrite: RewriteStats,
    /// The effective optimizer pipeline configuration (`None` when the
    /// pipeline was off). Folded into [`ExecutionPlan::fingerprint`] so
    /// optimized and raw executions never collide in a result cache.
    pub optimize: Option<OptimizeConfig>,
    /// The profile the routing decision was made from — computed
    /// *post-optimization*, so rewrites that shrink a circuit can
    /// re-route it to a cheaper backend.
    pub profile: CircuitProfile,
    /// Human-readable one-line justification of the choice.
    pub rationale: String,
}

impl ExecutionPlan {
    /// A simulator realizing this plan for an `n`-qubit circuit, seeded
    /// with `seed`.
    pub fn simulator(&self, n: usize, seed: Option<u64>) -> Simulator<AnyState> {
        let mut options = self.options.clone();
        options.seed = seed;
        Simulator::for_backend(self.backend, n.max(1), options)
    }

    /// Runs the plan's circuit. The result is bit-identical to any
    /// other execution of the same `(circuit, plan, seed, repetitions)`
    /// tuple — the invariant the serving cache relies on.
    pub fn run(&self, repetitions: u64, seed: Option<u64>) -> Result<RunResult, SimError> {
        self.simulator(self.circuit.num_qubits(), seed)
            .run(&self.circuit, repetitions)
    }

    /// Exact expectation of `observable` on the final state under this
    /// plan (deterministic; consumes no randomness).
    pub fn expectation(&self, observable: &PauliSum) -> Result<f64, SimError> {
        let n = self.circuit.num_qubits().max(
            observable_targets(observable)
                .iter()
                .map(|q| q.0 as usize + 1)
                .max()
                .unwrap_or(0),
        );
        self.simulator(n, None)
            .expectation_value(&self.circuit, observable)
    }

    /// Fingerprint of everything about the plan that can change a seeded
    /// result: the backend, the execution path, the result-affecting
    /// options, and the optimizer pipeline configuration (an optimized
    /// circuit executes a different gate sequence than its raw form, so
    /// the two must never share a cache entry). Parallelism toggles are
    /// excluded — the engine's determinism contract makes them
    /// bit-identical. The path matters because a degraded
    /// [`ExecPath::ShotEstimate`] produces different numbers than the
    /// exact walk on the same backend and options. This is the
    /// `backend` component of a serving-layer cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FxHasher::default();
        self.backend.name().hash(&mut h);
        self.path.hash(&mut h);
        self.options.parallelize_samples.hash(&mut h);
        self.options.skip_diagonal_updates.hash(&mut h);
        self.options.trajectory_forest.hash(&mut h);
        self.options.max_forest_nodes.hash(&mut h);
        self.options.fuse_gates.hash(&mut h);
        self.optimize.map(|c| c.fingerprint()).hash(&mut h);
        self.options.optimize.map(|c| c.fingerprint()).hash(&mut h);
        h.finish()
    }
}

/// The union of the observable's per-term supports — the seed set for
/// the expectation-path lightcone prune.
fn observable_targets(observable: &PauliSum) -> Vec<Qubit> {
    let mut targets: Vec<Qubit> = observable
        .terms()
        .iter()
        .flat_map(|(_, p)| p.support().into_iter().map(|q| Qubit(q as u32)))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// Routes `circuit` to the backend and execution path expected to
/// simulate it best for the requested `deliverable`.
///
/// The decision table (documented in `docs/ARCHITECTURE.md`):
///
/// 1. Pure Clifford, terminal measurements → CH form, sample-parallel.
/// 2. Pure Clifford, mid-circuit measurements → stabilizer tableau with
///    projective collapse.
/// 3. Noisy and narrow (`n <= max_density_qubits`) → density matrix,
///    sample-parallel (channels apply deterministically).
/// 4. Noisy and wider → a forest-capable pure-state backend
///    (statevector / MPS / lazy by width and rank bound); replay when
///    the fork count would overflow the forest budget.
/// 5. Unitary non-Clifford → cost model between dense statevector
///    (`ops * 2^n`) and chain MPS (`ops * n * chi^3`) when the rank
///    bound is small; lazy network as the wide fallback.
/// 6. Expectation deliverables → the exact weighted-frontier walk on
///    the cheapest exact backend for the circuit class.
///
/// Errors with [`SimError::Invalid`] on unresolved parameters and
/// [`SimError::Unsupported`] when no backend fits (e.g. a wide circuit
/// with Toffoli-class gates that MPS cannot take and dense memory
/// cannot hold).
pub fn plan(
    circuit: &Circuit,
    deliverable: &Deliverable,
    config: &PlannerConfig,
) -> Result<ExecutionPlan, SimError> {
    plan_prepared(&prepare(circuit, config), deliverable, config, None)
}

/// A circuit profiled and run through the configured optimizer pipeline
/// once, reusable across every deliverable planned for it. The service
/// memoizes these behind the circuit's structural hash so cache-hit
/// traffic never re-profiles or re-optimizes.
#[derive(Clone, Debug)]
pub struct PreparedCircuit {
    /// The circuit exactly as submitted.
    raw: Circuit,
    /// Profile of the raw circuit.
    pub raw_profile: CircuitProfile,
    /// The histogram-path pipeline output (a verbatim copy of `raw`
    /// when the pipeline is off or the circuit is parameterized).
    pub circuit: Circuit,
    /// Profile of `circuit` — the histogram routing basis.
    pub profile: CircuitProfile,
    /// What the pipeline did.
    pub rewrite: RewriteStats,
    /// The effective pipeline configuration (`stabilizer_safe` for
    /// Clifford circuits); `None` when the pipeline was off.
    pub config: Option<OptimizeConfig>,
}

impl PreparedCircuit {
    /// The circuit exactly as submitted.
    pub fn raw(&self) -> &Circuit {
        &self.raw
    }
}

/// Profiles `circuit` and runs the pipeline [`PlannerConfig::optimize`]
/// selects. Clifford circuits get the [`OptimizeConfig::stabilizer_safe`]
/// subset (matrix-producing fusion would push them off the stabilizer
/// backends); parameterized circuits are returned unoptimized — the
/// planner rejects them before execution anyway.
pub fn prepare(circuit: &Circuit, config: &PlannerConfig) -> PreparedCircuit {
    let raw_profile = CircuitProfile::of(circuit);
    let effective = match config.optimize {
        Some(cfg) if !raw_profile.parameterized && cfg.enabled() => {
            if raw_profile.is_clifford() {
                Some(cfg.stabilizer_safe())
            } else {
                Some(cfg)
            }
        }
        _ => None,
    };
    let (optimized, rewrite) = match &effective {
        Some(cfg) => optimize(circuit, cfg),
        None => (
            circuit.clone(),
            RewriteStats::unchanged(circuit.num_operations()),
        ),
    };
    let profile = if optimized.structural_hash() == circuit.structural_hash() {
        raw_profile.clone()
    } else {
        CircuitProfile::of(&optimized)
    };
    PreparedCircuit {
        raw: circuit.clone(),
        raw_profile,
        circuit: optimized,
        profile,
        rewrite,
        config: effective,
    }
}

/// [`plan`] over a [`PreparedCircuit`], with an optional
/// timing-calibrated [`CostModel`] sharpening the dense-vs-MPS routing
/// choice once its buckets are warm (cold models route exactly like the
/// static formulas).
pub fn plan_prepared(
    prep: &PreparedCircuit,
    deliverable: &Deliverable,
    config: &PlannerConfig,
    model: Option<&CostModel>,
) -> Result<ExecutionPlan, SimError> {
    if prep.raw_profile.parameterized {
        return Err(SimError::Invalid(
            "cannot plan a parameterized circuit: resolve its symbols first \
             (or submit it with a resolver)"
                .into(),
        ));
    }
    // Expectation deliverables execute the observable-lightcone-pruned
    // circuit (the one pass that commutes with parameter resolution, so
    // merged sweeps stay bit-identical to standalone walks); histograms
    // execute the full pipeline output.
    let (circuit, rewrite, profile) = match deliverable {
        Deliverable::Histogram { .. } => {
            (prep.circuit.clone(), prep.rewrite.clone(), &prep.profile)
        }
        Deliverable::Expectation { observable } => {
            let lightcone = prep.config.map(|c| c.lightcone).unwrap_or(false);
            if lightcone {
                let pruned = lightcone_prune_for(&prep.raw, &observable_targets(observable));
                let ops_before = prep.raw.num_operations();
                let ops_after = pruned.num_operations();
                let changed = pruned.structural_hash() != prep.raw.structural_hash();
                let rewrite = RewriteStats {
                    ops_before,
                    ops_after,
                    rounds: 1,
                    passes: vec![PassStats {
                        name: "lightcone-observable",
                        ops_before,
                        ops_after,
                        changed,
                    }],
                };
                let profile = if changed {
                    CircuitProfile::of(&pruned)
                } else {
                    prep.raw_profile.clone()
                };
                return route(
                    pruned,
                    rewrite,
                    &profile,
                    prep.config,
                    deliverable,
                    config,
                    model,
                );
            }
            (
                prep.raw.clone(),
                RewriteStats::unchanged(prep.raw.num_operations()),
                &prep.raw_profile,
            )
        }
    };
    let profile = profile.clone();
    route(
        circuit,
        rewrite,
        &profile,
        prep.config,
        deliverable,
        config,
        model,
    )
}

/// The decision table: routes `profile` to a backend and path for
/// `deliverable`, packaging `circuit`/`rewrite` into the plan.
#[allow(clippy::too_many_arguments)]
fn route(
    circuit: Circuit,
    rewrite: RewriteStats,
    profile: &CircuitProfile,
    optimize_cfg: Option<OptimizeConfig>,
    deliverable: &Deliverable,
    config: &PlannerConfig,
    model: Option<&CostModel>,
) -> Result<ExecutionPlan, SimError> {
    let profile = profile.clone();
    let n = profile.num_qubits;
    let sv_ok = n <= config.max_statevector_qubits;
    let dm_ok = n <= config.max_density_qubits;
    let mps_ok = profile.max_arity <= 2;
    let low_chi = profile.chi_bound() <= config.mps_chi_cap as u64;
    // The forest frontier holds one node per distinct branch history;
    // `fork_ops` forks of >=2 branches each overflow a budget of B nodes
    // once 2^forks > B, at which point replay (flat memory) wins by
    // skipping the abandoned forest attempt.
    let forest_fits = profile.fork_ops <= (config.max_forest_nodes.max(2)).ilog2() as usize;
    let trajectory_path = if forest_fits {
        ExecPath::Forest
    } else {
        ExecPath::Replay
    };

    let mut options = SimulatorOptions {
        max_forest_nodes: config.max_forest_nodes,
        ..SimulatorOptions::default()
    };

    let (backend, path, rationale): (BackendKind, ExecPath, String) = match deliverable {
        Deliverable::Expectation { .. } => {
            let backend = if profile.is_clifford() && !profile.mid_circuit_measurements {
                BackendKind::ChForm
            } else if profile.is_clifford() {
                // The walk collapses interior measurements projectively;
                // only the tableau can do that among stabilizer states.
                BackendKind::Tableau
            } else if profile.has_channels && dm_ok {
                // Deterministic channels keep the walk fork-free: the
                // exact mixed state beats enumerating 2^forks branch
                // histories on a pure backend.
                BackendKind::DensityMatrix
            } else if profile.has_channels && mps_ok && low_chi {
                // Noisy and wide: the purified MPS is the only exact
                // mixed-state engine past the density wall — channels
                // grow a local Kraus leg instead of forking.
                BackendKind::PurifiedMps {
                    chi: Some(profile.chi_bound() as usize),
                    kraus_dim: None,
                }
            } else {
                pick_pure_state_backend(&profile, config, sv_ok, mps_ok, low_chi)?
            };
            (
                backend,
                ExecPath::ExpectationWalk,
                format!(
                    "exact expectation walk on {} (clifford fraction {:.2}, chi bound {})",
                    backend.name(),
                    profile.clifford_fraction(),
                    profile.chi_bound()
                ),
            )
        }
        Deliverable::Histogram { .. } => {
            if profile.is_clifford() && !profile.mid_circuit_measurements {
                (
                    BackendKind::ChForm,
                    ExecPath::SampleParallel,
                    format!(
                        "pure Clifford with terminal measurements: CH form samples all \
                         repetitions in one sweep at any width (n = {n})"
                    ),
                )
            } else if profile.is_clifford() {
                (
                    BackendKind::Tableau,
                    ExecPath::TableauCollapse,
                    format!(
                        "Clifford with mid-circuit measurements: tableau projective \
                         collapse ({} fork qubits)",
                        profile.fork_ops
                    ),
                )
            } else if profile.has_channels && dm_ok {
                (
                    BackendKind::DensityMatrix,
                    ExecPath::SampleParallel,
                    format!(
                        "noisy and narrow (n = {n} <= {}): density matrix applies channels \
                         deterministically, keeping sample parallelization",
                        config.max_density_qubits
                    ),
                )
            } else if profile.has_channels
                && !profile.mid_circuit_measurements
                && !forest_fits
                && mps_ok
                && low_chi
            {
                // Noise too dense for the forest and too wide for the
                // density matrix: the purified MPS absorbs every channel
                // deterministically, so the one-sweep sample
                // parallelization survives where replay would walk each
                // trajectory separately.
                (
                    BackendKind::PurifiedMps {
                        chi: Some(profile.chi_bound() as usize),
                        kraus_dim: None,
                    },
                    ExecPath::SampleParallel,
                    format!(
                        "noisy and wide (n = {n} > {}, {} forks > forest budget): \
                         purified MPS applies channels deterministically, keeping \
                         sample parallelization (chi bound {})",
                        config.max_density_qubits,
                        profile.fork_ops,
                        profile.chi_bound()
                    ),
                )
            } else if profile.has_channels || profile.mid_circuit_measurements {
                let backend = pick_pure_state_backend(&profile, config, sv_ok, mps_ok, low_chi)?;
                if matches!(trajectory_path, ExecPath::Replay) {
                    options.trajectory_forest = false;
                }
                (
                    backend,
                    trajectory_path,
                    format!(
                        "stochastic branches on {} ({} forks vs forest budget {}): {}",
                        backend.name(),
                        profile.fork_ops,
                        config.max_forest_nodes,
                        if forest_fits {
                            "forest shares branch histories"
                        } else {
                            "dense forks overflow the forest, replay has flat memory"
                        }
                    ),
                )
            } else {
                // Unitary non-Clifford, terminal measurements: cost model.
                let backend =
                    pick_unitary_backend(&profile, config, sv_ok, mps_ok, low_chi, model)?;
                (
                    backend,
                    ExecPath::SampleParallel,
                    format!(
                        "unitary non-Clifford: {} minimizes the cost model \
                         (n = {n}, chi bound {})",
                        backend.name(),
                        profile.chi_bound()
                    ),
                )
            }
        }
    };

    Ok(ExecutionPlan {
        backend,
        path,
        options,
        circuit,
        rewrite,
        optimize: optimize_cfg,
        profile,
        rationale,
    })
}

/// One step down the documented degradation ladder: the plan a
/// fault-tolerant service falls back to when `current` keeps failing.
///
/// The ladder trades speed (and, at the very bottom, exactness) for
/// robustness, never correctness of what it does return — every rung is
/// an engine the determinism contract covers, so a degraded seeded run
/// is still bit-identical to running the same fallback plan directly.
///
/// Histogram rungs:
///
/// 1. forest → per-trajectory replay on the same backend (flat memory,
///    no frontier budget to exhaust);
/// 2. backend ladder, with a conservative path on the target (replay
///    for circuits with stochastic branches, sample-parallel
///    otherwise): CH form → tableau → statevector;
///    density matrix → statevector (or purified MPS past the dense
///    wall); purified MPS → statevector → chi-capped chain MPS → lazy
///    network; statevector → chi-capped chain MPS → lazy network.
///
/// Expectation rungs: exact walk → grouped-shot estimate
/// ([`ExecPath::ShotEstimate`]) on the same backend. The estimate is
/// sampled, so it only stands in when the circuit has no mid-circuit
/// measurements (the estimator's precondition).
///
/// Returns `None` at the bottom of the ladder — the service turns that
/// into a terminal failure carrying the last error.
pub fn degrade(current: &ExecutionPlan, config: &PlannerConfig) -> Option<ExecutionPlan> {
    let profile = &current.profile;
    let n = profile.num_qubits;
    let sv_ok = n <= config.max_statevector_qubits;
    let mps_ok = profile.max_arity <= 2;
    let low_chi = profile.chi_bound() <= config.mps_chi_cap as u64;
    let chi = (profile.chi_bound() as usize).max(1);

    // Expectation deliverables: exact walk -> grouped-shot estimate.
    if current.path == ExecPath::ExpectationWalk {
        if profile.mid_circuit_measurements {
            return None;
        }
        return Some(ExecutionPlan {
            backend: current.backend,
            path: ExecPath::ShotEstimate,
            options: current.options.clone(),
            circuit: current.circuit.clone(),
            rewrite: current.rewrite.clone(),
            optimize: current.optimize,
            profile: profile.clone(),
            rationale: format!(
                "degraded: exact expectation walk -> grouped-shot estimate on {}",
                current.backend.name()
            ),
        });
    }
    if current.path == ExecPath::ShotEstimate {
        return None;
    }

    // Histogram rung 1: forest -> replay on the same backend.
    if current.path == ExecPath::Forest {
        let mut options = current.options.clone();
        options.trajectory_forest = false;
        return Some(ExecutionPlan {
            backend: current.backend,
            path: ExecPath::Replay,
            options,
            circuit: current.circuit.clone(),
            rewrite: current.rewrite.clone(),
            optimize: current.optimize,
            profile: profile.clone(),
            rationale: "degraded: trajectory forest -> per-trajectory replay (flat memory)".into(),
        });
    }

    // Histogram rung 2: the backend ladder.
    let (backend, why) = match current.backend {
        BackendKind::ChForm => (BackendKind::Tableau, "CH form -> stabilizer tableau"),
        BackendKind::Tableau if sv_ok => (
            BackendKind::StateVector,
            "stabilizer tableau -> dense statevector",
        ),
        BackendKind::DensityMatrix if sv_ok => (
            BackendKind::StateVector,
            "density matrix -> statevector trajectories",
        ),
        BackendKind::DensityMatrix if mps_ok && low_chi => (
            BackendKind::PurifiedMps {
                chi: Some(chi),
                kraus_dim: None,
            },
            "density matrix -> purified MPS (exact channels past the dense wall)",
        ),
        BackendKind::PurifiedMps { .. } if sv_ok => (
            BackendKind::StateVector,
            "purified MPS -> statevector trajectories",
        ),
        BackendKind::PurifiedMps { .. } if mps_ok && low_chi => (
            BackendKind::ChainMps { chi: Some(chi) },
            "purified MPS -> chi-capped chain MPS trajectories",
        ),
        BackendKind::PurifiedMps { .. } if mps_ok => (
            BackendKind::LazyNetwork,
            "purified MPS -> lazy network trajectories",
        ),
        BackendKind::StateVector if mps_ok && low_chi => (
            BackendKind::ChainMps { chi: Some(chi) },
            "statevector -> chi-capped chain MPS",
        ),
        BackendKind::StateVector if mps_ok => {
            (BackendKind::LazyNetwork, "statevector -> lazy network")
        }
        BackendKind::ChainMps { .. } if mps_ok => {
            (BackendKind::LazyNetwork, "chain MPS -> lazy network")
        }
        _ => return None,
    };
    // Conservative path on the fallback: circuits with stochastic
    // branches replay flat; unitary terminal circuits — and noisy
    // circuits landing on a deterministic-channel backend — keep the
    // one-sweep sample parallelization.
    let mut options = current.options.clone();
    let stochastic = profile.has_channels && !backend.channels_are_deterministic();
    let path = if stochastic || profile.mid_circuit_measurements {
        options.trajectory_forest = false;
        ExecPath::Replay
    } else {
        ExecPath::SampleParallel
    };
    Some(ExecutionPlan {
        backend,
        path,
        options,
        circuit: current.circuit.clone(),
        rewrite: current.rewrite.clone(),
        optimize: current.optimize,
        profile: profile.clone(),
        rationale: format!("degraded: {why}"),
    })
}

/// The pure-state ladder used for trajectory and expectation work:
/// dense when it fits, chain MPS when the rank bound is small, lazy
/// network as the wide two-local fallback.
fn pick_pure_state_backend(
    profile: &CircuitProfile,
    config: &PlannerConfig,
    sv_ok: bool,
    mps_ok: bool,
    low_chi: bool,
) -> Result<BackendKind, SimError> {
    if sv_ok {
        Ok(BackendKind::StateVector)
    } else if mps_ok && low_chi {
        Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        })
    } else if mps_ok {
        Ok(BackendKind::LazyNetwork)
    } else {
        Err(too_wide(profile, config))
    }
}

/// Cost-model pick for unitary non-Clifford circuits with terminal
/// measurements: dense statevector `ops * 2^n` vs exact chain MPS
/// `ops * n * chi^3`, lazy network when neither fits. When a calibrated
/// [`CostModel`] has warm buckets for *both* candidates on the
/// sample-parallel path, the comparison uses its measured
/// milliseconds instead of the static units; a cold (or half-warm)
/// model falls through to the static comparison, so cold-start routing
/// is unchanged.
fn pick_unitary_backend(
    profile: &CircuitProfile,
    config: &PlannerConfig,
    sv_ok: bool,
    mps_ok: bool,
    low_chi: bool,
    model: Option<&CostModel>,
) -> Result<BackendKind, SimError> {
    if sv_ok && mps_ok && low_chi {
        let mps_backend = BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        };
        if let Some(m) = model {
            let path = ExecPath::SampleParallel;
            let sv_ms = m.predict_ms(
                &BackendKind::StateVector,
                path,
                CostModel::static_units(profile, &BackendKind::StateVector),
            );
            let mps_ms = m.predict_ms(
                &mps_backend,
                path,
                CostModel::static_units(profile, &mps_backend),
            );
            if let (Some(sv_ms), Some(mps_ms)) = (sv_ms, mps_ms) {
                return Ok(if mps_ms < sv_ms {
                    mps_backend
                } else {
                    BackendKind::StateVector
                });
            }
        }
    }
    let ops = profile.num_operations.max(1) as u128;
    let sv_cost = if sv_ok {
        Some(ops << profile.num_qubits.min(100))
    } else {
        None
    };
    let mps_cost = if mps_ok && low_chi {
        let chi = profile.chi_bound() as u128;
        Some(ops * profile.num_qubits.max(1) as u128 * chi * chi * chi)
    } else {
        None
    };
    match (sv_cost, mps_cost) {
        (Some(sv), Some(mps)) if mps < sv => Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        }),
        (Some(_), _) => Ok(BackendKind::StateVector),
        (None, Some(_)) => Ok(BackendKind::ChainMps {
            chi: Some(profile.chi_bound() as usize),
        }),
        (None, None) if mps_ok => Ok(BackendKind::LazyNetwork),
        (None, None) => Err(too_wide(profile, config)),
    }
}

fn too_wide(profile: &CircuitProfile, config: &PlannerConfig) -> SimError {
    SimError::Unsupported(format!(
        "no backend fits: {} qubits exceeds the dense budget ({} sv / {} dm) and \
         arity-{} operations rule out the chain MPS and lazy network",
        profile.num_qubits,
        config.max_statevector_qubits,
        config.max_density_qubits,
        profile.max_arity
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Channel, Gate, Operation, Qubit};

    fn q(i: u32) -> Qubit {
        Qubit(i)
    }

    fn hist() -> Deliverable {
        Deliverable::Histogram { repetitions: 100 }
    }

    fn measured_ghz(n: u32) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        for i in 1..n {
            c.push(Operation::gate(Gate::Cnot, vec![q(i - 1), q(i)]).unwrap());
        }
        c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        c
    }

    #[test]
    fn pure_clifford_routes_to_chform_sample_parallel() {
        let plan = plan(&measured_ghz(30), &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::ChForm);
        assert_eq!(plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn mid_circuit_clifford_routes_to_tableau_collapse() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        c.push(Operation::measure(vec![q(0)], "early").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![q(0), q(1)]).unwrap());
        c.push(Operation::measure(vec![q(0), q(1)], "late").unwrap());
        let plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::Tableau);
        assert_eq!(plan.path, ExecPath::TableauCollapse);
    }

    #[test]
    fn noisy_narrow_routes_to_density_matrix() {
        let mut c = measured_ghz(4);
        let mut noisy = Circuit::new();
        noisy.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        noisy.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(0)]).unwrap());
        noisy.extend_circuit(&c);
        c = noisy;
        let plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert_eq!(plan.backend, BackendKind::DensityMatrix);
        assert_eq!(plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn noisy_wide_routes_to_forest_then_purified_mps_as_noise_densifies() {
        let cfg = PlannerConfig::default();
        // 16 qubits: too wide for the density matrix, fine for the
        // statevector. Channels go *before* the terminal measurement.
        let noisy = |channel_qubits: u32| {
            let mut c = measured_ghz(16).without_measurements();
            for i in 0..channel_qubits {
                c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(i)]).unwrap());
            }
            c.push(Operation::measure((0..16).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
            c
        };
        let p1 = plan(&noisy(1), &hist(), &cfg).unwrap();
        assert_eq!(p1.backend, BackendKind::StateVector);
        assert_eq!(p1.path, ExecPath::Forest);
        assert!(p1.options.trajectory_forest);

        // Dense noise overflows the forest budget; the purified MPS
        // absorbs every channel exactly and keeps sample parallelism.
        let p2 = plan(&noisy(16), &hist(), &cfg).unwrap();
        assert!(
            matches!(p2.backend, BackendKind::PurifiedMps { .. }),
            "{:?}",
            p2.backend
        );
        assert_eq!(p2.path, ExecPath::SampleParallel);
    }

    #[test]
    fn noisy_wide_expectation_routes_to_purified_mps_walk() {
        let cfg = PlannerConfig::default();
        // 20 qubits of noisy GHZ: 4^20 density amplitudes cannot
        // allocate, but the chain's chi bound is 2 — purified MPS walks
        // it exactly.
        let mut c = measured_ghz(20).without_measurements();
        for i in 0..20 {
            c.push(Operation::channel(Channel::depolarizing(0.01).unwrap(), vec![q(i)]).unwrap());
        }
        let obs: PauliSum = "Z0 Z19".parse().unwrap();
        let p = plan(&c, &Deliverable::Expectation { observable: obs }, &cfg).unwrap();
        assert!(
            matches!(p.backend, BackendKind::PurifiedMps { chi: Some(_), .. }),
            "{:?}",
            p.backend
        );
        assert_eq!(p.path, ExecPath::ExpectationWalk);

        // Narrow noisy expectations stay on the exact density matrix.
        let mut narrow = measured_ghz(4).without_measurements();
        narrow.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![q(0)]).unwrap());
        let obs: PauliSum = "Z0 Z3".parse().unwrap();
        let p = plan(&narrow, &Deliverable::Expectation { observable: obs }, &cfg).unwrap();
        assert_eq!(p.backend, BackendKind::DensityMatrix);
        assert_eq!(p.path, ExecPath::ExpectationWalk);
    }

    #[test]
    fn purified_mps_degrades_to_statevector_then_chain_then_lazy() {
        let cfg = PlannerConfig::default();
        let mut c = measured_ghz(16).without_measurements();
        for i in 0..16 {
            c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(i)]).unwrap());
        }
        c.push(Operation::measure((0..16).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        let top = plan(&c, &hist(), &cfg).unwrap();
        assert!(matches!(top.backend, BackendKind::PurifiedMps { .. }));
        assert_eq!(top.path, ExecPath::SampleParallel);

        // 16 qubits still fit the statevector: trajectories replay flat.
        let r1 = degrade(&top, &cfg).unwrap();
        assert_eq!(r1.backend, BackendKind::StateVector);
        assert_eq!(r1.path, ExecPath::Replay);
        assert_ne!(
            r1.fingerprint(),
            top.fingerprint(),
            "degraded purified-MPS jobs must re-key the cache"
        );

        // Past the dense wall the ladder goes chain MPS, then lazy.
        let narrow_cfg = PlannerConfig {
            max_statevector_qubits: 8,
            ..cfg
        };
        let r1 = degrade(&top, &narrow_cfg).unwrap();
        assert!(matches!(r1.backend, BackendKind::ChainMps { chi: Some(_) }));
        assert_eq!(r1.path, ExecPath::Replay);
        let r2 = degrade(&r1, &narrow_cfg).unwrap();
        assert_eq!(r2.backend, BackendKind::LazyNetwork);
        assert!(degrade(&r2, &narrow_cfg).is_none());
    }

    #[test]
    fn low_chi_wide_chain_routes_to_capped_mps() {
        // 30 qubits (> sv budget) of T-dusted nearest-neighbour ladder:
        // chi bound is 2, MPS is the only sane exact route.
        let mut c = Circuit::new();
        for i in 0..30u32 {
            c.push(Operation::gate(Gate::T, vec![q(i)]).unwrap());
        }
        for i in 1..30u32 {
            c.push(Operation::gate(Gate::Cnot, vec![q(i - 1), q(i)]).unwrap());
        }
        c.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        // Pipeline off: the raw chain's rank-2 crossings bound chi at 2.
        let raw = PlannerConfig {
            optimize: None,
            ..PlannerConfig::default()
        };
        let raw_plan = plan(&c, &hist(), &raw).unwrap();
        assert_eq!(raw_plan.backend, BackendKind::ChainMps { chi: Some(2) });
        assert_eq!(raw_plan.path, ExecPath::SampleParallel);
        // Pipeline on: T gates fuse into the CNOTs as U4 matrices, which
        // are (soundly) weighted as rank-4 crossings — still a
        // chi-capped MPS, with a wider but exact cap.
        let opt_plan = plan(&c, &hist(), &PlannerConfig::default()).unwrap();
        assert!(
            matches!(opt_plan.backend, BackendKind::ChainMps { chi: Some(cap) } if cap >= 2),
            "{:?}",
            opt_plan.backend
        );
        assert_eq!(opt_plan.path, ExecPath::SampleParallel);
    }

    #[test]
    fn expectation_deliverable_routes_to_the_walk() {
        let c = measured_ghz(4).without_measurements();
        let obs: PauliSum = "Z0 Z1".parse().unwrap();
        let plan = plan(
            &c,
            &Deliverable::Expectation { observable: obs },
            &PlannerConfig::default(),
        )
        .unwrap();
        assert_eq!(plan.path, ExecPath::ExpectationWalk);
        assert_eq!(plan.backend, BackendKind::ChForm);
    }

    #[test]
    fn wide_toffoli_circuits_are_rejected_with_a_typed_error() {
        let mut c = Circuit::new();
        for i in 0..30u32 {
            c.push(Operation::gate(Gate::H, vec![q(i)]).unwrap());
        }
        c.push(Operation::gate(Gate::Ccx, vec![q(0), q(1), q(2)]).unwrap());
        c.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        match plan(&c, &hist(), &PlannerConfig::default()) {
            Err(SimError::Unsupported(msg)) => assert!(msg.contains("arity-3"), "{msg}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn parameterized_circuits_are_rejected_at_plan_time() {
        let mut c = Circuit::new();
        c.push(
            Operation::gate(Gate::Rz(bgls_circuit::Param::symbol("theta")), vec![q(0)]).unwrap(),
        );
        c.push(Operation::measure(vec![q(0)], "m").unwrap());
        assert!(matches!(
            plan(&c, &hist(), &PlannerConfig::default()),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn degradation_ladder_walks_forest_replay_then_backends() {
        let cfg = PlannerConfig::default();
        // 16-qubit sparse-noise circuit: sv/forest at the top
        let mut c = measured_ghz(16).without_measurements();
        c.push(Operation::channel(Channel::bit_flip(0.05).unwrap(), vec![q(0)]).unwrap());
        c.push(Operation::measure((0..16).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        let top = plan(&c, &hist(), &cfg).unwrap();
        assert_eq!(
            (top.backend, top.path),
            (BackendKind::StateVector, ExecPath::Forest)
        );

        let r1 = degrade(&top, &cfg).unwrap();
        assert_eq!(
            (r1.backend, r1.path),
            (BackendKind::StateVector, ExecPath::Replay)
        );
        assert!(!r1.options.trajectory_forest);

        let r2 = degrade(&r1, &cfg).unwrap();
        assert!(matches!(r2.backend, BackendKind::ChainMps { chi: Some(_) }));
        assert_eq!(r2.path, ExecPath::Replay, "noisy circuit replays on MPS");

        let r3 = degrade(&r2, &cfg).unwrap();
        assert_eq!(r3.backend, BackendKind::LazyNetwork);
        assert!(degrade(&r3, &cfg).is_none(), "lazy network is the bottom");
    }

    #[test]
    fn clifford_ladder_descends_chform_tableau_statevector() {
        let cfg = PlannerConfig::default();
        let top = plan(&measured_ghz(8), &hist(), &cfg).unwrap();
        assert_eq!(top.backend, BackendKind::ChForm);
        let r1 = degrade(&top, &cfg).unwrap();
        assert_eq!(r1.backend, BackendKind::Tableau);
        assert_eq!(r1.path, ExecPath::SampleParallel);
        let r2 = degrade(&r1, &cfg).unwrap();
        assert_eq!(r2.backend, BackendKind::StateVector);
    }

    #[test]
    fn expectation_walk_degrades_to_a_shot_estimate_once() {
        let cfg = PlannerConfig::default();
        let c = measured_ghz(4).without_measurements();
        let obs: PauliSum = "Z0 Z1".parse().unwrap();
        let top = plan(&c, &Deliverable::Expectation { observable: obs }, &cfg).unwrap();
        let est = degrade(&top, &cfg).unwrap();
        assert_eq!(est.path, ExecPath::ShotEstimate);
        assert_eq!(
            est.backend, top.backend,
            "estimate stays on the same backend"
        );
        assert_ne!(
            est.fingerprint(),
            top.fingerprint(),
            "estimate results must never alias walk results in a cache"
        );
        assert!(degrade(&est, &cfg).is_none());
    }

    #[test]
    fn fingerprint_distinguishes_result_affecting_options() {
        let p1 = plan(&measured_ghz(4), &hist(), &PlannerConfig::default()).unwrap();
        let mut p2 = p1.clone();
        assert_eq!(p1.fingerprint(), p2.fingerprint());
        p2.options.fuse_gates = true;
        assert_ne!(p1.fingerprint(), p2.fingerprint());
        let mut p3 = p1.clone();
        p3.options.parallel_trajectories = false; // bit-identical by contract
        assert_eq!(p1.fingerprint(), p3.fingerprint());
    }
}

//! Circuit-aware execution planning and a batch simulation service for
//! the BGLS gate-by-gate sampling stack.
//!
//! The engine crates expose six interchangeable state representations
//! and three execution paths; picking the right pair per circuit is
//! mechanical once the circuit's structure is known. This crate closes
//! that loop:
//!
//! - [`CircuitProfile`] measures a circuit (Clifford fraction, noise,
//!   mid-circuit measurements, width, a Schmidt-rank bound from
//!   two-qubit-gate lightcones),
//! - [`plan`] turns the profile plus the requested [`Deliverable`] into
//!   an [`ExecutionPlan`] — backend, [`ExecPath`], and the
//!   [`bgls_core::SimulatorOptions`] that realize it,
//! - [`SimulationService`] hosts a submission queue over the planner:
//!   compatible requests merge into single `run_batch` /
//!   `expectation_sweep` fan-outs, batch admission tracks a latency
//!   setpoint ([`bgls_core::BatchController`]), and seeded results are
//!   memoized in a deterministic [`bgls_core::ResultCache`] — sound
//!   because every seeded run is a pure function of
//!   `(circuit, backend, options, seed, repetitions)`,
//! - [`ServiceHandle`] is the fault-tolerant async front door: a worker
//!   pool over the service with per-job `catch_unwind` isolation,
//!   deadlines, retry-with-backoff, a [`degrade`] fallback ladder, and
//!   cancellation — chaos-tested under the deterministic [`FaultPlan`]
//!   injection harness.
//!
//! One-shot use goes through [`plan_and_run`]:
//!
//! ```
//! use bgls_circuit::{Circuit, Gate, Operation, Qubit};
//! use bgls_plan::{plan_and_run, ExecPath};
//!
//! let mut bell = Circuit::new();
//! bell.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
//! bell.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
//! bell.push(Operation::measure(vec![Qubit(0), Qubit(1)], "m").unwrap());
//!
//! let planned = plan_and_run(&bell, 100, Some(7)).unwrap();
//! // A Clifford circuit with terminal measurements routes to the CH
//! // form and the sample-parallel path.
//! assert_eq!(planned.plan.backend.name(), "chform");
//! assert_eq!(planned.plan.path, ExecPath::SampleParallel);
//! let counts = planned.result.histogram("m").unwrap();
//! assert_eq!(counts.total(), 100);
//! ```

#![warn(missing_docs)]

// The serving modules are the availability-critical path: a stray
// `unwrap` there is a worker-killing panic waiting to happen, so the
// lint budget for them is zero (tests opt back in locally).
mod cost;
#[deny(clippy::unwrap_used, clippy::expect_used)]
mod fault;
mod planner;
mod profile;
#[deny(clippy::unwrap_used, clippy::expect_used)]
mod serve;
#[deny(clippy::unwrap_used, clippy::expect_used)]
mod service;

pub use cost::CostModel;
pub use fault::{FaultPlan, InjectedFault};
pub use planner::{
    degrade, plan, plan_prepared, prepare, Deliverable, ExecPath, ExecutionPlan, PlannerConfig,
    PreparedCircuit,
};
pub use profile::CircuitProfile;
pub use serve::{ServePolicy, ServiceHandle, Ticket};
pub use service::{
    JobId, JobOutput, JobReport, JobStatus, ServiceConfig, ServiceStats, SimRequest,
    SimulationService,
};

use bgls_backend::AnyState;
use bgls_circuit::{Circuit, PauliSum};
use bgls_core::{RunResult, SimError, Simulator};

/// A plan together with the run it produced.
#[derive(Clone, Debug)]
pub struct PlannedRun {
    /// The routing decision.
    pub plan: ExecutionPlan,
    /// The sampled result.
    pub result: RunResult,
}

/// A plan together with the expectation value it produced.
#[derive(Clone, Debug)]
pub struct PlannedExpectation {
    /// The routing decision.
    pub plan: ExecutionPlan,
    /// The exact expectation value.
    pub value: f64,
}

/// Plans `circuit` for a histogram deliverable under the default
/// [`PlannerConfig`] and runs it. See [`plan`] for the routing table;
/// the result is bit-identical to [`ExecutionPlan::run`] on the
/// returned plan.
pub fn plan_and_run(
    circuit: &Circuit,
    repetitions: u64,
    seed: Option<u64>,
) -> Result<PlannedRun, SimError> {
    let plan = plan(
        circuit,
        &Deliverable::Histogram { repetitions },
        &PlannerConfig::default(),
    )?;
    let result = plan.run(repetitions, seed)?;
    Ok(PlannedRun { plan, result })
}

/// Plans `circuit` for an exact-expectation deliverable under the
/// default [`PlannerConfig`] and evaluates it with the weighted-frontier
/// walk (deterministic — no seed).
pub fn plan_and_expect(
    circuit: &Circuit,
    observable: &PauliSum,
) -> Result<PlannedExpectation, SimError> {
    let plan = plan(
        circuit,
        &Deliverable::Expectation {
            observable: observable.clone(),
        },
        &PlannerConfig::default(),
    )?;
    let value = plan.expectation(observable)?;
    Ok(PlannedExpectation { plan, value })
}

/// Planner-driven entry points on [`Simulator`], for callers that
/// already speak the simulator API:
/// `Simulator::<AnyState>::plan_and_run(...)`.
pub trait SimulatorPlanExt {
    /// [`plan_and_run`] as an associated function.
    fn plan_and_run(
        circuit: &Circuit,
        repetitions: u64,
        seed: Option<u64>,
    ) -> Result<PlannedRun, SimError>;

    /// [`plan_and_expect`] as an associated function.
    fn plan_and_expect(
        circuit: &Circuit,
        observable: &PauliSum,
    ) -> Result<PlannedExpectation, SimError>;
}

impl SimulatorPlanExt for Simulator<AnyState> {
    fn plan_and_run(
        circuit: &Circuit,
        repetitions: u64,
        seed: Option<u64>,
    ) -> Result<PlannedRun, SimError> {
        plan_and_run(circuit, repetitions, seed)
    }

    fn plan_and_expect(
        circuit: &Circuit,
        observable: &PauliSum,
    ) -> Result<PlannedExpectation, SimError> {
        plan_and_expect(circuit, observable)
    }
}

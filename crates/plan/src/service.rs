//! The batch simulation service: a queue, a planner, a batcher, a
//! deterministic result cache — and a fault-tolerance layer.
//!
//! [`SimulationService`] is the host loop the planner was built for.
//! Requests arrive via [`SimulationService::submit`] (which plans them
//! immediately — infeasible circuits are rejected at the door), sit in
//! a bounded FIFO queue, and are drained by
//! [`SimulationService::run_pending`] in admission-controlled batches:
//!
//! 1. Each drained job first consults the [`ResultCache`]. A seeded
//!    simulation is a pure function of
//!    `(circuit, backend, options, seed, repetitions)`, so a hit is
//!    *bit-identical* to re-running — not an approximation.
//! 2. Cache misses are deduplicated (a hot burst of identical requests
//!    simulates once) and merged into compatibility groups — same plan
//!    fingerprint, width, and shot count for histograms; same base
//!    circuit and observable for expectation sweeps. Each group becomes
//!    ONE engine fan-out: [`Simulator::run_batch`] for histograms
//!    (every entry under exactly its own seed, so merging never changes
//!    any result) or [`Simulator::expectation_sweep`] for expectations.
//! 3. Batch size is a setpoint-driven knob: a [`BatchController`] PI
//!    loop grows batches while service latency is under target and
//!    shrinks them when it overshoots.
//!
//! # Failure domains
//!
//! Every batch member is its own failure domain. A panicking kernel is
//! caught (`catch_unwind`) and surfaces as a typed
//! [`SimError::WorkerPanic`] on that job alone; the drain loop, the
//! other batch members, and the service itself keep running. Failed
//! jobs are retried with exponential backoff ([`RetryPolicy`]) and,
//! when the retry budget on a plan is exhausted — or immediately on
//! [`SimError::BudgetExhausted`] — re-planned one rung down the
//! [`crate::degrade`] ladder, with each hop recorded in the final
//! [`JobReport::degradations`]. Deadlines are checked at batch
//! boundaries against the service [`Clock`]; queued jobs can be
//! cancelled by [`JobId`]. A [`FaultPlan`] injects deterministic,
//! seed-keyed faults for chaos testing.

use crate::cost::CostModel;
use crate::fault::{FaultPlan, InjectedFault};
use crate::planner::{degrade, plan_prepared, prepare, Deliverable, ExecPath, ExecutionPlan};
use crate::PlannerConfig;
use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{lightcone_prune_for, Circuit, ParamResolver, PauliSum, Qubit, RewriteStats};
use bgls_core::{
    BatchController, BatchPolicy, CacheKey, CacheStats, Clock, MonotonicClock, OpFaultFn,
    ResultCache, RetryPolicy, RunResult, SimError, Simulator,
};
use bgls_linalg::{FxHashMap, FxHasher};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Locks a mutex, recovering from poisoning: a panicking worker must
/// never take the service down with it — the protected state is only
/// ever updated in consistent steps, so the post-panic value is valid.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Renders a caught panic payload as text for [`SimError::WorkerPanic`].
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Configuration of a [`SimulationService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Budgets for the per-request planner.
    pub planner: PlannerConfig,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Maximum queued (submitted, unexecuted) jobs; further submissions
    /// are rejected with [`SimError::Invalid`]. Retry/degradation
    /// re-admissions bypass the bound — an accepted job is never lost
    /// to backpressure.
    pub max_queue: usize,
    /// Seed applied to histogram requests that do not carry their own.
    /// `None` leaves such requests unseeded — fresh entropy every run,
    /// and therefore uncacheable.
    pub default_seed: Option<u64>,
    /// Setpoint and gains of the batch admission controller.
    pub batch: BatchPolicy,
    /// Retry budget and backoff schedule per degradation rung.
    pub retry: RetryPolicy,
    /// Deadline budget applied to requests that do not carry their own
    /// (`None` = no default deadline).
    pub default_deadline_ms: Option<u64>,
    /// Shots per Pauli group when an expectation job degrades from the
    /// exact walk to the grouped-shot estimate
    /// ([`ExecPath::ShotEstimate`]).
    pub degraded_shots: u64,
    /// Deterministic fault injection for chaos tests; `None` (the
    /// default) injects nothing.
    pub fault: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            planner: PlannerConfig::default(),
            cache_capacity: 1024,
            max_queue: 4096,
            default_seed: None,
            batch: BatchPolicy::default(),
            retry: RetryPolicy::default(),
            default_deadline_ms: None,
            degraded_shots: 2048,
            fault: None,
        }
    }
}

/// Handle to a submitted job; redeem with
/// [`SimulationService::take_result`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

/// Where a job currently is in its lifecycle — the typed answer to
/// "why did `take_result` return `None`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Submitted and waiting in the queue (possibly in a retry backoff
    /// window).
    Pending,
    /// Drained into the batch currently executing.
    Running,
    /// Finished — [`SimulationService::take_result`] will return it.
    Done,
    /// The service has no record of the id: never submitted here, or
    /// its result was already taken.
    Unknown,
}

/// A completed job's payload.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// Sampled histogram result (shared — cache hits hand out the same
    /// allocation).
    Histogram(Arc<RunResult>),
    /// Expectation value (exact from the walk, or a grouped-shot
    /// estimate when the job degraded to [`ExecPath::ShotEstimate`]).
    Expectation(f64),
}

impl JobOutput {
    /// The run result, when this is a histogram job.
    pub fn histogram(&self) -> Option<&RunResult> {
        match self {
            JobOutput::Histogram(r) => Some(r),
            JobOutput::Expectation(_) => None,
        }
    }

    /// The value, when this is an expectation job.
    pub fn expectation(&self) -> Option<f64> {
        match self {
            JobOutput::Histogram(_) => None,
            JobOutput::Expectation(v) => Some(*v),
        }
    }
}

/// A finished job: the output plus how it was produced.
///
/// The fault-tolerance contract lives here: `backend`/`path` name the
/// plan that finally served the job, and `degradations` records every
/// ladder hop that led to it. A degraded-but-successful seeded job is
/// bit-identical to running the recorded fallback plan directly with
/// the same seed.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The payload.
    pub output: JobOutput,
    /// Execution attempts this job consumed (0 when served from cache).
    pub attempts: u32,
    /// One entry per degradation hop, oldest first — empty for a job
    /// served by its original plan.
    pub degradations: Vec<String>,
    /// Backend of the plan that produced the output.
    pub backend: BackendKind,
    /// Execution path of the plan that produced the output.
    pub path: ExecPath,
    /// What the optimizer pipeline did to the circuit this job executed
    /// (all-zero deltas when the pipeline was off).
    pub rewrite: RewriteStats,
    /// The calibrated cost model's wall-clock prediction for this job's
    /// share of its batch, in milliseconds. `None` while the model's
    /// `(backend, path)` bucket is still warming up, and for cache hits.
    pub predicted_ms: Option<f64>,
    /// This job's share of its batch's measured wall-clock, in
    /// milliseconds, apportioned by static cost units. `None` for cache
    /// hits (nothing executed).
    pub measured_ms: Option<f64>,
}

impl JobReport {
    /// The run result, when this is a histogram job.
    pub fn histogram(&self) -> Option<&RunResult> {
        self.output.histogram()
    }

    /// The value, when this is an expectation job.
    pub fn expectation(&self) -> Option<f64> {
        self.output.expectation()
    }

    /// True when the job was served by a fallback plan rather than its
    /// original one.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

/// One simulation request.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// The circuit to simulate (possibly parameterized when `resolver`
    /// is set).
    pub circuit: Circuit,
    /// Parameter bindings applied at submission.
    pub resolver: Option<ParamResolver>,
    /// What to compute.
    pub deliverable: Deliverable,
    /// Explicit seed; falls back to [`ServiceConfig::default_seed`].
    pub seed: Option<u64>,
    /// Deadline budget in milliseconds from submission; falls back to
    /// [`ServiceConfig::default_deadline_ms`]. Checked at batch
    /// boundaries — an expired job fails with
    /// [`SimError::DeadlineExceeded`] instead of executing.
    pub deadline_ms: Option<u64>,
}

impl SimRequest {
    /// A histogram request over `repetitions` shots.
    pub fn histogram(circuit: Circuit, repetitions: u64) -> Self {
        SimRequest {
            circuit,
            resolver: None,
            deliverable: Deliverable::Histogram { repetitions },
            seed: None,
            deadline_ms: None,
        }
    }

    /// An exact-expectation request.
    pub fn expectation(circuit: Circuit, observable: PauliSum) -> Self {
        SimRequest {
            circuit,
            resolver: None,
            deliverable: Deliverable::Expectation { observable },
            seed: None,
            deadline_ms: None,
        }
    }

    /// Attaches an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches parameter bindings, resolved at submission.
    pub fn with_resolver(mut self, resolver: ParamResolver) -> Self {
        self.resolver = Some(resolver);
        self
    }

    /// Attaches a deadline budget in milliseconds from submission.
    pub fn with_deadline_ms(mut self, budget_ms: u64) -> Self {
        self.deadline_ms = Some(budget_ms);
        self
    }
}

/// Service counters (cache counters live in
/// [`SimulationService::cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by [`SimulationService::submit`].
    pub submitted: u64,
    /// Jobs finished successfully (including cache hits).
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Drain batches executed.
    pub batches: u64,
    /// Jobs that shared an engine fan-out with at least one other job
    /// (the batching win).
    pub merged_jobs: u64,
    /// Distinct simulations actually executed (after cache hits and
    /// in-batch deduplication).
    pub simulated_jobs: u64,
    /// Failed attempts re-admitted for another try on the same plan.
    pub retries: u64,
    /// Hops taken down the degradation ladder.
    pub degradations: u64,
    /// Panics caught and converted to [`SimError::WorkerPanic`].
    pub panics_caught: u64,
    /// Jobs failed with [`SimError::DeadlineExceeded`].
    pub deadline_misses: u64,
    /// Jobs cancelled by the caller before execution.
    pub cancellations: u64,
    /// Faults injected by the configured [`FaultPlan`].
    pub faults_injected: u64,
}

struct PendingJob {
    id: u64,
    /// Unresolved circuit — the base of `expectation_sweep` merging.
    base: Circuit,
    resolver: ParamResolver,
    /// Resolver already applied; what histogram jobs execute.
    resolved: Circuit,
    plan: ExecutionPlan,
    seed: Option<u64>,
    /// Identity at submission — what in-batch dedup and cache lookups
    /// key on. Stable across retries and degradations.
    dedup_key: Option<CacheKey>,
    /// Key under the plan *currently serving* the job — what a
    /// successful result is cached under. Re-computed on degradation so
    /// a fallback backend's bits are never stored under the original
    /// plan's key.
    serve_key: Option<CacheKey>,
    kind: JobKind,
    /// Execution attempts started so far (also the fault-roll index).
    attempt: u32,
    /// Retries consumed on the current degradation rung.
    rung_retries: u32,
    /// Degradation-ladder hops taken, oldest first.
    degradations: Vec<String>,
    /// `(absolute deadline in clock ms, original budget)`.
    deadline: Option<(u64, u64)>,
    /// Earliest clock time the job may execute (retry backoff).
    not_before_ms: u64,
    /// Calibrated wall-clock prediction captured just before execution.
    predicted_ms: Option<f64>,
    /// Measured share of the executing batch's wall-clock.
    measured_ms: Option<f64>,
}

enum JobKind {
    Histogram { repetitions: u64 },
    Expectation { observable: PauliSum, obs_fp: u64 },
}

/// Cache key for a job under a given plan. The submission-time call
/// produces the dedup identity; after a degradation the same function
/// re-keys the job under the fallback plan (for
/// [`ExecPath::ShotEstimate`] the estimate is seeded sampling, so it is
/// cacheable only when seeded, keyed by shots in the `repetitions`
/// slot).
fn key_for(
    kind: &JobKind,
    plan: &ExecutionPlan,
    resolved: &Circuit,
    seed: Option<u64>,
    degraded_shots: u64,
) -> Option<CacheKey> {
    let circuit = resolved.structural_hash();
    let backend = plan.fingerprint();
    match kind {
        // Only seeded histograms are reproducible, hence cacheable.
        JobKind::Histogram { repetitions } => seed.map(|s| CacheKey {
            circuit,
            backend,
            seed: s,
            repetitions: *repetitions,
            deliverable: 0,
        }),
        JobKind::Expectation { obs_fp, .. } => {
            if plan.path == ExecPath::ShotEstimate {
                seed.map(|s| CacheKey {
                    circuit,
                    backend,
                    seed: s,
                    repetitions: degraded_shots,
                    deliverable: *obs_fp,
                })
            } else {
                // The expectation walk is deterministic: cacheable
                // regardless of seeding.
                Some(CacheKey {
                    circuit,
                    backend,
                    seed: 0,
                    repetitions: 0,
                    deliverable: *obs_fp,
                })
            }
        }
    }
}

/// The planner-driven batch simulation host. Single-threaded by design:
/// `submit` enqueues, [`SimulationService::run_pending`] drains — the
/// parallelism lives inside the merged engine fan-outs (Rayon), which
/// keeps the whole service deterministic for seeded traffic. The async
/// front door ([`crate::ServiceHandle`]) wraps this same loop in a
/// worker pool.
pub struct SimulationService {
    config: ServiceConfig,
    queue: VecDeque<PendingJob>,
    done: FxHashMap<u64, Result<JobReport, SimError>>,
    cache: ResultCache<JobOutput>,
    controller: BatchController,
    next_id: u64,
    stats: ServiceStats,
    clock: Arc<dyn Clock>,
    /// Ids of jobs inside the batch currently executing — shared so the
    /// front door can answer [`SimulationService::status`] queries
    /// without the service lock.
    running: Arc<Mutex<FxHashMap<u64, ()>>>,
    /// Timing-calibrated cost model, fed by batch wall-clock
    /// observations; consulted at plan time once its buckets are warm.
    cost: CostModel,
    /// Memoized [`crate::PreparedCircuit`]s behind the resolved
    /// circuit's structural hash — cache-hit traffic never re-profiles
    /// or re-optimizes. Bounded: cleared wholesale at capacity.
    preps: FxHashMap<u64, Arc<crate::PreparedCircuit>>,
}

/// Entry bound for the prepared-circuit memo; beyond this the map is
/// cleared (the entries are cheap to rebuild, and real traffic cycles
/// through far fewer distinct circuits).
const PREP_MEMO_CAPACITY: usize = 512;

impl SimulationService {
    /// A service over `config`, timed by a wall [`MonotonicClock`].
    pub fn new(config: ServiceConfig) -> Self {
        SimulationService::with_clock(config, Arc::new(MonotonicClock::new()))
    }

    /// A service over `config` scheduling against `clock` — hand in a
    /// [`bgls_core::ManualClock`] to make deadlines and retry backoff
    /// deterministic in tests.
    pub fn with_clock(config: ServiceConfig, clock: Arc<dyn Clock>) -> Self {
        let cache = ResultCache::new(config.cache_capacity);
        let controller = BatchController::new(config.batch);
        SimulationService {
            config,
            queue: VecDeque::new(),
            done: FxHashMap::default(),
            cache,
            controller,
            next_id: 0,
            stats: ServiceStats::default(),
            clock,
            running: Arc::new(Mutex::new(FxHashMap::default())),
            cost: CostModel::new(),
            preps: FxHashMap::default(),
        }
    }

    /// A service with default configuration.
    pub fn with_defaults() -> Self {
        SimulationService::new(ServiceConfig::default())
    }

    /// Plans and enqueues a request. Infeasible or malformed requests
    /// are rejected here, synchronously, rather than failing later in a
    /// batch; a full queue rejects with [`SimError::Invalid`]
    /// (admission control — the queue bound is the service's memory
    /// ceiling).
    pub fn submit(&mut self, request: SimRequest) -> Result<JobId, SimError> {
        if self.queue.len() >= self.config.max_queue {
            return Err(SimError::Invalid(format!(
                "service queue is full ({} jobs); drain with run_pending before submitting more",
                self.queue.len()
            )));
        }
        let resolver = request.resolver.unwrap_or_default();
        let resolved = request.circuit.resolve(&resolver);
        // The memo key is a 64-bit structural hash; verify the hit
        // against the actual circuit so a collision re-prepares instead
        // of silently executing another circuit's plan.
        let memo_hit = self
            .preps
            .get(&resolved.structural_hash())
            .filter(|p| p.raw() == &resolved);
        let prep = match memo_hit {
            Some(p) => Arc::clone(p),
            None => {
                if self.preps.len() >= PREP_MEMO_CAPACITY {
                    self.preps.clear();
                }
                let p = Arc::new(prepare(&resolved, &self.config.planner));
                self.preps
                    .insert(resolved.structural_hash(), Arc::clone(&p));
                p
            }
        };
        let plan = plan_prepared(
            &prep,
            &request.deliverable,
            &self.config.planner,
            Some(&self.cost),
        )?;
        let seed = request.seed.or(self.config.default_seed);
        let kind = match request.deliverable {
            Deliverable::Histogram { repetitions } => JobKind::Histogram { repetitions },
            Deliverable::Expectation { observable } => {
                let obs_fp = hash_str(&observable.to_string());
                JobKind::Expectation { observable, obs_fp }
            }
        };
        let key = key_for(&kind, &plan, &resolved, seed, self.config.degraded_shots);
        let deadline = request
            .deadline_ms
            .or(self.config.default_deadline_ms)
            .map(|budget| (self.clock.now_ms().saturating_add(budget), budget));
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(PendingJob {
            id,
            base: request.circuit,
            resolver,
            resolved,
            plan,
            seed,
            dedup_key: key,
            serve_key: key,
            kind,
            attempt: 0,
            rung_retries: 0,
            degradations: Vec::new(),
            deadline,
            not_before_ms: 0,
            predicted_ms: None,
            measured_ms: None,
        });
        self.stats.submitted += 1;
        Ok(JobId(id))
    }

    /// Drains and executes one admission-controlled batch from the
    /// queue; returns the number of jobs settled (ok or err — retried
    /// jobs do not count until they settle). Jobs inside a retry
    /// backoff window are passed over; jobs past their deadline settle
    /// with [`SimError::DeadlineExceeded`] without executing. Call in a
    /// loop — or use [`SimulationService::run_all`] — to drain fully.
    pub fn run_pending(&mut self) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let settled_before = self.stats.completed + self.stats.failed;
        let now = self.clock.now_ms();
        let want = self.controller.batch_size();
        let mut batch: Vec<PendingJob> = Vec::new();
        let rounds = self.queue.len();
        for _ in 0..rounds {
            if batch.len() >= want {
                break;
            }
            let Some(job) = self.queue.pop_front() else {
                break;
            };
            if let Some((deadline_abs, budget_ms)) = job.deadline {
                if now > deadline_abs {
                    self.stats.deadline_misses += 1;
                    self.finish(job.id, Err(SimError::DeadlineExceeded { budget_ms }));
                    continue;
                }
            }
            if job.not_before_ms > now {
                // still backing off: rotate to the back, keep draining
                self.queue.push_back(job);
                continue;
            }
            batch.push(job);
        }
        if !batch.is_empty() {
            let taken = batch.len();
            let started = Instant::now();
            self.execute_batch(batch);
            let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
            self.controller.observe(taken, elapsed_ms);
            self.stats.batches += 1;
        }
        (self.stats.completed + self.stats.failed - settled_before) as usize
    }

    /// Drains the whole queue — including waiting out retry backoff
    /// windows via the service clock — and returns total jobs settled.
    pub fn run_all(&mut self) -> usize {
        let mut total = 0;
        while !self.queue.is_empty() {
            let settled = self.run_pending();
            total += settled;
            if settled == 0 {
                if let Some(delay) = self.next_eligible_delay_ms() {
                    self.clock.sleep_ms(delay.max(1));
                }
            }
        }
        total
    }

    /// Milliseconds until the earliest queued job becomes eligible to
    /// execute (0 when one already is; `None` when the queue is empty).
    /// The async front door uses this to pace its drain loop instead of
    /// spinning on backoff windows.
    pub fn next_eligible_delay_ms(&self) -> Option<u64> {
        let now = self.clock.now_ms();
        self.queue
            .iter()
            .map(|j| j.not_before_ms.saturating_sub(now))
            .min()
    }

    /// Removes and returns a finished job's result; `None` while the
    /// job is still queued or running (disambiguate with
    /// [`SimulationService::status`]).
    pub fn take_result(&mut self, id: JobId) -> Option<Result<JobReport, SimError>> {
        self.done.remove(&id.0)
    }

    /// Removes and returns every finished job, ordered by id — the bulk
    /// form the async front door publishes from.
    pub fn take_finished(&mut self) -> Vec<(JobId, Result<JobReport, SimError>)> {
        let mut out: Vec<(JobId, Result<JobReport, SimError>)> = self
            .done
            .drain()
            .map(|(id, result)| (JobId(id), result))
            .collect();
        out.sort_by_key(|(id, _)| id.0);
        out
    }

    /// Where `id` currently is in its lifecycle. Note that a taken
    /// result reverts to [`JobStatus::Unknown`] — the service keeps no
    /// tombstones.
    pub fn status(&self, id: JobId) -> JobStatus {
        if self.done.contains_key(&id.0) {
            return JobStatus::Done;
        }
        if lock(&self.running).contains_key(&id.0) {
            return JobStatus::Running;
        }
        if self.queue.iter().any(|j| j.id == id.0) {
            return JobStatus::Pending;
        }
        JobStatus::Unknown
    }

    /// Cancels a queued job: it settles immediately with
    /// [`SimError::Cancelled`] and will never execute. Returns `false`
    /// when the job is not in the queue (already running, done, or
    /// unknown) — cancellation is best-effort and never yanks a job out
    /// of a batch mid-flight.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.queue.iter().position(|j| j.id == id.0) {
            if let Some(job) = self.queue.remove(pos) {
                self.stats.cancellations += 1;
                self.finish(job.id, Err(SimError::Cancelled));
                return true;
            }
        }
        false
    }

    /// Jobs waiting to execute.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The controller's current batch size (the PI loop's actuation).
    pub fn batch_size(&self) -> usize {
        self.controller.batch_size()
    }

    /// The clock the service schedules against.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock)
    }

    fn finish(&mut self, id: u64, result: Result<JobReport, SimError>) {
        match &result {
            Ok(_) => self.stats.completed += 1,
            Err(_) => self.stats.failed += 1,
        }
        lock(&self.running).remove(&id);
        self.done.insert(id, result);
    }

    fn report_for(job: &PendingJob, output: JobOutput) -> JobReport {
        JobReport {
            output,
            attempts: job.attempt,
            degradations: job.degradations.clone(),
            backend: job.plan.backend,
            path: job.plan.path,
            rewrite: job.plan.rewrite.clone(),
            predicted_ms: job.predicted_ms,
            measured_ms: job.measured_ms,
        }
    }

    fn execute_batch(&mut self, batch: Vec<PendingJob>) {
        {
            let mut running = lock(&self.running);
            for job in &batch {
                running.insert(job.id, ());
            }
        }
        // Phase 1: cache lookups, and in-batch dedup of identical keys —
        // a dedup key maps to the first job carrying it (the leader);
        // parked duplicates follow the leader's fate (copy of its
        // output, its error, or re-admission alongside it).
        // Memoization (cache lookups AND in-batch dedup) is one switch:
        // capacity 0 means every request simulates, the uncached
        // baseline the throughput bench contrasts against.
        let memoize = self.config.cache_capacity > 0;
        let mut misses: Vec<PendingJob> = Vec::new();
        let mut parked: FxHashMap<CacheKey, Vec<PendingJob>> = FxHashMap::default();
        let mut leaders: FxHashMap<CacheKey, ()> = FxHashMap::default();
        for job in batch {
            if memoize {
                if let Some(key) = job.dedup_key {
                    if let Some(hit) = self.cache.get(&key) {
                        let report = Self::report_for(&job, (*hit).clone());
                        self.finish(job.id, Ok(report));
                        continue;
                    }
                    if leaders.contains_key(&key) {
                        parked.entry(key).or_default().push(job);
                        continue;
                    }
                    leaders.insert(key, ());
                }
            }
            misses.push(job);
        }

        // Phase 2: the fault sieve. Jobs the FaultPlan selects are
        // pulled out of the merge groups and executed (or poisoned)
        // individually so an injected fault never contaminates a merged
        // fan-out.
        let fault = self.config.fault.clone();
        let mut clean: Vec<PendingJob> = Vec::new();
        let mut faulted: Vec<(PendingJob, InjectedFault)> = Vec::new();
        match &fault {
            Some(fp) if !fp.is_inert() => {
                for job in misses {
                    match fp.decide(job.id, job.attempt, job.plan.backend) {
                        InjectedFault::None => clean.push(job),
                        injected => faulted.push((job, injected)),
                    }
                }
            }
            _ => clean = misses,
        }
        if let Some(fp) = &fault {
            if fp.latency_ms > 0 && !(clean.is_empty() && faulted.is_empty()) {
                // artificial service latency, once per executed batch
                self.clock.sleep_ms(fp.latency_ms);
            }
        }
        for (job, injected) in faulted {
            self.stats.faults_injected += 1;
            let outcome = match injected {
                InjectedFault::None => unreachable!("the fault sieve only collects faulted jobs"),
                InjectedFault::Panic => {
                    let seed = fault.as_ref().map(|fp| fp.seed).unwrap_or_default();
                    let msg = format!(
                        "injected panic (fault seed {seed}, job {}, attempt {})",
                        job.id, job.attempt
                    );
                    let caught =
                        catch_unwind(AssertUnwindSafe(|| -> Result<JobOutput, SimError> {
                            panic!("{msg}");
                        }));
                    match caught {
                        Ok(result) => result,
                        Err(payload) => {
                            self.stats.panics_caught += 1;
                            Err(SimError::WorkerPanic(panic_message(payload)))
                        }
                    }
                }
                InjectedFault::BudgetExhaustion => Err(SimError::BudgetExhausted(format!(
                    "injected budget exhaustion (job {}, attempt {})",
                    job.id, job.attempt
                ))),
                InjectedFault::BackendFailure => {
                    let armed = fault
                        .as_ref()
                        .and_then(|fp| fp.op_fault_spec().arm(job.plan.backend));
                    self.run_single_guarded(&job, armed)
                }
            };
            self.dispose(job, outcome, &mut parked);
        }

        // Phase 3: group the clean misses into compatible engine
        // fan-outs. The fingerprint covers backend, path, and
        // result-affecting options, so groups are homogeneous.
        let mut hist_groups: FxHashMap<(u64, usize, u64), Vec<PendingJob>> = FxHashMap::default();
        let mut exp_groups: FxHashMap<(u64, u64, u64), Vec<PendingJob>> = FxHashMap::default();
        for job in clean {
            match &job.kind {
                JobKind::Histogram { repetitions } => {
                    // Width from the plan's (optimizer-rewritten) circuit:
                    // a lightcone-pruned circuit must not allocate state
                    // for the raw submission's dead qubits.
                    let group = (
                        job.plan.fingerprint(),
                        job.plan.circuit.num_qubits().max(1),
                        *repetitions,
                    );
                    hist_groups.entry(group).or_default().push(job);
                }
                JobKind::Expectation { obs_fp, .. } => {
                    let group = (job.plan.fingerprint(), job.base.structural_hash(), *obs_fp);
                    exp_groups.entry(group).or_default().push(job);
                }
            }
        }
        for ((_, n, repetitions), group) in hist_groups {
            self.run_histogram_group(n, repetitions, group, &mut parked);
        }
        for (_, group) in exp_groups {
            self.run_expectation_group(group, &mut parked);
        }

        // Every leader was disposed above, which drains its parked
        // duplicates; anything left would be a bookkeeping bug — re-admit
        // rather than lose a job.
        for (_, dups) in parked {
            for dup in dups {
                lock(&self.running).remove(&dup.id);
                self.queue.push_back(dup);
            }
        }
    }

    /// One merged `run_batch` fan-out: every entry executes under its
    /// own seed, so each job's histogram is bit-identical to a
    /// standalone [`ExecutionPlan::run`] — batch composition never
    /// leaks into results. The fan-out runs under `catch_unwind`; on
    /// any group-level failure (error or panic) each entry re-runs
    /// individually so every job gets its own isolated verdict.
    fn run_histogram_group(
        &mut self,
        n: usize,
        repetitions: u64,
        mut group: Vec<PendingJob>,
        parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>,
    ) {
        let backend = group[0].plan.backend;
        let path = group[0].plan.path;
        let mut options = group[0].plan.options.clone();
        options.parallel_sweep = true; // fan the merged batch across threads
        let sim = Simulator::for_backend(backend, n, options);
        // Each job executes its plan's (optimizer-rewritten) circuit;
        // the plan fingerprint in the group key guarantees every member
        // went through the same pipeline.
        let jobs: Vec<(Circuit, Option<u64>)> = group
            .iter()
            .map(|j| (j.plan.circuit.clone(), j.seed))
            .collect();
        let units: Vec<f64> = group
            .iter()
            .map(|j| CostModel::static_units(&j.plan.profile, &backend) * repetitions as f64)
            .collect();
        let total_units: f64 = units.iter().sum();
        for (job, u) in group.iter_mut().zip(&units) {
            job.predicted_ms = self.cost.predict_ms(&backend, path, *u);
        }
        let merged = group.len() > 1;
        let started = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| sim.run_batch(&jobs, repetitions)));
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        match attempt {
            Ok(Ok(results)) => {
                self.stats.simulated_jobs += group.len() as u64;
                self.cost.observe(&backend, path, total_units, elapsed_ms);
                for ((mut job, result), u) in group.into_iter().zip(results).zip(units) {
                    if merged {
                        self.stats.merged_jobs += 1;
                    }
                    if total_units > 0.0 {
                        job.measured_ms = Some(elapsed_ms * u / total_units);
                    }
                    let output = JobOutput::Histogram(Arc::new(result));
                    self.dispose(job, Ok(output), parked);
                }
            }
            _ => {
                // A merged fan-out reports only its first error — and a
                // panic poisons the whole attempt. Isolate: re-run each
                // entry in its own failure domain.
                for job in group {
                    let outcome = self.run_single_guarded(&job, None);
                    self.dispose(job, outcome, parked);
                }
            }
        }
    }

    /// One merged `expectation_sweep` fan-out over the group's shared
    /// base circuit: entries differ only in their parameter bindings.
    /// The walk is deterministic, so merging is trivially sound.
    /// Degraded shot-estimate jobs never merge — each runs individually
    /// under its own seed.
    fn run_expectation_group(
        &mut self,
        mut group: Vec<PendingJob>,
        parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>,
    ) {
        if group[0].plan.path == ExecPath::ShotEstimate {
            for job in group {
                let outcome = self.run_single_guarded(&job, None);
                self.dispose(job, outcome, parked);
            }
            return;
        }
        let observable = match &group[0].kind {
            JobKind::Expectation { observable, .. } => observable.clone(),
            JobKind::Histogram { .. } => unreachable!("histogram job in expectation group"),
        };
        let backend = group[0].plan.backend;
        let path = group[0].plan.path;
        let mut options = group[0].plan.options.clone();
        options.parallel_sweep = true;
        // The observable lightcone commutes with parameter resolution
        // (it drops ops by support alone), so pruning the shared base
        // yields exactly the per-job plan circuits after resolution —
        // the merged sweep stays bit-identical to standalone walks.
        let mut targets: Vec<Qubit> = observable
            .terms()
            .iter()
            .flat_map(|(_, p)| p.support().into_iter().map(|q| Qubit(q as u32)))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let base = if group[0].plan.optimize.map(|c| c.lightcone).unwrap_or(false) {
            lightcone_prune_for(&group[0].base, &targets)
        } else {
            group[0].base.clone()
        };
        // Width from the (possibly pruned) base, extended to cover the
        // observable's support — never the raw submission width.
        let n = base
            .num_qubits()
            .max(targets.iter().map(|q| q.0 as usize + 1).max().unwrap_or(0))
            .max(1);
        let sim = Simulator::for_backend(backend, n, options);
        let resolvers: Vec<ParamResolver> = group.iter().map(|j| j.resolver.clone()).collect();
        let units: Vec<f64> = group
            .iter()
            .map(|j| CostModel::static_units(&j.plan.profile, &backend))
            .collect();
        let total_units: f64 = units.iter().sum();
        for (job, u) in group.iter_mut().zip(&units) {
            job.predicted_ms = self.cost.predict_ms(&backend, path, *u);
        }
        let merged = group.len() > 1;
        let started = Instant::now();
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            sim.expectation_sweep(&base, &resolvers, &observable)
        }));
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        match attempt {
            Ok(Ok(values)) => {
                self.stats.simulated_jobs += group.len() as u64;
                self.cost.observe(&backend, path, total_units, elapsed_ms);
                for ((mut job, value), u) in group.into_iter().zip(values).zip(units) {
                    if merged {
                        self.stats.merged_jobs += 1;
                    }
                    if total_units > 0.0 {
                        job.measured_ms = Some(elapsed_ms * u / total_units);
                    }
                    self.dispose(job, Ok(JobOutput::Expectation(value)), parked);
                }
            }
            _ => {
                for job in group {
                    let outcome = self.run_single_guarded(&job, None);
                    self.dispose(job, outcome, parked);
                }
            }
        }
    }

    /// Runs one job standalone inside its own `catch_unwind` failure
    /// domain; a panic becomes [`SimError::WorkerPanic`].
    fn run_single_guarded(
        &mut self,
        job: &PendingJob,
        armed: Option<OpFaultFn>,
    ) -> Result<JobOutput, SimError> {
        self.stats.simulated_jobs += 1;
        let attempt = {
            let this: &Self = self;
            catch_unwind(AssertUnwindSafe(|| this.run_single(job, armed)))
        };
        match attempt {
            Ok(outcome) => outcome,
            Err(payload) => {
                self.stats.panics_caught += 1;
                Err(SimError::WorkerPanic(panic_message(payload)))
            }
        }
    }

    /// Standalone execution of one job under its current plan. By the
    /// engine determinism contract the result is bit-identical to the
    /// merged fan-out path for the same `(circuit, plan, seed)`.
    fn run_single(
        &self,
        job: &PendingJob,
        armed: Option<OpFaultFn>,
    ) -> Result<JobOutput, SimError> {
        // Width from the plan's (optimizer-rewritten) circuit, extended
        // to cover the observable for expectation jobs — never the raw
        // submission width, which may include lightcone-pruned qubits.
        let obs_width = match &job.kind {
            JobKind::Expectation { observable, .. } => observable
                .terms()
                .iter()
                .flat_map(|(_, p)| p.support())
                .map(|q| q + 1)
                .max()
                .unwrap_or(0),
            JobKind::Histogram { .. } => 0,
        };
        let n = job.plan.circuit.num_qubits().max(obs_width).max(1);
        let mut options = job.plan.options.clone();
        options.seed = job.seed;
        let mut sim = Simulator::for_backend(job.plan.backend, n, options);
        if let Some(hook) = armed {
            sim = sim.with_fallible_ops(hook);
        }
        match &job.kind {
            JobKind::Histogram { repetitions } => sim
                .run(&job.plan.circuit, *repetitions)
                .map(|r| JobOutput::Histogram(Arc::new(r))),
            JobKind::Expectation { observable, .. } => {
                if job.plan.path == ExecPath::ShotEstimate {
                    sim.estimate_expectation(
                        &job.plan.circuit,
                        observable,
                        self.config.degraded_shots,
                    )
                    .map(|estimate| JobOutput::Expectation(estimate.value))
                } else {
                    sim.expectation_value(&job.plan.circuit, observable)
                        .map(JobOutput::Expectation)
                }
            }
        }
    }

    /// Routes one executed attempt's outcome: settle on success, and on
    /// failure walk the retry → degrade → terminal-failure ladder.
    /// Parked in-batch duplicates follow their leader everywhere.
    fn dispose(
        &mut self,
        mut job: PendingJob,
        outcome: Result<JobOutput, SimError>,
        parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>,
    ) {
        job.attempt += 1;
        match outcome {
            Ok(output) => {
                if self.config.cache_capacity > 0 {
                    if let Some(key) = job.serve_key {
                        self.cache.insert(key, Arc::new(output.clone()));
                    }
                }
                if let Some(dk) = job.dedup_key {
                    if let Some(dups) = parked.remove(&dk) {
                        for dup in dups {
                            self.stats.merged_jobs += 1;
                            let report = JobReport {
                                output: output.clone(),
                                attempts: job.attempt,
                                degradations: job.degradations.clone(),
                                backend: job.plan.backend,
                                path: job.plan.path,
                                rewrite: job.plan.rewrite.clone(),
                                predicted_ms: job.predicted_ms,
                                measured_ms: job.measured_ms,
                            };
                            self.finish(dup.id, Ok(report));
                        }
                    }
                }
                let report = Self::report_for(&job, output);
                self.finish(job.id, Ok(report));
            }
            Err(SimError::Cancelled) => self.fail(job, SimError::Cancelled, parked),
            Err(err @ SimError::DeadlineExceeded { .. }) => self.fail(job, err, parked),
            Err(err @ SimError::BudgetExhausted(_)) => {
                // retrying the same plan exhausts the same budget —
                // degrade immediately
                self.degrade_or_fail(job, err, parked)
            }
            Err(err) => {
                if self.config.retry.should_retry(job.rung_retries) {
                    let backoff = self.config.retry.backoff_ms(job.rung_retries);
                    job.rung_retries += 1;
                    self.stats.retries += 1;
                    job.not_before_ms = self.clock.now_ms().saturating_add(backoff);
                    self.requeue(job, parked);
                } else {
                    self.degrade_or_fail(job, err, parked);
                }
            }
        }
    }

    /// Steps the job one rung down the degradation ladder, or settles
    /// it with `cause` at the bottom.
    fn degrade_or_fail(
        &mut self,
        mut job: PendingJob,
        cause: SimError,
        parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>,
    ) {
        match degrade(&job.plan, &self.config.planner) {
            Some(next) => {
                self.stats.degradations += 1;
                job.degradations.push(format!(
                    "{}/{} -> {}/{}: {}",
                    job.plan.backend.name(),
                    job.plan.path,
                    next.backend.name(),
                    next.path,
                    cause
                ));
                job.plan = next;
                job.rung_retries = 0;
                // Re-key: results from the fallback plan must never be
                // cached under the original plan's fingerprint.
                job.serve_key = key_for(
                    &job.kind,
                    &job.plan,
                    &job.resolved,
                    job.seed,
                    self.config.degraded_shots,
                );
                job.not_before_ms = self.clock.now_ms();
                self.requeue(job, parked);
            }
            None => self.fail(job, cause, parked),
        }
    }

    /// Re-admits a job (and its parked duplicates) to the queue,
    /// bypassing the submission bound — an accepted job is never
    /// dropped by backpressure.
    fn requeue(&mut self, job: PendingJob, parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>) {
        let dedup_key = job.dedup_key;
        lock(&self.running).remove(&job.id);
        self.queue.push_back(job);
        if let Some(dk) = dedup_key {
            if let Some(dups) = parked.remove(&dk) {
                for dup in dups {
                    lock(&self.running).remove(&dup.id);
                    self.queue.push_back(dup);
                }
            }
        }
    }

    /// Settles a job and its parked duplicates with a terminal error.
    fn fail(
        &mut self,
        job: PendingJob,
        err: SimError,
        parked: &mut FxHashMap<CacheKey, Vec<PendingJob>>,
    ) {
        if let Some(dk) = job.dedup_key {
            if let Some(dups) = parked.remove(&dk) {
                for dup in dups {
                    self.finish(dup.id, Err(err.clone()));
                }
            }
        }
        self.finish(job.id, Err(err));
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use bgls_circuit::{Gate, Operation, Qubit};
    use bgls_core::ManualClock;

    fn q(i: u32) -> Qubit {
        Qubit(i)
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![q(0), q(1)]).unwrap());
        c.push(Operation::measure(vec![q(0), q(1)], "m").unwrap());
        c
    }

    fn histogram_of(report: JobReport) -> Arc<RunResult> {
        match report.output {
            JobOutput::Histogram(r) => r,
            JobOutput::Expectation(_) => panic!("expected histogram"),
        }
    }

    #[test]
    fn seeded_requests_hit_the_cache_bit_identically() {
        let mut svc = SimulationService::with_defaults();
        let a = svc
            .submit(SimRequest::histogram(bell(), 200).with_seed(9))
            .unwrap();
        svc.run_all();
        let first = histogram_of(svc.take_result(a).unwrap().unwrap());
        let b = svc
            .submit(SimRequest::histogram(bell(), 200).with_seed(9))
            .unwrap();
        svc.run_all();
        let second = histogram_of(svc.take_result(b).unwrap().unwrap());
        assert_eq!(svc.cache_stats().hits, 1);
        assert_eq!(first.histogram("m"), second.histogram("m"));
        // A cache hit hands out the same allocation, not a re-run.
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn unseeded_requests_bypass_the_cache() {
        let mut svc = SimulationService::with_defaults();
        svc.submit(SimRequest::histogram(bell(), 50)).unwrap();
        svc.submit(SimRequest::histogram(bell(), 50)).unwrap();
        svc.run_all();
        assert_eq!(svc.cache_stats().hits, 0);
        assert_eq!(svc.stats().completed, 2);
    }

    #[test]
    fn duplicate_requests_in_one_batch_simulate_once() {
        let mut svc = SimulationService::with_defaults();
        let ids: Vec<JobId> = (0..6)
            .map(|_| {
                svc.submit(SimRequest::histogram(bell(), 100).with_seed(3))
                    .unwrap()
            })
            .collect();
        svc.run_all();
        assert_eq!(svc.stats().simulated_jobs, 1);
        let outs: Vec<Arc<RunResult>> = ids
            .into_iter()
            .map(|id| histogram_of(svc.take_result(id).unwrap().unwrap()))
            .collect();
        for o in &outs[1..] {
            assert!(Arc::ptr_eq(&outs[0], o));
        }
    }

    #[test]
    fn merged_batches_match_standalone_runs() {
        // Mixed traffic with distinct seeds merges into one run_batch
        // fan-out; every entry must equal its standalone execution.
        let mut svc = SimulationService::with_defaults();
        let ids: Vec<(JobId, u64)> = (0..5u64)
            .map(|s| {
                let id = svc
                    .submit(SimRequest::histogram(bell(), 150).with_seed(s))
                    .unwrap();
                (id, s)
            })
            .collect();
        svc.run_all();
        assert!(svc.stats().merged_jobs >= 4);
        for (id, seed) in ids {
            let got = histogram_of(svc.take_result(id).unwrap().unwrap());
            let standalone = crate::plan_and_run(&bell(), 150, Some(seed))
                .unwrap()
                .result;
            assert_eq!(got.histogram("m"), standalone.histogram("m"), "seed {seed}");
        }
    }

    #[test]
    fn expectation_requests_merge_into_one_sweep_and_cache() {
        let mut base = Circuit::new();
        base.push(
            Operation::gate(Gate::Ry(bgls_circuit::Param::symbol("theta")), vec![q(0)]).unwrap(),
        );
        let obs: PauliSum = "Z0".parse().unwrap();
        let mut svc = SimulationService::with_defaults();
        let thetas = [0.0f64, 0.7, 1.4, 2.1];
        let ids: Vec<JobId> = thetas
            .iter()
            .map(|&t| {
                let mut r = ParamResolver::new();
                r.bind("theta", t);
                svc.submit(SimRequest::expectation(base.clone(), obs.clone()).with_resolver(r))
                    .unwrap()
            })
            .collect();
        svc.run_all();
        for (id, &t) in ids.iter().zip(&thetas) {
            let got = svc
                .take_result(*id)
                .unwrap()
                .unwrap()
                .expectation()
                .unwrap();
            assert!((got - t.cos()).abs() < 1e-10, "theta {t}: {got}");
        }
        // Same grid again: answered from cache without simulating.
        let before = svc.stats().simulated_jobs;
        let mut r = ParamResolver::new();
        r.bind("theta", 0.7);
        let id = svc
            .submit(SimRequest::expectation(base.clone(), obs.clone()).with_resolver(r))
            .unwrap();
        svc.run_all();
        assert_eq!(svc.stats().simulated_jobs, before);
        assert!(svc.cache_stats().hits >= 1);
        let got = svc.take_result(id).unwrap().unwrap().expectation().unwrap();
        assert!((got - 0.7f64.cos()).abs() < 1e-10);
    }

    #[test]
    fn the_queue_bound_rejects_overload() {
        let mut svc = SimulationService::new(ServiceConfig {
            max_queue: 2,
            ..ServiceConfig::default()
        });
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
        assert!(matches!(
            svc.submit(SimRequest::histogram(bell(), 10)),
            Err(SimError::Invalid(_))
        ));
        svc.run_all();
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
    }

    #[test]
    fn infeasible_circuits_are_rejected_at_submission() {
        // 30 qubits of H dust around a Toffoli, but only one *live*
        // qubit cone: every measured qubit is entangled with at most
        // q0..q2.
        let mut wide = Circuit::new();
        for i in 0..30u32 {
            wide.push(Operation::gate(Gate::H, vec![q(i)]).unwrap());
        }
        wide.push(Operation::gate(Gate::Ccx, vec![q(0), q(1), q(2)]).unwrap());
        wide.push(Operation::measure(vec![q(0)], "m").unwrap());
        // Pipeline off: 30 qubits with an arity-3 gate fits nothing.
        let mut svc = SimulationService::new(ServiceConfig {
            planner: PlannerConfig {
                optimize: None,
                ..PlannerConfig::default()
            },
            ..ServiceConfig::default()
        });
        assert!(matches!(
            svc.submit(SimRequest::histogram(wide.clone(), 10)),
            Err(SimError::Unsupported(_))
        ));
        // Pipeline on: lightcone pruning drops the 27 dead H gates, and
        // the surviving 3-qubit cone routes dense. Genuinely infeasible
        // circuits — a *live* wide Toffoli cone — are still rejected.
        let mut svc = SimulationService::with_defaults();
        assert!(svc.submit(SimRequest::histogram(wide, 10)).is_ok());
        let mut live = Circuit::new();
        for i in 0..30u32 {
            live.push(Operation::gate(Gate::T, vec![q(i)]).unwrap());
        }
        for i in 2..30u32 {
            live.push(Operation::gate(Gate::Ccx, vec![q(i - 2), q(i - 1), q(i)]).unwrap());
        }
        live.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        assert!(matches!(
            svc.submit(SimRequest::histogram(live, 10)),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn status_distinguishes_pending_done_and_unknown() {
        let mut svc = SimulationService::with_defaults();
        let id = svc
            .submit(SimRequest::histogram(bell(), 20).with_seed(1))
            .unwrap();
        assert_eq!(svc.status(id), JobStatus::Pending);
        assert_eq!(svc.status(JobId(999)), JobStatus::Unknown);
        svc.run_all();
        assert_eq!(svc.status(id), JobStatus::Done);
        svc.take_result(id).unwrap().unwrap();
        assert_eq!(svc.status(id), JobStatus::Unknown, "no tombstones");
    }

    #[test]
    fn cancellation_settles_queued_jobs_with_a_typed_error() {
        let mut svc = SimulationService::with_defaults();
        let keep = svc
            .submit(SimRequest::histogram(bell(), 20).with_seed(1))
            .unwrap();
        let drop_ = svc
            .submit(SimRequest::histogram(bell(), 20).with_seed(2))
            .unwrap();
        assert!(svc.cancel(drop_));
        assert!(!svc.cancel(drop_), "already cancelled");
        assert!(!svc.cancel(JobId(999)), "unknown id");
        svc.run_all();
        assert!(svc.take_result(keep).unwrap().is_ok());
        assert!(matches!(
            svc.take_result(drop_),
            Some(Err(SimError::Cancelled))
        ));
        assert_eq!(svc.stats().cancellations, 1);
    }

    #[test]
    fn deadlines_are_enforced_at_batch_boundaries() {
        let clock = ManualClock::shared();
        let mut svc = SimulationService::with_clock(
            ServiceConfig {
                batch: BatchPolicy {
                    min_batch: 1,
                    max_batch: 1,
                    ..BatchPolicy::default()
                },
                fault: Some(FaultPlan {
                    latency_ms: 10,
                    ..FaultPlan::default()
                }),
                ..ServiceConfig::default()
            },
            clock.clone(),
        );
        let first = svc
            .submit(
                SimRequest::histogram(bell(), 10)
                    .with_seed(1)
                    .with_deadline_ms(5),
            )
            .unwrap();
        let second = svc
            .submit(
                SimRequest::histogram(bell(), 10)
                    .with_seed(2)
                    .with_deadline_ms(5),
            )
            .unwrap();
        // batch 1 executes `first` on time, but the injected 10 ms of
        // latency pushes the manual clock past `second`'s deadline
        svc.run_all();
        assert!(svc.take_result(first).unwrap().is_ok());
        assert!(matches!(
            svc.take_result(second),
            Some(Err(SimError::DeadlineExceeded { budget_ms: 5 }))
        ));
        assert_eq!(svc.stats().deadline_misses, 1);
    }
}

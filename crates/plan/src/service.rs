//! The batch simulation service: a queue, a planner, a batcher, and a
//! deterministic result cache.
//!
//! [`SimulationService`] is the host loop the planner was built for.
//! Requests arrive via [`SimulationService::submit`] (which plans them
//! immediately — infeasible circuits are rejected at the door), sit in
//! a bounded FIFO queue, and are drained by
//! [`SimulationService::run_pending`] in admission-controlled batches:
//!
//! 1. Each drained job first consults the [`ResultCache`]. A seeded
//!    simulation is a pure function of
//!    `(circuit, backend, options, seed, repetitions)`, so a hit is
//!    *bit-identical* to re-running — not an approximation.
//! 2. Cache misses are deduplicated (a hot burst of identical requests
//!    simulates once) and merged into compatibility groups — same plan
//!    fingerprint, width, and shot count for histograms; same base
//!    circuit and observable for expectation sweeps. Each group becomes
//!    ONE engine fan-out: [`Simulator::run_batch`] for histograms
//!    (every entry under exactly its own seed, so merging never changes
//!    any result) or [`Simulator::expectation_sweep`] for expectations.
//! 3. Batch size is a setpoint-driven knob: a [`BatchController`] PI
//!    loop grows batches while service latency is under target and
//!    shrinks them when it overshoots.

use crate::planner::{plan, Deliverable, ExecutionPlan};
use crate::PlannerConfig;
use bgls_backend::SimulatorExt;
use bgls_circuit::{Circuit, ParamResolver, PauliSum};
use bgls_core::BatchPolicy;
use bgls_core::{
    BatchController, CacheKey, CacheStats, ResultCache, RunResult, SimError, Simulator,
};
use bgls_linalg::{FxHashMap, FxHasher};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`SimulationService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Budgets for the per-request planner.
    pub planner: PlannerConfig,
    /// Result-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Maximum queued (submitted, unexecuted) jobs; further submissions
    /// are rejected with [`SimError::Invalid`].
    pub max_queue: usize,
    /// Seed applied to histogram requests that do not carry their own.
    /// `None` leaves such requests unseeded — fresh entropy every run,
    /// and therefore uncacheable.
    pub default_seed: Option<u64>,
    /// Setpoint and gains of the batch admission controller.
    pub batch: BatchPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            planner: PlannerConfig::default(),
            cache_capacity: 1024,
            max_queue: 4096,
            default_seed: None,
            batch: BatchPolicy::default(),
        }
    }
}

/// Handle to a submitted job; redeem with
/// [`SimulationService::take_result`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

/// A completed job's payload.
#[derive(Clone, Debug)]
pub enum JobOutput {
    /// Sampled histogram result (shared — cache hits hand out the same
    /// allocation).
    Histogram(Arc<RunResult>),
    /// Exact expectation value.
    Expectation(f64),
}

impl JobOutput {
    /// The run result, when this is a histogram job.
    pub fn histogram(&self) -> Option<&RunResult> {
        match self {
            JobOutput::Histogram(r) => Some(r),
            JobOutput::Expectation(_) => None,
        }
    }

    /// The value, when this is an expectation job.
    pub fn expectation(&self) -> Option<f64> {
        match self {
            JobOutput::Histogram(_) => None,
            JobOutput::Expectation(v) => Some(*v),
        }
    }
}

/// One simulation request.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// The circuit to simulate (possibly parameterized when `resolver`
    /// is set).
    pub circuit: Circuit,
    /// Parameter bindings applied at submission.
    pub resolver: Option<ParamResolver>,
    /// What to compute.
    pub deliverable: Deliverable,
    /// Explicit seed; falls back to [`ServiceConfig::default_seed`].
    pub seed: Option<u64>,
}

impl SimRequest {
    /// A histogram request over `repetitions` shots.
    pub fn histogram(circuit: Circuit, repetitions: u64) -> Self {
        SimRequest {
            circuit,
            resolver: None,
            deliverable: Deliverable::Histogram { repetitions },
            seed: None,
        }
    }

    /// An exact-expectation request.
    pub fn expectation(circuit: Circuit, observable: PauliSum) -> Self {
        SimRequest {
            circuit,
            resolver: None,
            deliverable: Deliverable::Expectation { observable },
            seed: None,
        }
    }

    /// Attaches an explicit seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attaches parameter bindings, resolved at submission.
    pub fn with_resolver(mut self, resolver: ParamResolver) -> Self {
        self.resolver = Some(resolver);
        self
    }
}

/// Service counters (cache counters live in
/// [`SimulationService::cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted by [`SimulationService::submit`].
    pub submitted: u64,
    /// Jobs finished successfully (including cache hits).
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Drain batches executed.
    pub batches: u64,
    /// Jobs that shared an engine fan-out with at least one other job
    /// (the batching win).
    pub merged_jobs: u64,
    /// Distinct simulations actually executed (after cache hits and
    /// in-batch deduplication).
    pub simulated_jobs: u64,
}

struct PendingJob {
    id: u64,
    /// Unresolved circuit — the base of `expectation_sweep` merging.
    base: Circuit,
    resolver: ParamResolver,
    /// Resolver already applied; what histogram jobs execute.
    resolved: Circuit,
    plan: ExecutionPlan,
    seed: Option<u64>,
    key: Option<CacheKey>,
    kind: JobKind,
}

enum JobKind {
    Histogram { repetitions: u64 },
    Expectation { observable: PauliSum, obs_fp: u64 },
}

/// The planner-driven batch simulation host. Single-threaded by design:
/// `submit` enqueues, [`SimulationService::run_pending`] drains — the
/// parallelism lives inside the merged engine fan-outs (Rayon), which
/// keeps the whole service deterministic for seeded traffic.
pub struct SimulationService {
    config: ServiceConfig,
    queue: VecDeque<PendingJob>,
    done: FxHashMap<u64, Result<JobOutput, SimError>>,
    cache: ResultCache<JobOutput>,
    controller: BatchController,
    next_id: u64,
    stats: ServiceStats,
}

impl SimulationService {
    /// A service over `config`.
    pub fn new(config: ServiceConfig) -> Self {
        let cache = ResultCache::new(config.cache_capacity);
        let controller = BatchController::new(config.batch);
        SimulationService {
            config,
            queue: VecDeque::new(),
            done: FxHashMap::default(),
            cache,
            controller,
            next_id: 0,
            stats: ServiceStats::default(),
        }
    }

    /// A service with default configuration.
    pub fn with_defaults() -> Self {
        SimulationService::new(ServiceConfig::default())
    }

    /// Plans and enqueues a request. Infeasible or malformed requests
    /// are rejected here, synchronously, rather than failing later in a
    /// batch; a full queue rejects with [`SimError::Invalid`]
    /// (admission control — the queue bound is the service's memory
    /// ceiling).
    pub fn submit(&mut self, request: SimRequest) -> Result<JobId, SimError> {
        if self.queue.len() >= self.config.max_queue {
            return Err(SimError::Invalid(format!(
                "service queue is full ({} jobs); drain with run_pending before submitting more",
                self.queue.len()
            )));
        }
        let resolver = request.resolver.unwrap_or_default();
        let resolved = request.circuit.resolve(&resolver);
        let plan = plan(&resolved, &request.deliverable, &self.config.planner)?;
        let seed = request.seed.or(self.config.default_seed);
        let (kind, key) = match request.deliverable {
            Deliverable::Histogram { repetitions } => {
                // Only seeded histograms are reproducible, hence cacheable.
                let key = seed.map(|s| CacheKey {
                    circuit: resolved.structural_hash(),
                    backend: plan.fingerprint(),
                    seed: s,
                    repetitions,
                    deliverable: 0,
                });
                (JobKind::Histogram { repetitions }, key)
            }
            Deliverable::Expectation { observable } => {
                // The expectation walk is deterministic: cacheable
                // regardless of seeding.
                let obs_fp = hash_str(&observable.to_string());
                let key = Some(CacheKey {
                    circuit: resolved.structural_hash(),
                    backend: plan.fingerprint(),
                    seed: 0,
                    repetitions: 0,
                    deliverable: obs_fp,
                });
                (JobKind::Expectation { observable, obs_fp }, key)
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push_back(PendingJob {
            id,
            base: request.circuit,
            resolver,
            resolved,
            plan,
            seed,
            key,
            kind,
        });
        self.stats.submitted += 1;
        Ok(JobId(id))
    }

    /// Drains and executes one admission-controlled batch from the
    /// queue; returns the number of jobs completed (ok or err). Call in
    /// a loop — or use [`SimulationService::run_all`] — to drain fully.
    pub fn run_pending(&mut self) -> usize {
        if self.queue.is_empty() {
            return 0;
        }
        let take = self.controller.batch_size().min(self.queue.len());
        let batch: Vec<PendingJob> = self.queue.drain(..take).collect();
        let started = Instant::now();
        let completed = self.execute_batch(batch);
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        self.controller.observe(take, elapsed_ms);
        self.stats.batches += 1;
        completed
    }

    /// Drains the whole queue; returns total jobs completed.
    pub fn run_all(&mut self) -> usize {
        let mut total = 0;
        while !self.queue.is_empty() {
            total += self.run_pending();
        }
        total
    }

    /// Removes and returns a finished job's result; `None` while the
    /// job is still queued (or the id is unknown/already taken).
    pub fn take_result(&mut self, id: JobId) -> Option<Result<JobOutput, SimError>> {
        self.done.remove(&id.0)
    }

    /// Jobs waiting to execute.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The controller's current batch size (the PI loop's actuation).
    pub fn batch_size(&self) -> usize {
        self.controller.batch_size()
    }

    fn finish(&mut self, id: u64, result: Result<JobOutput, SimError>) {
        match &result {
            Ok(_) => self.stats.completed += 1,
            Err(_) => self.stats.failed += 1,
        }
        self.done.insert(id, result);
    }

    fn execute_batch(&mut self, batch: Vec<PendingJob>) -> usize {
        let mut completed = 0usize;
        // Phase 1: cache lookups, and in-batch dedup of identical keys —
        // a group key maps to the first job carrying it, followers just
        // receive a copy of its output.
        let mut misses: Vec<PendingJob> = Vec::new();
        let mut followers: FxHashMap<CacheKey, Vec<u64>> = FxHashMap::default();
        let mut leaders: FxHashMap<CacheKey, ()> = FxHashMap::default();
        // Memoization (cache lookups AND in-batch dedup) is one switch:
        // capacity 0 means every request simulates, the uncached
        // baseline the throughput bench contrasts against.
        let memoize = self.config.cache_capacity > 0;
        for job in batch {
            if let Some(key) = job.key {
                if memoize {
                    if let Some(hit) = self.cache.get(&key) {
                        self.finish(job.id, Ok((*hit).clone()));
                        completed += 1;
                        continue;
                    }
                    if leaders.contains_key(&key) {
                        followers.entry(key).or_default().push(job.id);
                        completed += 1; // resolved when the leader finishes
                        continue;
                    }
                    leaders.insert(key, ());
                }
            }
            misses.push(job);
            completed += 1;
        }

        // Phase 2: group misses into compatible engine fan-outs.
        let mut hist_groups: FxHashMap<(u64, usize, u64), Vec<PendingJob>> = FxHashMap::default();
        let mut exp_groups: FxHashMap<(u64, u64, u64), Vec<PendingJob>> = FxHashMap::default();
        for job in misses {
            match &job.kind {
                JobKind::Histogram { repetitions } => {
                    let group = (
                        job.plan.fingerprint(),
                        job.resolved.num_qubits().max(1),
                        *repetitions,
                    );
                    hist_groups.entry(group).or_default().push(job);
                }
                JobKind::Expectation { obs_fp, .. } => {
                    let group = (job.plan.fingerprint(), job.base.structural_hash(), *obs_fp);
                    exp_groups.entry(group).or_default().push(job);
                }
            }
        }

        for ((_, n, repetitions), group) in hist_groups {
            self.run_histogram_group(n, repetitions, group, &followers);
        }
        for (_, group) in exp_groups {
            self.run_expectation_group(group, &followers);
        }
        completed
    }

    /// One merged `run_batch` fan-out: every entry executes under its
    /// own seed, so each job's histogram is bit-identical to a
    /// standalone [`ExecutionPlan::run`] — batch composition never
    /// leaks into results.
    fn run_histogram_group(
        &mut self,
        n: usize,
        repetitions: u64,
        group: Vec<PendingJob>,
        followers: &FxHashMap<CacheKey, Vec<u64>>,
    ) {
        let mut options = group[0].plan.options.clone();
        options.parallel_sweep = true; // fan the merged batch across threads
        let sim = Simulator::for_backend(group[0].plan.backend, n, options);
        let jobs: Vec<(Circuit, Option<u64>)> =
            group.iter().map(|j| (j.resolved.clone(), j.seed)).collect();
        let merged = group.len() > 1;
        self.stats.simulated_jobs += group.len() as u64;
        match sim.run_batch(&jobs, repetitions) {
            Ok(results) => {
                for (job, result) in group.into_iter().zip(results) {
                    let output = JobOutput::Histogram(Arc::new(result));
                    if merged {
                        self.stats.merged_jobs += 1;
                    }
                    self.settle(job, Ok(output), followers);
                }
            }
            Err(_) => {
                // A merged fan-out reports only its first error; re-run
                // entries individually (cold path) so each job gets its
                // own verdict.
                for job in group {
                    let outcome = sim
                        .clone()
                        .with_options({
                            let mut o = job.plan.options.clone();
                            o.seed = job.seed;
                            o
                        })
                        .run(&job.resolved, repetitions)
                        .map(|r| JobOutput::Histogram(Arc::new(r)));
                    self.settle(job, outcome, followers);
                }
            }
        }
    }

    /// One merged `expectation_sweep` fan-out over the group's shared
    /// base circuit: entries differ only in their parameter bindings.
    /// The walk is deterministic, so merging is trivially sound.
    fn run_expectation_group(
        &mut self,
        group: Vec<PendingJob>,
        followers: &FxHashMap<CacheKey, Vec<u64>>,
    ) {
        let observable = match &group[0].kind {
            JobKind::Expectation { observable, .. } => observable.clone(),
            JobKind::Histogram { .. } => unreachable!("histogram job in expectation group"),
        };
        let n = group
            .iter()
            .map(|j| j.resolved.num_qubits())
            .max()
            .unwrap_or(1)
            .max(1);
        let mut options = group[0].plan.options.clone();
        options.parallel_sweep = true;
        let sim = Simulator::for_backend(group[0].plan.backend, n, options);
        let base = group[0].base.clone();
        let resolvers: Vec<ParamResolver> = group.iter().map(|j| j.resolver.clone()).collect();
        let merged = group.len() > 1;
        self.stats.simulated_jobs += group.len() as u64;
        match sim.expectation_sweep(&base, &resolvers, &observable) {
            Ok(values) => {
                for (job, value) in group.into_iter().zip(values) {
                    if merged {
                        self.stats.merged_jobs += 1;
                    }
                    self.settle(job, Ok(JobOutput::Expectation(value)), followers);
                }
            }
            Err(_) => {
                for job in group {
                    let outcome = sim
                        .expectation_value(&job.resolved, &observable)
                        .map(JobOutput::Expectation);
                    self.settle(job, outcome, followers);
                }
            }
        }
    }

    /// Records a job's outcome, feeds the cache, and fans the output
    /// out to in-batch duplicate requests.
    fn settle(
        &mut self,
        job: PendingJob,
        outcome: Result<JobOutput, SimError>,
        followers: &FxHashMap<CacheKey, Vec<u64>>,
    ) {
        if let (Some(key), Ok(output)) = (job.key, &outcome) {
            self.cache.insert(key, Arc::new(output.clone()));
            if let Some(ids) = followers.get(&key) {
                for &id in ids {
                    self.stats.merged_jobs += 1;
                    self.finish(id, Ok(output.clone()));
                }
            }
        } else if let (Some(key), Err(_)) = (job.key, &outcome) {
            // Followers of a failed leader re-fail with the same error
            // text (SimError is Clone).
            if let Some(ids) = followers.get(&key) {
                for &id in ids {
                    self.finish(id, outcome.clone());
                }
            }
        }
        self.finish(job.id, outcome);
    }
}

fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    s.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Gate, Operation, Qubit};

    fn q(i: u32) -> Qubit {
        Qubit(i)
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![q(0), q(1)]).unwrap());
        c.push(Operation::measure(vec![q(0), q(1)], "m").unwrap());
        c
    }

    #[test]
    fn seeded_requests_hit_the_cache_bit_identically() {
        let mut svc = SimulationService::with_defaults();
        let a = svc
            .submit(SimRequest::histogram(bell(), 200).with_seed(9))
            .unwrap();
        svc.run_all();
        let first = match svc.take_result(a).unwrap().unwrap() {
            JobOutput::Histogram(r) => r,
            _ => panic!("expected histogram"),
        };
        let b = svc
            .submit(SimRequest::histogram(bell(), 200).with_seed(9))
            .unwrap();
        svc.run_all();
        let second = match svc.take_result(b).unwrap().unwrap() {
            JobOutput::Histogram(r) => r,
            _ => panic!("expected histogram"),
        };
        assert_eq!(svc.cache_stats().hits, 1);
        assert_eq!(first.histogram("m"), second.histogram("m"));
        // A cache hit hands out the same allocation, not a re-run.
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn unseeded_requests_bypass_the_cache() {
        let mut svc = SimulationService::with_defaults();
        svc.submit(SimRequest::histogram(bell(), 50)).unwrap();
        svc.submit(SimRequest::histogram(bell(), 50)).unwrap();
        svc.run_all();
        assert_eq!(svc.cache_stats().hits, 0);
        assert_eq!(svc.stats().completed, 2);
    }

    #[test]
    fn duplicate_requests_in_one_batch_simulate_once() {
        let mut svc = SimulationService::with_defaults();
        let ids: Vec<JobId> = (0..6)
            .map(|_| {
                svc.submit(SimRequest::histogram(bell(), 100).with_seed(3))
                    .unwrap()
            })
            .collect();
        svc.run_all();
        assert_eq!(svc.stats().simulated_jobs, 1);
        let outs: Vec<Arc<RunResult>> = ids
            .into_iter()
            .map(|id| match svc.take_result(id).unwrap().unwrap() {
                JobOutput::Histogram(r) => r,
                _ => panic!("expected histogram"),
            })
            .collect();
        for o in &outs[1..] {
            assert!(Arc::ptr_eq(&outs[0], o));
        }
    }

    #[test]
    fn merged_batches_match_standalone_runs() {
        // Mixed traffic with distinct seeds merges into one run_batch
        // fan-out; every entry must equal its standalone execution.
        let mut svc = SimulationService::with_defaults();
        let ids: Vec<(JobId, u64)> = (0..5u64)
            .map(|s| {
                let id = svc
                    .submit(SimRequest::histogram(bell(), 150).with_seed(s))
                    .unwrap();
                (id, s)
            })
            .collect();
        svc.run_all();
        assert!(svc.stats().merged_jobs >= 4);
        for (id, seed) in ids {
            let got = match svc.take_result(id).unwrap().unwrap() {
                JobOutput::Histogram(r) => r,
                _ => panic!("expected histogram"),
            };
            let standalone = crate::plan_and_run(&bell(), 150, Some(seed))
                .unwrap()
                .result;
            assert_eq!(got.histogram("m"), standalone.histogram("m"), "seed {seed}");
        }
    }

    #[test]
    fn expectation_requests_merge_into_one_sweep_and_cache() {
        let mut base = Circuit::new();
        base.push(
            Operation::gate(Gate::Ry(bgls_circuit::Param::symbol("theta")), vec![q(0)]).unwrap(),
        );
        let obs: PauliSum = "Z0".parse().unwrap();
        let mut svc = SimulationService::with_defaults();
        let thetas = [0.0f64, 0.7, 1.4, 2.1];
        let ids: Vec<JobId> = thetas
            .iter()
            .map(|&t| {
                let mut r = ParamResolver::new();
                r.bind("theta", t);
                svc.submit(SimRequest::expectation(base.clone(), obs.clone()).with_resolver(r))
                    .unwrap()
            })
            .collect();
        svc.run_all();
        for (id, &t) in ids.iter().zip(&thetas) {
            let got = svc
                .take_result(*id)
                .unwrap()
                .unwrap()
                .expectation()
                .unwrap();
            assert!((got - t.cos()).abs() < 1e-10, "theta {t}: {got}");
        }
        // Same grid again: answered from cache without simulating.
        let before = svc.stats().simulated_jobs;
        let mut r = ParamResolver::new();
        r.bind("theta", 0.7);
        let id = svc
            .submit(SimRequest::expectation(base.clone(), obs.clone()).with_resolver(r))
            .unwrap();
        svc.run_all();
        assert_eq!(svc.stats().simulated_jobs, before);
        assert!(svc.cache_stats().hits >= 1);
        let got = svc.take_result(id).unwrap().unwrap().expectation().unwrap();
        assert!((got - 0.7f64.cos()).abs() < 1e-10);
    }

    #[test]
    fn the_queue_bound_rejects_overload() {
        let mut svc = SimulationService::new(ServiceConfig {
            max_queue: 2,
            ..ServiceConfig::default()
        });
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
        assert!(matches!(
            svc.submit(SimRequest::histogram(bell(), 10)),
            Err(SimError::Invalid(_))
        ));
        svc.run_all();
        svc.submit(SimRequest::histogram(bell(), 10)).unwrap();
    }

    #[test]
    fn infeasible_circuits_are_rejected_at_submission() {
        let mut wide = Circuit::new();
        for i in 0..30u32 {
            wide.push(Operation::gate(Gate::H, vec![q(i)]).unwrap());
        }
        wide.push(Operation::gate(Gate::Ccx, vec![q(0), q(1), q(2)]).unwrap());
        wide.push(Operation::measure(vec![q(0)], "m").unwrap());
        let mut svc = SimulationService::with_defaults();
        assert!(matches!(
            svc.submit(SimRequest::histogram(wide, 10)),
            Err(SimError::Unsupported(_))
        ));
    }
}

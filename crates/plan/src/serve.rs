//! The async front door: a worker pool over the batch service.
//!
//! [`ServiceHandle`] turns the single-threaded [`SimulationService`]
//! drain loop into a concurrent server. Submissions travel over a
//! *bounded* channel (backpressure is a typed rejection, never an
//! unbounded buffer) to a pool of worker threads that plan, batch,
//! execute, and publish results; callers redeem a [`Ticket`] with
//! [`ServiceHandle::wait`] whenever they please.
//!
//! The liveness contract: **every accepted ticket resolves, exactly
//! once** — to a [`JobReport`] or a typed [`SimError`] — no matter
//! what faults, panics, deadlines, cancellations, or shutdowns occur
//! in between. Workers never die: all job execution happens inside the
//! service's per-job `catch_unwind` failure domains, so a panicking
//! kernel costs one job one attempt, not a worker thread.
//!
//! Shutdown is two-flavored: [`ServiceHandle::shutdown`] stops intake
//! and drains everything in flight (including retry/degradation
//! chains); [`ServiceHandle::abort`] stops intake and fails all
//! unfinished work with [`SimError::Cancelled`]. Dropping the handle
//! aborts.

use crate::service::{
    lock, JobId, JobReport, JobStatus, ServiceConfig, ServiceStats, SimRequest, SimulationService,
};
use bgls_core::{Clock, SimError};
use bgls_linalg::FxHashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker blocks waiting for a submission before
/// re-checking the abort flag.
const IDLE_RECV_MS: u64 = 25;

/// Cap on how long a worker sleeps waiting out retry-backoff windows in
/// one hop (it re-checks for new arrivals in between).
const BACKOFF_NAP_CAP_MS: u64 = 50;

/// Configuration of the serving front door.
#[derive(Clone, Copy, Debug)]
pub struct ServePolicy {
    /// Worker threads draining the service.
    pub workers: usize,
    /// Bounded submission-channel depth; a full channel rejects
    /// [`ServiceHandle::submit`] with [`SimError::Invalid`].
    pub queue_depth: usize,
    /// `true`: [`ServiceHandle::shutdown`] drains all in-flight work
    /// before returning. `false`: shutdown behaves like
    /// [`ServiceHandle::abort`].
    pub drain_on_shutdown: bool,
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy {
            workers: 2,
            queue_depth: 256,
            drain_on_shutdown: true,
        }
    }
}

/// Claim check for a submitted request; redeem with
/// [`ServiceHandle::wait`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

enum SlotState {
    /// In the submission channel, not yet planned.
    Queued,
    /// Planned and queued (or executing) inside the service.
    Submitted(JobId),
    /// Finished; result parked for the caller.
    Done(Result<JobReport, SimError>),
}

type Msg = (u64, SimRequest);

struct Shared {
    service: Mutex<SimulationService>,
    /// Ticket id → lifecycle state. Guarded by its own mutex (paired
    /// with `done_cv`); lock order is always service → slots → jobmap.
    slots: Mutex<FxHashMap<u64, SlotState>>,
    /// Service job id → ticket id, for publishing finished results.
    jobmap: Mutex<FxHashMap<u64, u64>>,
    done_cv: Condvar,
    abort: AtomicBool,
    clock: Arc<dyn Clock>,
}

/// Concurrent, fault-tolerant front door over a [`SimulationService`].
pub struct ServiceHandle {
    shared: Arc<Shared>,
    sender: Option<SyncSender<Msg>>,
    workers: Vec<JoinHandle<()>>,
    next_ticket: AtomicU64,
    drain_on_shutdown: bool,
}

impl ServiceHandle {
    /// Starts the worker pool over a fresh service built from `config`.
    pub fn start(config: ServiceConfig, policy: ServePolicy) -> Result<ServiceHandle, SimError> {
        if policy.workers == 0 {
            return Err(SimError::Invalid(
                "serving policy needs at least one worker".into(),
            ));
        }
        if policy.queue_depth == 0 {
            return Err(SimError::Invalid(
                "serving policy needs a submission queue depth of at least 1".into(),
            ));
        }
        let service = SimulationService::new(config);
        let clock = service.clock();
        let shared = Arc::new(Shared {
            service: Mutex::new(service),
            slots: Mutex::new(FxHashMap::default()),
            jobmap: Mutex::new(FxHashMap::default()),
            done_cv: Condvar::new(),
            abort: AtomicBool::new(false),
            clock,
        });
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Msg>(policy.queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let mut workers = Vec::with_capacity(policy.workers);
        for i in 0..policy.workers {
            let shared_i = Arc::clone(&shared);
            let receiver_i = Arc::clone(&receiver);
            let handle = std::thread::Builder::new()
                .name(format!("bgls-serve-{i}"))
                .spawn(move || worker_loop(&shared_i, &receiver_i))
                .map_err(|e| SimError::Invalid(format!("failed to spawn worker: {e}")))?;
            workers.push(handle);
        }
        Ok(ServiceHandle {
            shared,
            sender: Some(sender),
            workers,
            next_ticket: AtomicU64::new(0),
            drain_on_shutdown: policy.drain_on_shutdown,
        })
    }

    /// Starts with default service configuration and serving policy.
    pub fn with_defaults() -> Result<ServiceHandle, SimError> {
        ServiceHandle::start(ServiceConfig::default(), ServePolicy::default())
    }

    /// Submits a request. Non-blocking: a full submission channel or a
    /// shut-down pool rejects with [`SimError::Invalid`] instead of
    /// waiting. An accepted ticket is guaranteed to resolve.
    pub fn submit(&self, request: SimRequest) -> Result<Ticket, SimError> {
        let Some(sender) = &self.sender else {
            return Err(SimError::Invalid("the serving pool is shut down".into()));
        };
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        lock(&self.shared.slots).insert(ticket, SlotState::Queued);
        match sender.try_send((ticket, request)) {
            Ok(()) => Ok(Ticket(ticket)),
            Err(err) => {
                lock(&self.shared.slots).remove(&ticket);
                match err {
                    TrySendError::Full(_) => Err(SimError::Invalid(
                        "the serving submission queue is full; wait out some tickets first".into(),
                    )),
                    TrySendError::Disconnected(_) => {
                        Err(SimError::Invalid("the serving pool is shut down".into()))
                    }
                }
            }
        }
    }

    /// Blocks until the ticket resolves and removes its result. A
    /// second wait on the same ticket reports it unknown.
    pub fn wait(&self, ticket: Ticket) -> Result<JobReport, SimError> {
        let mut slots = lock(&self.shared.slots);
        loop {
            match slots.get(&ticket.0) {
                Some(SlotState::Done(_)) => match slots.remove(&ticket.0) {
                    Some(SlotState::Done(result)) => return result,
                    _ => unreachable!("slot vanished while holding the lock"),
                },
                None => {
                    return Err(SimError::Invalid(format!(
                        "unknown ticket {} (never submitted, or already waited)",
                        ticket.0
                    )))
                }
                Some(_) => {
                    slots = self
                        .shared
                        .done_cv
                        .wait(slots)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Like [`ServiceHandle::wait`], but gives up after `timeout_ms`,
    /// returning `None` with the ticket still live.
    pub fn wait_timeout(
        &self,
        ticket: Ticket,
        timeout_ms: u64,
    ) -> Option<Result<JobReport, SimError>> {
        let deadline = Duration::from_millis(timeout_ms);
        let mut waited = Duration::ZERO;
        let mut slots = lock(&self.shared.slots);
        loop {
            match slots.get(&ticket.0) {
                Some(SlotState::Done(_)) => match slots.remove(&ticket.0) {
                    Some(SlotState::Done(result)) => return Some(result),
                    _ => unreachable!("slot vanished while holding the lock"),
                },
                None => {
                    return Some(Err(SimError::Invalid(format!(
                        "unknown ticket {} (never submitted, or already waited)",
                        ticket.0
                    ))))
                }
                Some(_) => {
                    if waited >= deadline {
                        return None;
                    }
                    let step = (deadline - waited).min(Duration::from_millis(IDLE_RECV_MS));
                    let (guard, _) = self
                        .shared
                        .done_cv
                        .wait_timeout(slots, step)
                        .unwrap_or_else(PoisonError::into_inner);
                    slots = guard;
                    waited += step;
                }
            }
        }
    }

    /// Where the ticket currently is in its lifecycle.
    pub fn status(&self, ticket: Ticket) -> JobStatus {
        let job = {
            let slots = lock(&self.shared.slots);
            match slots.get(&ticket.0) {
                None => return JobStatus::Unknown,
                Some(SlotState::Done(_)) => return JobStatus::Done,
                Some(SlotState::Queued) => return JobStatus::Pending,
                Some(SlotState::Submitted(id)) => *id,
            }
        };
        match lock(&self.shared.service).status(job) {
            // finished inside the service but not yet published
            JobStatus::Unknown | JobStatus::Done => JobStatus::Done,
            live => live,
        }
    }

    /// Best-effort cancellation: a ticket still queued (in the channel
    /// or the service queue) resolves with [`SimError::Cancelled`];
    /// one already executing or finished is left alone. Returns whether
    /// the cancellation landed.
    pub fn cancel(&self, ticket: Ticket) -> bool {
        let job = {
            let mut slots = lock(&self.shared.slots);
            match slots.get(&ticket.0) {
                None | Some(SlotState::Done(_)) => return false,
                Some(SlotState::Queued) => {
                    // still in the channel: resolve here, the admitting
                    // worker will see the slot settled and skip it
                    slots.insert(ticket.0, SlotState::Done(Err(SimError::Cancelled)));
                    self.shared.done_cv.notify_all();
                    return true;
                }
                Some(SlotState::Submitted(id)) => *id,
            }
        };
        lock(&self.shared.service).cancel(job)
    }

    /// Snapshot of the underlying service counters.
    pub fn stats(&self) -> ServiceStats {
        lock(&self.shared.service).stats()
    }

    /// Stops intake and (per [`ServePolicy::drain_on_shutdown`]) drains
    /// every in-flight job — retries, degradations and all — before
    /// returning the final counters. Unredeemed tickets stay waitable
    /// until the handle is dropped.
    pub fn shutdown(mut self) -> ServiceStats {
        let drain = self.drain_on_shutdown;
        self.finish(drain)
    }

    /// Stops intake and fails all unfinished work with
    /// [`SimError::Cancelled`]; every outstanding ticket still
    /// resolves. Returns the final counters.
    pub fn abort(mut self) -> ServiceStats {
        self.finish(false)
    }

    fn finish(&mut self, drain: bool) -> ServiceStats {
        if !drain {
            self.shared.abort.store(true, Ordering::Release);
        }
        // Dropping the only sender disconnects the channel; draining
        // workers exit once the backlog is gone, aborting ones at the
        // next loop head.
        self.sender = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Settle everything the workers left behind (nothing in drain
        // mode; the whole backlog in abort mode).
        let finished = {
            let mut svc = lock(&self.shared.service);
            let ids: Vec<u64> = lock(&self.shared.jobmap).keys().copied().collect();
            for id in ids {
                svc.cancel(JobId(id));
            }
            svc.take_finished()
        };
        publish(&self.shared, finished);
        {
            let mut slots = lock(&self.shared.slots);
            for state in slots.values_mut() {
                if !matches!(state, SlotState::Done(_)) {
                    *state = SlotState::Done(Err(SimError::Cancelled));
                }
            }
        }
        self.shared.done_cv.notify_all();
        lock(&self.shared.service).stats()
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.finish(false);
        }
    }
}

/// Pulls a submission into the service and records the ticket → job
/// binding (or the planning error).
fn admit(shared: &Shared, (ticket, request): Msg) {
    {
        let slots = lock(&shared.slots);
        // skip tickets cancelled while still in the channel
        if !matches!(slots.get(&ticket), Some(SlotState::Queued)) {
            return;
        }
    }
    let submitted = lock(&shared.service).submit(request);
    let mut slots = lock(&shared.slots);
    match submitted {
        Ok(job) => {
            if matches!(slots.get(&ticket), Some(SlotState::Queued)) {
                slots.insert(ticket, SlotState::Submitted(job));
                lock(&shared.jobmap).insert(job.0, ticket);
            } else {
                // cancelled in the window between the two looks
                drop(slots);
                lock(&shared.service).cancel(job);
            }
        }
        Err(err) => {
            // rejected at the door (infeasible plan, full service
            // queue): the ticket resolves with the typed error
            slots.insert(ticket, SlotState::Done(Err(err)));
            drop(slots);
            shared.done_cv.notify_all();
        }
    }
}

/// Publishes finished service results to their tickets.
fn publish(shared: &Shared, finished: Vec<(JobId, Result<JobReport, SimError>)>) {
    if finished.is_empty() {
        return;
    }
    {
        let mut slots = lock(&shared.slots);
        let mut jobmap = lock(&shared.jobmap);
        for (job, result) in finished {
            if let Some(ticket) = jobmap.remove(&job.0) {
                slots.insert(ticket, SlotState::Done(result));
            }
        }
    }
    shared.done_cv.notify_all();
}

fn worker_loop(shared: &Shared, receiver: &Arc<Mutex<Receiver<Msg>>>) {
    loop {
        if shared.abort.load(Ordering::Acquire) {
            return;
        }
        // Soak every submission already in the channel, without
        // blocking, so batches form from whole bursts.
        let mut disconnected = false;
        loop {
            let msg = lock(receiver).try_recv();
            match msg {
                Ok(m) => admit(shared, m),
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // Drain one admission-controlled batch and publish its results.
        let (settled, backlog, delay) = {
            let mut svc = lock(&shared.service);
            let settled = svc.run_pending();
            let finished = svc.take_finished();
            let backlog = svc.queue_len();
            let delay = svc.next_eligible_delay_ms();
            drop(svc);
            publish(shared, finished);
            (settled, backlog, delay)
        };
        if backlog == 0 {
            if disconnected {
                // graceful end: intake closed and everything drained
                return;
            }
            // idle: block for the next submission, waking periodically
            // to honor aborts
            let msg = lock(receiver).recv_timeout(Duration::from_millis(IDLE_RECV_MS));
            match msg {
                Ok(m) => admit(shared, m),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        } else if settled == 0 {
            // every queued job is waiting out a retry backoff window:
            // nap until the earliest becomes eligible (capped, so fresh
            // arrivals are picked up promptly)
            if let Some(delay_ms) = delay {
                if delay_ms > 0 {
                    shared.clock.sleep_ms(delay_ms.clamp(1, BACKOFF_NAP_CAP_MS));
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::planner::Deliverable;
    use crate::service::JobOutput;
    use bgls_circuit::{Circuit, Gate, Operation, Qubit};

    fn bell() -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0), Qubit(1)], "m").unwrap());
        c
    }

    #[test]
    fn tickets_resolve_with_the_same_bits_as_the_sync_service() {
        let handle = ServiceHandle::with_defaults().unwrap();
        let tickets: Vec<(Ticket, u64)> = (0..8u64)
            .map(|s| {
                let t = handle
                    .submit(SimRequest::histogram(bell(), 100).with_seed(s))
                    .unwrap();
                (t, s)
            })
            .collect();
        for (ticket, seed) in tickets {
            let report = handle.wait(ticket).unwrap();
            let standalone = crate::plan_and_run(&bell(), 100, Some(seed))
                .unwrap()
                .result;
            assert_eq!(
                report.histogram().unwrap().histogram("m"),
                standalone.histogram("m"),
                "seed {seed}"
            );
        }
        let stats = handle.shutdown();
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn graceful_shutdown_drains_the_backlog() {
        let handle = ServiceHandle::with_defaults().unwrap();
        let tickets: Vec<Ticket> = (0..16u64)
            .map(|s| {
                handle
                    .submit(SimRequest::histogram(bell(), 60).with_seed(s))
                    .unwrap()
            })
            .collect();
        let stats = handle.shutdown();
        assert_eq!(stats.completed, 16, "shutdown drains, never drops");
        // tickets submitted before shutdown stay redeemable after it
        drop(tickets);
    }

    #[test]
    fn abort_resolves_every_outstanding_ticket() {
        let handle = ServiceHandle::with_defaults().unwrap();
        let tickets: Vec<Ticket> = (0..12u64)
            .map(|s| {
                handle
                    .submit(SimRequest::histogram(bell(), 50).with_seed(s))
                    .unwrap()
            })
            .collect();
        let mut resolved_ok = 0usize;
        let mut resolved_cancelled = 0usize;
        // Wait for the first ticket so at least one batch lands, then
        // pull the plug.
        let first = handle.wait(tickets[0]);
        assert!(first.is_ok());
        let handle2 = handle; // (move keeps the borrow checker honest)
        let stats = {
            // abort consumes the handle but tickets must still resolve
            // beforehand via the slots it settles; count afterwards via
            // wait on a fresh handle is impossible — so check the
            // stats' conservation law instead.
            handle2.abort()
        };
        resolved_ok += stats.completed as usize;
        resolved_cancelled += stats.cancellations as usize;
        assert_eq!(
            stats.completed + stats.failed,
            stats.submitted,
            "every admitted job settled: {stats:?}"
        );
        assert!(resolved_ok >= 1);
        let _ = resolved_cancelled;
    }

    #[test]
    fn infeasible_submissions_resolve_with_the_planner_error() {
        // A wide non-Clifford Toffoli ladder where every qubit feeds the
        // measurement: the lightcone keeps all 30 qubits live, arity-3
        // gates exclude the chain backends, and 30 dense qubits exceed
        // the width budget — infeasible even after optimization.
        let mut wide = Circuit::new();
        for i in 0..30u32 {
            wide.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
        }
        for i in 2..30u32 {
            wide.push(
                Operation::gate(Gate::Ccx, vec![Qubit(i - 2), Qubit(i - 1), Qubit(i)]).unwrap(),
            );
        }
        wide.push(Operation::measure((0..30).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
        let handle = ServiceHandle::with_defaults().unwrap();
        let ticket = handle
            .submit(SimRequest {
                circuit: wide,
                resolver: None,
                deliverable: Deliverable::Histogram { repetitions: 10 },
                seed: None,
                deadline_ms: None,
            })
            .unwrap();
        assert!(matches!(handle.wait(ticket), Err(SimError::Unsupported(_))));
        handle.shutdown();
    }

    #[test]
    fn lightcone_rescues_wide_circuits_with_dead_qubits() {
        // 30 raw qubits but only a 3-qubit observable cone: the optimizer
        // prunes the dead width, the planner accepts the residue, and the
        // service allocates state for the pruned circuit only.
        let mut wide = Circuit::new();
        for i in 0..30u32 {
            wide.push(Operation::gate(Gate::H, vec![Qubit(i)]).unwrap());
        }
        wide.push(Operation::gate(Gate::Ccx, vec![Qubit(0), Qubit(1), Qubit(2)]).unwrap());
        wide.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let handle = ServiceHandle::with_defaults().unwrap();
        let ticket = handle
            .submit(SimRequest {
                circuit: wide,
                resolver: None,
                deliverable: Deliverable::Histogram { repetitions: 10 },
                seed: Some(5),
                deadline_ms: None,
            })
            .unwrap();
        let report = handle.wait(ticket).expect("pruned circuit is feasible");
        match &report.output {
            JobOutput::Histogram(result) => {
                assert_eq!(result.histogram("m").unwrap().total(), 10);
            }
            other => panic!("histogram expected, got {other:?}"),
        }
        assert!(
            report.rewrite.ops_after < report.rewrite.ops_before,
            "lightcone must have pruned dead gates: {:?}",
            report.rewrite
        );
        handle.shutdown();
    }

    #[test]
    fn waiting_twice_reports_the_ticket_unknown() {
        let handle = ServiceHandle::with_defaults().unwrap();
        let t = handle
            .submit(SimRequest::histogram(bell(), 10).with_seed(1))
            .unwrap();
        handle.wait(t).unwrap();
        assert!(matches!(handle.wait(t), Err(SimError::Invalid(_))));
        assert_eq!(handle.status(t), JobStatus::Unknown);
        handle.shutdown();
    }
}

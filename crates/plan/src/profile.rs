//! Static circuit inspection: the feature vector the planner routes on.

use bgls_circuit::{Circuit, Gate};

/// Structural features of a circuit that determine which backend and
/// execution path simulate it best.
///
/// Everything here is computed in one `O(ops * qubits)` pass over the
/// circuit — cheap relative to any simulation — and is deliberately
/// *syntactic*: the profile never simulates anything, it only counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitProfile {
    /// Width implied by the highest qubit index touched.
    pub num_qubits: usize,
    /// Total operations (gates + measurements + channels).
    pub num_operations: usize,
    /// Unitary gate operations.
    pub num_gates: usize,
    /// Gates with a stabilizer (Clifford) effect.
    pub clifford_gates: usize,
    /// Gates acting on two or more qubits (the entanglement producers).
    pub entangling_gates: usize,
    /// Largest operation support (3 means a Toffoli-class gate is
    /// present, which the chain-MPS and lazy-network backends reject).
    pub max_arity: usize,
    /// Any Kraus channel present.
    pub has_channels: bool,
    /// Any measurement present.
    pub has_measurements: bool,
    /// Some measurement is followed by a later operation on one of its
    /// qubits, so sampling must collapse mid-run (projective collapse).
    pub mid_circuit_measurements: bool,
    /// Unresolved symbolic parameters remain.
    pub parameterized: bool,
    /// Operations that fork a trajectory: channel applications plus
    /// qubits measured mid-circuit. The trajectory forest's frontier is
    /// bounded by roughly `2^fork_ops` distinct branch histories.
    pub fork_ops: usize,
    /// `log2` of the Schmidt-rank bound across every contiguous
    /// bipartition cut: for each cut, the rank is at most
    /// `2^min(crossing entangling ops, qubits on the smaller side)`.
    /// Product states give `0`; a brickwork circuit of depth `d` on a
    /// chain gives roughly `min(d, n/2)`.
    pub log2_chi_bound: u32,
}

impl CircuitProfile {
    /// Profiles `circuit` in one pass.
    pub fn of(circuit: &Circuit) -> Self {
        let num_qubits = circuit.num_qubits();
        let mut p = CircuitProfile {
            num_qubits,
            num_operations: circuit.num_operations(),
            num_gates: 0,
            clifford_gates: 0,
            entangling_gates: 0,
            max_arity: 0,
            has_channels: false,
            has_measurements: false,
            mid_circuit_measurements: false,
            parameterized: circuit.is_parameterized(),
            fork_ops: 0,
            log2_chi_bound: 0,
        };
        // Entangling ops crossing each contiguous cut `c` (between qubit
        // c-1 and c), for the Schmidt-rank bound.
        let mut cut_crossings = vec![0usize; num_qubits.saturating_sub(1)];
        let moments = circuit.moments();
        for (i, moment) in moments.iter().enumerate() {
            for op in moment.operations() {
                let support = op.support();
                if !op.is_measurement() {
                    // Measurements of any width are fine everywhere; only
                    // gate/channel supports constrain the backends.
                    p.max_arity = p.max_arity.max(support.len());
                }
                if let Some(g) = op.as_gate() {
                    p.num_gates += 1;
                    if g.has_stabilizer_effect() {
                        p.clifford_gates += 1;
                    }
                }
                if op.is_channel() {
                    p.has_channels = true;
                    p.fork_ops += 1;
                }
                if op.is_measurement() {
                    p.has_measurements = true;
                    // Mid-circuit iff some later moment touches one of
                    // the measured qubits again.
                    let later_touches = moments[i + 1..].iter().any(|m| {
                        m.operations()
                            .iter()
                            .any(|o| o.support().iter().any(|q| support.contains(q)))
                    });
                    if later_touches {
                        p.mid_circuit_measurements = true;
                        p.fork_ops += support.len();
                    }
                }
                if support.len() >= 2 && !op.is_measurement() {
                    p.entangling_gates += usize::from(op.as_gate().is_some());
                    let lo = support.iter().map(|q| q.0 as usize).min().unwrap();
                    let hi = support.iter().map(|q| q.0 as usize).max().unwrap();
                    // Each crossing gate can at most multiply the cut's
                    // Schmidt rank by its operator-Schmidt rank: 2 for
                    // the controlled named gates (CNOT, CZ, Toffoli,
                    // CPhase, Rzz, ...); for SWAP-class gates and
                    // arbitrary matrices the rank is bounded per cut by
                    // `4^min(lo_span, hi_span)` over the support split —
                    // 4 for merged U4s from the optimizer, and growing
                    // with the split for wider `U(_, k)` gates so the
                    // chi bound stays sound at any arity.
                    let generic = matches!(
                        op.as_gate(),
                        Some(Gate::Swap | Gate::ISwap | Gate::U2(_) | Gate::U(_, _))
                    );
                    for (cut, crossings) in cut_crossings.iter_mut().enumerate().take(hi).skip(lo) {
                        *crossings += if generic {
                            let lo_span = support.iter().filter(|q| q.0 as usize <= cut).count();
                            let hi_span = support.len() - lo_span;
                            2 * lo_span.min(hi_span)
                        } else {
                            1
                        };
                    }
                }
            }
        }
        p.log2_chi_bound = cut_crossings
            .iter()
            .enumerate()
            .map(|(i, &crossings)| {
                let c = i + 1; // qubits strictly left of the cut
                crossings.min(c).min(num_qubits - c) as u32
            })
            .max()
            .unwrap_or(0);
        p
    }

    /// Fully Clifford: every gate has a stabilizer effect, no channels,
    /// no unresolved parameters. Stabilizer backends can run it.
    pub fn is_clifford(&self) -> bool {
        !self.has_channels && !self.parameterized && self.clifford_gates == self.num_gates
    }

    /// Fraction of gates with a stabilizer effect (`1.0` when gateless).
    pub fn clifford_fraction(&self) -> f64 {
        if self.num_gates == 0 {
            1.0
        } else {
            self.clifford_gates as f64 / self.num_gates as f64
        }
    }

    /// The Schmidt-rank (bond-dimension) bound `2^log2_chi_bound`,
    /// saturating instead of overflowing for deep wide circuits.
    pub fn chi_bound(&self) -> u64 {
        1u64 << self.log2_chi_bound.min(62)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::{Channel, Gate, Operation, Qubit};

    fn q(i: u32) -> Qubit {
        Qubit(i)
    }

    #[test]
    fn profiles_a_ghz_circuit() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        for i in 1..6u32 {
            c.push(Operation::gate(Gate::Cnot, vec![q(i - 1), q(i)]).unwrap());
        }
        c.push(Operation::measure(vec![q(0), q(5)], "m").unwrap());
        let p = CircuitProfile::of(&c);
        assert_eq!(p.num_qubits, 6);
        assert_eq!(p.num_gates, 6);
        assert_eq!(p.clifford_gates, 6);
        assert_eq!(p.entangling_gates, 5);
        assert!(p.is_clifford());
        assert!(p.has_measurements);
        assert!(!p.mid_circuit_measurements);
        assert_eq!(p.fork_ops, 0);
        // A single CNOT ladder crosses every cut once: chi <= 2.
        assert_eq!(p.log2_chi_bound, 1);
    }

    #[test]
    fn detects_mid_circuit_measurement_and_forks() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![q(0)]).unwrap());
        c.push(Operation::measure(vec![q(0)], "early").unwrap());
        c.push(Operation::gate(Gate::X, vec![q(0)]).unwrap());
        c.push(Operation::measure(vec![q(0)], "late").unwrap());
        let p = CircuitProfile::of(&c);
        assert!(p.mid_circuit_measurements);
        assert_eq!(p.fork_ops, 1); // only the early measurement forks
    }

    #[test]
    fn counts_channels_and_t_gates() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::T, vec![q(0)]).unwrap());
        c.push(Operation::channel(Channel::bit_flip(0.1).unwrap(), vec![q(0)]).unwrap());
        c.push(Operation::measure(vec![q(0)], "m").unwrap());
        let p = CircuitProfile::of(&c);
        assert!(p.has_channels);
        assert!(!p.is_clifford());
        assert_eq!(p.fork_ops, 1);
        assert!((p.clifford_fraction() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn chi_bound_saturates_at_the_half_chain() {
        // Deep brickwork on 4 qubits: rank bounded by the smaller side
        // (2 qubits -> log2 chi <= 2), no matter how many layers.
        let mut c = Circuit::new();
        for _ in 0..10 {
            for i in 0..3u32 {
                c.push(Operation::gate(Gate::Cz, vec![q(i), q(i + 1)]).unwrap());
            }
        }
        let p = CircuitProfile::of(&c);
        assert_eq!(p.log2_chi_bound, 2);
        assert_eq!(p.chi_bound(), 4);
    }
}

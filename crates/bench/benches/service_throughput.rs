//! Bench: the batch simulation service with its deterministic result
//! cache on vs off, serving a hot-circuit traffic mix.
//!
//! The stream models a parameter-study client: four circuit classes
//! (each routed to a different backend by the planner), `ROUNDS` rounds
//! of requests cycling over a small set of hot seeds — so the same
//! `(circuit, seed, repetitions)` triple recurs many times. The cached
//! service answers repeats from the memo table (bit-identical by the
//! engine's determinism contract) and deduplicates repeats that share a
//! drain batch; the uncached service (`cache_capacity: 0`) re-simulates
//! every request.
//!
//! Acceptance bar for this PR: cached throughput >= 5x uncached on this
//! mix (recorded in `BENCH_service_throughput.json`).

use bgls_circuit::{Channel, Circuit, Gate, Operation, Qubit};
use bgls_plan::{ServePolicy, ServiceConfig, ServiceHandle, SimRequest, SimulationService};
use criterion::{criterion_group, criterion_main, Criterion};

/// Hot seeds per circuit class; every request draws one of these.
const HOT_SEEDS: u64 = 2;
/// Rounds over the circuit mix: 4 circuits x ROUNDS requests total.
fn rounds() -> u64 {
    if std::env::args().any(|a| a == "--test") {
        4
    } else {
        20
    }
}
/// Shots per request.
fn reps() -> u64 {
    if std::env::args().any(|a| a == "--test") {
        50
    } else {
        2_000
    }
}

fn measured(mut c: Circuit, n: u32) -> Circuit {
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

/// Pure Clifford GHZ ladder: routed to the CH form.
fn ghz(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

/// T-dusted ladder: unitary non-Clifford, routed dense.
fn t_ladder(n: u32) -> Circuit {
    let mut c = Circuit::new();
    for i in 0..n {
        c.push(Operation::gate(Gate::T, vec![Qubit(i)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(i)]).unwrap());
    }
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

/// Narrow noisy circuit: routed to the density matrix.
fn noisy(n: u32) -> Circuit {
    let mut c = ghz(n).without_measurements();
    for i in 0..n {
        c.push(Operation::channel(Channel::bit_flip(0.02).unwrap(), vec![Qubit(i)]).unwrap());
    }
    measured(c, n)
}

/// Clifford with a mid-circuit measurement: routed to the tableau.
fn mid_circuit(n: u32) -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    c.push(Operation::measure(vec![Qubit(0)], "early").unwrap());
    for i in 1..n {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    measured(c, n)
}

fn traffic() -> Vec<Circuit> {
    vec![ghz(12), t_ladder(14), noisy(8), mid_circuit(10)]
}

/// Builds a service, submits the whole hot mix, and drains it.
fn serve(cache_capacity: usize, circuits: &[Circuit]) -> u64 {
    let mut svc = SimulationService::new(ServiceConfig {
        cache_capacity,
        ..ServiceConfig::default()
    });
    for round in 0..rounds() {
        for c in circuits {
            svc.submit(SimRequest::histogram(c.clone(), reps()).with_seed(round % HOT_SEEDS))
                .expect("submit");
        }
    }
    let completed = svc.run_all();
    assert_eq!(completed as u64, rounds() * circuits.len() as u64);
    completed as u64
}

/// The same hot mix through the async front door: a worker pool drains
/// the service while the submitting thread redeems tickets. Measures
/// the serving layer's overhead (channel, slots, condvar) on top of the
/// cached drain loop.
fn serve_async(circuits: &[Circuit]) -> u64 {
    let handle = ServiceHandle::start(ServiceConfig::default(), ServePolicy::default())
        .expect("start serving pool");
    let mut tickets = Vec::new();
    for round in 0..rounds() {
        for c in circuits {
            tickets.push(
                handle
                    .submit(SimRequest::histogram(c.clone(), reps()).with_seed(round % HOT_SEEDS))
                    .expect("submit"),
            );
        }
    }
    for t in &tickets {
        handle.wait(*t).expect("serve");
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed, rounds() * circuits.len() as u64);
    stats.completed
}

fn bench_service_throughput(c: &mut Criterion) {
    let circuits = traffic();
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(2);
    group.bench_function("hot_mix/uncached", |b| b.iter(|| serve(0, &circuits)));
    group.bench_function("hot_mix/cached", |b| b.iter(|| serve(1024, &circuits)));
    group.bench_function("hot_mix/async_served", |b| {
        b.iter(|| serve_async(&circuits))
    });
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);

//! Bench: the multiplicity-map sample parallelization (paper Fig. 2):
//! runtime saturates with repetitions when enabled — plus the batched vs
//! scalar candidate-probability paths on the saturated map.

use bgls_bench::universal_workload;
use bgls_circuit::{Circuit, Operation, Qubit};
use bgls_core::{Simulator, SimulatorOptions};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload(qubits: usize, moments: usize) -> Circuit {
    let mut circuit = universal_workload(qubits, moments, 42);
    circuit.push(Operation::measure(Qubit::range(qubits), "m").unwrap());
    circuit
}

fn bench_parallelization(c: &mut Criterion) {
    let circuit = workload(8, 20);
    let mut group = c.benchmark_group("sample_parallelization");
    group.sample_size(10);
    for &reps in &[16u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("multiplicity_map", reps), &reps, |b, _| {
            let sim = Simulator::new(StateVector::zero(8)).with_seed(7);
            b.iter(|| sim.run(&circuit, reps).unwrap());
        });
        if reps <= 256 {
            group.bench_with_input(BenchmarkId::new("per_sample", reps), &reps, |b, _| {
                let sim = Simulator::new(StateVector::zero(8)).with_options(SimulatorOptions {
                    seed: Some(7),
                    parallelize_samples: false,
                    parallel_trajectories: false,
                    ..Default::default()
                });
                b.iter(|| sim.run(&circuit, reps).unwrap());
            });
        }
    }
    group.finish();
}

/// Scalar vs batched candidate evaluation at a repetition count that
/// saturates the 8-qubit multiplicity map (every basis state populated),
/// where candidate-probability evaluation dominates the step cost.
fn bench_batched_redistribution(c: &mut Criterion) {
    let circuit = workload(8, 20);
    let mut group = c.benchmark_group("sample_parallelization_batched");
    group.sample_size(10);
    let reps = 100_000u64;
    for (label, batch) in [("scalar", false), ("batched", true)] {
        group.bench_function(label, |b| {
            let sim = Simulator::new(StateVector::zero(8)).with_options(SimulatorOptions {
                seed: Some(7),
                batch_probabilities: batch,
                parallel_redistribution: batch,
                ..Default::default()
            });
            b.iter(|| sim.run(&circuit, reps).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallelization, bench_batched_redistribution);
criterion_main!(benches);

//! Bench: the multiplicity-map sample parallelization (paper Fig. 2):
//! runtime saturates with repetitions when enabled.

use bgls_bench::universal_workload;
use bgls_circuit::{Operation, Qubit};
use bgls_core::{Simulator, SimulatorOptions};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_parallelization(c: &mut Criterion) {
    let mut circuit = universal_workload(8, 20, 42);
    circuit.push(Operation::measure(Qubit::range(8), "m").unwrap());
    let mut group = c.benchmark_group("sample_parallelization");
    group.sample_size(10);
    for &reps in &[16u64, 256, 4096] {
        group.bench_with_input(BenchmarkId::new("multiplicity_map", reps), &reps, |b, _| {
            let sim = Simulator::new(StateVector::zero(8)).with_seed(7);
            b.iter(|| sim.run(&circuit, reps).unwrap());
        });
        if reps <= 256 {
            group.bench_with_input(BenchmarkId::new("per_sample", reps), &reps, |b, _| {
                let sim = Simulator::new(StateVector::zero(8)).with_options(SimulatorOptions {
                    seed: Some(7),
                    parallelize_samples: false,
                    parallel_trajectories: false,
                    ..Default::default()
                });
                b.iter(|| sim.run(&circuit, reps).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallelization);
criterion_main!(benches);

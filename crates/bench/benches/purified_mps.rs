//! Bench: the purified-MPS mixed-state backend (PR 10).
//!
//! Two workloads sized to the backend's reason for existing:
//!
//! * `noisy_expectation` — exact `<Z^(xn)>` of GHZ(n) with single-qubit
//!   depolarizing noise on every qubit. The purified chain runs at 20
//!   qubits, far past the density matrix's 4^n wall (~17 TB of
//!   amplitudes at that width); the density matrix runs the same shape
//!   at 10 qubits as the dense reference point.
//! * `noisy_sampling` — 20 BGLS samples of a 16-qubit Ry/CNOT brickwork
//!   circuit carrying one mid-circuit depolarizing layer, on the
//!   chi-capped purified chain (chi=16, kappa=8). Channels are absorbed
//!   exactly into the Kraus legs, so the sampler never forks a
//!   trajectory forest.
//!
//! The recorded baseline lives in `BENCH_purified_mps.json`.

use bgls_circuit::{Channel, Circuit, Gate, Operation, PauliOp, PauliString, PauliSum, Qubit};
use bgls_core::Simulator;
use bgls_linalg::C64;
use bgls_mps::{PurifiedMps, PurifiedOptions};
use bgls_statevector::DensityMatrix;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// GHZ(n) followed by single-qubit depolarizing noise on every qubit.
/// `<Z^(xn)>` has the closed form `(1 - 4p/3)^n`, which the conformance
/// suite checks; here we only pay for it.
fn noisy_ghz(n: usize, p: f64) -> Circuit {
    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for q in 1..n as u32 {
        circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(q - 1), Qubit(q)]).unwrap());
    }
    for q in 0..n as u32 {
        circuit
            .push(Operation::channel(Channel::depolarizing(p).unwrap(), vec![Qubit(q)]).unwrap());
    }
    circuit
}

fn zn_observable(n: usize) -> PauliSum {
    let mut sum = PauliSum::new();
    sum.add_term(
        C64::ONE,
        PauliString::from_ops((0..n).map(|q| (q, PauliOp::Z))).unwrap(),
    );
    sum
}

/// Ry/CNOT brickwork with a single mid-circuit depolarizing layer —
/// channel-sparse on purpose: each channel grows a site's Kraus leg,
/// and one layer keeps kappa within the chi-capped chain's budget.
fn noisy_brickwork(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut circuit = Circuit::new();
    for layer in 0..layers {
        for q in 0..n as u32 {
            let theta: f64 = rng.gen_range(-1.5..1.5);
            circuit.push(Operation::gate(Gate::Ry(theta.into()), vec![Qubit(q)]).unwrap());
        }
        for a in ((layer % 2)..n - 1).step_by(2) {
            circuit.push(
                Operation::gate(Gate::Cnot, vec![Qubit(a as u32), Qubit(a as u32 + 1)]).unwrap(),
            );
        }
        if layer == layers / 2 {
            for q in 0..n as u32 {
                circuit.push(
                    Operation::channel(Channel::depolarizing(0.05).unwrap(), vec![Qubit(q)])
                        .unwrap(),
                );
            }
        }
    }
    circuit
}

fn bench_noisy_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_expectation");
    group.sample_size(10);
    let n_pmps = 20;
    let circuit_pmps = noisy_ghz(n_pmps, 0.1);
    let zn_pmps = zn_observable(n_pmps);
    group.bench_function("purified_20", |b| {
        let sim = Simulator::new(PurifiedMps::zero(n_pmps, PurifiedOptions::exact()));
        b.iter(|| sim.expectation_value(&circuit_pmps, &zn_pmps).unwrap());
    });
    let n_dm = 10;
    let circuit_dm = noisy_ghz(n_dm, 0.1);
    let zn_dm = zn_observable(n_dm);
    group.bench_function("density_10", |b| {
        let sim = Simulator::new(DensityMatrix::zero(n_dm));
        b.iter(|| sim.expectation_value(&circuit_dm, &zn_dm).unwrap());
    });
    group.finish();
}

fn bench_noisy_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_sampling");
    group.sample_size(10);
    let n = 16;
    let circuit = noisy_brickwork(n, 6, 7);
    group.bench_function("purified_chi16_16q", |b| {
        let options = PurifiedOptions::with_max_bond(16).with_max_kraus(8);
        let sim = Simulator::new(PurifiedMps::zero(n, options)).with_seed(1);
        b.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_noisy_expectation, bench_noisy_sampling);
criterion_main!(benches);

//! Ablation: chain-MPS bond cap chi vs sampling runtime (QAOA-style
//! workload). Complements the Sec. 4.4 experiment by showing what the
//! custom MPSOptions cap buys.

use bgls_apps::{qaoa_maxcut_circuit, resolve_qaoa, Graph};
use bgls_core::Simulator;
use bgls_mps::{ChainMps, MpsOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_chi(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2023);
    let graph = Graph::erdos_renyi(10, 0.3, &mut rng);
    let circuit = resolve_qaoa(&qaoa_maxcut_circuit(&graph, 1), &[0.6], &[0.3]);
    let mut group = c.benchmark_group("qaoa_chi_ablation");
    group.sample_size(10);
    for &chi in &[2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(chi), &chi, |b, _| {
            let sim =
                Simulator::new(ChainMps::zero(10, MpsOptions::with_max_bond(chi))).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 50).unwrap());
        });
    }
    group.bench_function("exact", |b| {
        let sim = Simulator::new(ChainMps::zero(10, MpsOptions::exact())).with_seed(1);
        b.iter(|| sim.sample_final_bitstrings(&circuit, 50).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_chi);
criterion_main!(benches);

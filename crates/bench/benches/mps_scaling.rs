//! Bench: tensor-network vs dense sampling (paper Figs. 6-7): the GHZ
//! random-CNOT hard case and the shallow-circuit easy case.

use bgls_apps::{ghz_random_cnot_circuit, random_fixed_cnot_circuit, random_u2_brickwork};
use bgls_core::Simulator;
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ghz(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghz_random_cnot");
    group.sample_size(10);
    for &n in &[6usize, 10, 14] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let circuit = ghz_random_cnot_circuit(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("lazy_mps", n), &n, |b, _| {
            let sim = Simulator::new(LazyNetworkState::zero(n)).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("statevector", n), &n, |b, _| {
            let sim = Simulator::new(StateVector::zero(n)).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
        });
    }
    group.finish();
}

fn bench_fixed_cnots(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixed_cnot_width");
    group.sample_size(10);
    for &n in &[8usize, 24, 48] {
        let mut rng = StdRng::seed_from_u64(n as u64 + 99);
        let circuit = random_fixed_cnot_circuit(n, 2, 8, &mut rng);
        group.bench_with_input(BenchmarkId::new("lazy_mps", n), &n, |b, _| {
            let sim = Simulator::new(LazyNetworkState::zero(n)).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
        });
    }
    group.finish();
}

/// Chain-MPS sampling at the chi=32 cap on a random-SU(4) brickwork
/// circuit deep enough to saturate the bulk bonds — the workload the blocked-GEMM /
/// split-plane-SVD kernel layer targets (>= 3x bar, see
/// `BENCH_gemm_contraction.json`).
fn bench_chain_chi32(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_chi32");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(32);
    let circuit = random_u2_brickwork(20, 8, &mut rng);
    group.bench_function("sample_20", |b| {
        let sim = Simulator::new(ChainMps::zero(20, MpsOptions::with_max_bond(32))).with_seed(1);
        b.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_ghz, bench_fixed_cnots, bench_chain_chi32);
criterion_main!(benches);

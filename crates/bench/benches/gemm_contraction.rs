//! Bench: the dense-kernel floor under the MPS/lazy contraction stack.
//!
//! Everything the gate-by-gate sampler does on a structured state bottoms
//! out in three arithmetic workloads:
//!
//! * `raw_gemm` — `Matrix::matmul` on the (2chi x chi)(chi x 2chi)
//!   two-site shapes the chain MPS produces at chi=32, plus a larger
//!   square and a non-power-of-two shape;
//! * `tensor_contract` — `Tensor::contract` on rank-3/rank-4 operands
//!   whose shared bonds force axis permutation (the lazy-network case);
//! * `chain_chi32` — end-to-end chain-MPS sampling of a brickwork
//!   circuit at chi=32 (two-site GEMM + Jacobi SVD + amplitude sweeps);
//! * `lazy_norm_sqr` — `LazyNetworkState::norm_sqr` via the doubled
//!   network, the heaviest `contract_network` consumer.
//!
//! The acceptance bar for the GEMM PR is >= 3x on `chain_chi32` and on
//! `lazy_norm_sqr` versus the pre-GEMM sequential kernels; measured
//! before/after pairs are recorded in `BENCH_gemm_contraction.json`.

use bgls_apps::{brickwork_circuit, random_u2_brickwork};
use bgls_core::{BglsState, Simulator};
use bgls_linalg::{Matrix, Tensor, C64};
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rng: &mut StdRng, m: usize, n: usize) -> Matrix {
    Matrix::from_fn(m, n, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn random_tensor(rng: &mut StdRng, labels: Vec<u32>, shape: Vec<usize>) -> Tensor {
    let len: usize = shape.iter().product();
    let data = (0..len)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    Tensor::new(labels, shape, data)
}

fn bench_raw_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("raw_gemm");
    group.sample_size(20);
    // (m, k, n): two-site theta at chi=32, a large square, a ragged shape.
    for &(m, k, n) in &[(64usize, 32usize, 64usize), (128, 128, 128), (96, 53, 77)] {
        let mut rng = StdRng::seed_from_u64((m * k * n) as u64);
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bch, _| bch.iter(|| a.matmul(&b)),
        );
    }
    let mut rng = StdRng::seed_from_u64(4242);
    let a = random_matrix(&mut rng, 128, 128);
    let v: Vec<C64> = (0..128)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    group.bench_function("matvec/128", |bch| bch.iter(|| a.matvec(&v)));
    group.finish();
}

fn bench_tensor_contract(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_contract");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(7);
    // Rank-3 x rank-3 over one shared bond, with the shared axis leading
    // in one operand and trailing in the other so the old path permutes
    // both (the lazy-network steady state).
    let a3 = random_tensor(&mut rng, vec![0, 1, 2], vec![32, 2, 32]);
    let b3 = random_tensor(&mut rng, vec![3, 2, 4], vec![32, 32, 2]);
    group.bench_function("rank3_shared1", |bch| bch.iter(|| a3.contract(&b3)));
    // Rank-4 x rank-4 over two shared bonds (doubled-network shape).
    let a4 = random_tensor(&mut rng, vec![0, 1, 2, 3], vec![2, 16, 16, 2]);
    let b4 = random_tensor(&mut rng, vec![4, 2, 1, 5], vec![2, 16, 16, 2]);
    group.bench_function("rank4_shared2", |bch| bch.iter(|| a4.contract(&b4)));
    group.finish();
}

fn bench_chain_chi32(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_chi32");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(32);
    // 20 qubits, 8 layers of random SU(4) bricks: bonds saturate the
    // chi=32 cap in the bulk, so every two-site gate pays the
    // (64 x 32)(32 x 64) GEMM and a 64x128 Jacobi SVD, and every
    // candidate sweep runs chi x chi contractions.
    let circuit = random_u2_brickwork(20, 8, &mut rng);
    group.bench_function("sample_20", |bch| {
        let sim = Simulator::new(ChainMps::zero(20, MpsOptions::with_max_bond(32))).with_seed(1);
        bch.iter(|| sim.sample_final_bitstrings(&circuit, 20).unwrap());
    });
    group.finish();
}

fn bench_lazy_norm_sqr(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_norm_sqr");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let circuit = brickwork_circuit(16, 8, &mut rng);
    let mut state = LazyNetworkState::zero(16);
    for op in circuit.all_operations() {
        if let Some(gate) = op.as_gate() {
            let qubits: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            state.apply_gate(gate, &qubits).unwrap();
        }
    }
    group.bench_function("brickwork_16x8", |bch| bch.iter(|| state.norm_sqr()));
    group.finish();
}

criterion_group!(
    benches,
    bench_raw_gemm,
    bench_tensor_contract,
    bench_chain_chi32,
    bench_lazy_norm_sqr
);
criterion_main!(benches);

//! Bench: trajectory-forest execution vs per-trajectory replay on noisy
//! circuits (the workload class PR 3 moves off the replay path).
//!
//! Three 16-qubit workloads at 10^4 repetitions, each with *sparse*
//! stochastic noise so the forest frontier stays near a handful of
//! branch histories while replay pays a full state evolution per
//! repetition:
//!
//! * `ghz` — GHZ ladder with a low-probability bit flip on every qubit;
//! * `clifford` — random Clifford circuit with sparse depolarizing noise;
//! * `qaoa` — one-layer ring-MaxCut QAOA with per-qubit bit-flip noise.
//!
//! Configurations per workload:
//! * `replay` — `trajectory_forest: false`: the per-repetition replay
//!   engine (Rayon across repetitions);
//! * `forest` — the trajectory-forest engine (default options).
//!
//! Both sample identical distributions (chi-squared-verified in
//! `tests/trajectory_forest.rs`); the acceptance bar for this PR is
//! forest >= 3x faster than replay on the GHZ workload.

use bgls_apps::{qaoa_maxcut_circuit, resolve_qaoa, Graph};
use bgls_bench::clifford_workload;
use bgls_circuit::{Channel, Circuit, Gate, Operation, Qubit};
use bgls_core::{Simulator, SimulatorOptions};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, Criterion};

const QUBITS: usize = 16;
const NOISE: f64 = 0.001;

/// 10^4 repetitions when timing; a token count in `--test` smoke mode,
/// where a single untimed replay run at full reps would dominate CI.
fn reps() -> u64 {
    if std::env::args().any(|a| a == "--test") {
        100
    } else {
        10_000
    }
}

fn with_terminal_noise(mut circuit: Circuit, p: f64, channel: fn(f64) -> Channel) -> Circuit {
    for q in 0..QUBITS as u32 {
        circuit.push(Operation::channel(channel(p), vec![Qubit(q)]).unwrap());
    }
    circuit.push(Operation::measure(Qubit::range(QUBITS), "m").unwrap());
    circuit
}

fn sparse_noise_ghz() -> Circuit {
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    for i in 1..QUBITS as u32 {
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
    }
    with_terminal_noise(c, NOISE, |p| Channel::bit_flip(p).unwrap())
}

fn noisy_clifford() -> Circuit {
    with_terminal_noise(clifford_workload(QUBITS, 12, 7), NOISE, |p| {
        Channel::depolarizing(p).unwrap()
    })
}

fn noisy_qaoa() -> Circuit {
    let edges: Vec<(usize, usize)> = (0..QUBITS).map(|v| (v, (v + 1) % QUBITS)).collect();
    let graph = Graph::new(QUBITS, edges);
    let circuit = resolve_qaoa(&qaoa_maxcut_circuit(&graph, 1), &[0.7], &[0.4]);
    with_terminal_noise(circuit, NOISE, |p| Channel::bit_flip(p).unwrap())
}

fn options(forest: bool) -> SimulatorOptions {
    SimulatorOptions {
        seed: Some(11),
        trajectory_forest: forest,
        ..Default::default()
    }
}

fn bench_trajectory_forest(c: &mut Criterion) {
    let workloads = [
        ("ghz", sparse_noise_ghz()),
        ("clifford", noisy_clifford()),
        ("qaoa", noisy_qaoa()),
    ];
    let mut group = c.benchmark_group("trajectory_forest");
    group.sample_size(2);
    for (name, circuit) in &workloads {
        for (path, forest) in [("replay", false), ("forest", true)] {
            group.bench_function(format!("{name}/{path}"), |b| {
                let sim = Simulator::new(StateVector::zero(QUBITS)).with_options(options(forest));
                b.iter(|| sim.run(circuit, reps()).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_trajectory_forest);
criterion_main!(benches);

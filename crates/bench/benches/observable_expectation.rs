//! Bench: the Pauli-observable expectation engine.
//!
//! Four workloads, one per evaluation strategy the subsystem ships:
//!
//! * `exact_tfim` — exact transverse-field Ising energy
//!   (`Simulator::expectation_value`) of a Trotter-style layer on the
//!   dense state vector (16 qubits, 31 terms, amplitude inner products)
//!   and the exact chain MPS (24 qubits, transfer-matrix sweeps riding
//!   the GEMM layer);
//! * `exact_clifford` — a 40-qubit random-Clifford state scored against
//!   a 40-term Z/X-string battery on the CH form (`U_C`-conjugation,
//!   `O(n^2 / 64)` per term, no amplitudes);
//! * `shot_groups` — the grouped shot estimator
//!   (`Simulator::estimate_expectation`) on the 16-qubit TFIM: two
//!   qubit-wise-commuting groups, one basis-rotated 10^4-shot sampling
//!   run each, on the multiplicity-map hot path;
//! * `lazy_doubled` — doubled-network contraction expectations on the
//!   lazy tensor network (12 qubits x 6 brickwork layers).
//!
//! The recorded baseline lives in `BENCH_observable_expectation.json`.

use bgls_apps::{tfim_layer_circuit, transverse_field_ising};
use bgls_circuit::{PauliString, PauliSum};
use bgls_core::{BglsState, Simulator};
use bgls_linalg::C64;
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions};
use bgls_stabilizer::ChForm;
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_exact_tfim(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_tfim");
    group.sample_size(10);
    let n_sv = 16;
    let h_sv = transverse_field_ising(n_sv, 1.0, 0.6, false);
    let circuit_sv = tfim_layer_circuit(n_sv);
    group.bench_function("statevector_16", |b| {
        let sim = Simulator::new(StateVector::zero(n_sv));
        b.iter(|| sim.expectation_value(&circuit_sv, &h_sv).unwrap());
    });
    let n_mps = 24;
    let h_mps = transverse_field_ising(n_mps, 1.0, 0.6, false);
    let circuit_mps = tfim_layer_circuit(n_mps);
    group.bench_function("mps_24", |b| {
        let sim = Simulator::new(ChainMps::zero(n_mps, MpsOptions::exact()));
        b.iter(|| sim.expectation_value(&circuit_mps, &h_mps).unwrap());
    });
    group.finish();
}

fn bench_exact_clifford(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_clifford");
    group.sample_size(10);
    let n = 40;
    // scrambled Clifford state: H/S/CNOT walk across the register
    let mut state = ChForm::zero(n);
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..400 {
        let a = rng.gen_range(0..n);
        match rng.gen_range(0..3) {
            0 => state.apply_h(a).unwrap(),
            1 => state.apply_s(a).unwrap(),
            _ => {
                let mut b = rng.gen_range(0..n);
                if b == a {
                    b = (a + 1) % n;
                }
                state.apply_cnot(a, b).unwrap();
            }
        }
    }
    // 40-term battery of random-support Z- and X-strings
    let mut battery = PauliSum::new();
    for t in 0..40usize {
        let ops: Vec<usize> = (0..n).filter(|q| (q * 7 + t * 13) % 5 == 0).collect();
        let string = if t % 2 == 0 {
            PauliString::z_string(&ops).unwrap()
        } else {
            PauliString::from_ops(ops.iter().map(|&q| (q, bgls_circuit::PauliOp::X))).unwrap()
        };
        battery.add_term(C64::real(1.0 + t as f64 / 40.0), string);
    }
    group.bench_function("chform_40q_40terms", |b| {
        b.iter(|| {
            battery
                .terms()
                .iter()
                .map(|(c, p)| c.re * state.expectation(p).unwrap())
                .sum::<f64>()
        });
    });
    group.finish();
}

fn bench_shot_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_groups");
    group.sample_size(10);
    let n = 16;
    let h = transverse_field_ising(n, 1.0, 0.6, false);
    let circuit = tfim_layer_circuit(n);
    group.bench_function("tfim_16_1e4_shots", |b| {
        let sim = Simulator::new(StateVector::zero(n)).with_seed(3);
        b.iter(|| sim.estimate_expectation(&circuit, &h, 10_000).unwrap());
    });
    group.finish();
}

fn bench_lazy_doubled(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazy_doubled");
    group.sample_size(10);
    let n = 12;
    let mut rng = StdRng::seed_from_u64(4);
    let circuit = bgls_apps::brickwork_circuit(n, 6, &mut rng);
    let mut state = LazyNetworkState::zero(n);
    for op in circuit.all_operations() {
        if let Some(gate) = op.as_gate() {
            let qubits: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            state.apply_gate(gate, &qubits).unwrap();
        }
    }
    let h = transverse_field_ising(n, 1.0, 0.6, false);
    group.bench_function("tfim_12_brickwork", |b| {
        b.iter(|| {
            h.terms()
                .iter()
                .map(|(c, p)| c.re * state.expectation(p).unwrap())
                .sum::<f64>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_tfim,
    bench_exact_clifford,
    bench_shot_groups,
    bench_lazy_doubled
);
criterion_main!(benches);

//! Bench: CH-form Clifford sampling runtime vs depth and width
//! (paper Fig. 3).

use bgls_bench::clifford_workload;
use bgls_core::Simulator;
use bgls_stabilizer::{ChForm, TableauSimulator};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_depth_n10");
    group.sample_size(10);
    for &depth in &[25usize, 100, 400] {
        let circuit = clifford_workload(10, depth, 11);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            let sim = Simulator::new(ChForm::zero(10)).with_seed(3);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 100).unwrap());
        });
    }
    group.finish();
}

fn bench_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_width_d100");
    group.sample_size(10);
    for &n in &[8usize, 24, 48] {
        let circuit = clifford_workload(n, 100, 13);
        group.bench_with_input(BenchmarkId::new("bgls_chform", n), &n, |b, _| {
            let sim = Simulator::new(ChForm::zero(n)).with_seed(3);
            b.iter(|| sim.sample_final_bitstrings(&circuit, 100).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("tableau_reference", n), &n, |b, _| {
            let sim = TableauSimulator::new(n).with_seed(3);
            b.iter(|| sim.sample(&circuit, 100).unwrap());
        });
    }
    group.finish();
}

fn bench_amplitude_cost(c: &mut Criterion) {
    // the f(n, d) claim directly: a single CH-form amplitude query costs
    // O(n^2) independent of the depth that produced the state
    use bgls_core::{BglsState, BitString};
    let mut group = c.benchmark_group("chform_amplitude");
    for &n in &[8usize, 16, 32, 64] {
        let circuit = clifford_workload(n, 50, 5);
        let mut st = ChForm::zero(n);
        for op in circuit.all_operations() {
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            st.apply_gate(op.as_gate().unwrap(), &qs).unwrap();
        }
        let bits = BitString::from_u64(n, 0b1011);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(st.probability(bits)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_depth, bench_width, bench_amplitude_cost);
criterion_main!(benches);

//! Bench: sharded dense-state kernels vs the flat per-gate loops.
//!
//! The workload is the dense-backend hot path at production scale — a
//! 24-qubit state vector (256 MiB of amplitudes, far out of cache):
//!
//! * `sweep_24q/gate_by_gate` — a 1q/2q gate sweep (H on every qubit,
//!   then Rzz on the nearest-neighbour chain) applied one
//!   `apply_matrix` call at a time: every gate is a full read+write
//!   pass over the 256 MiB buffer;
//! * `sweep_24q/fused_passes` — the same sweep through
//!   `apply_unitaries`, which groups consecutive gates into
//!   shard-blocked passes (each pass touches every shard once, applying
//!   every gate of the pass while the shard is cache-resident);
//! * `reduce_24q/*` — `norm_sqr` (tree-reduced over shards) and a
//!   4-qubit marginal probability mass, the reduction shapes behind
//!   renormalization, Kraus branch weights, and Born batches.
//!
//! Acceptance for the sharding PR: >= 2x on the gate sweep vs the
//! pre-shard kernels, and the portable runtime-dispatch binary within
//! 10% of the old `-C target-cpu=native` build on the same sweep.
//! Before/after medians are recorded in `BENCH_statevector_shards.json`.

use bgls_circuit::Gate;
use bgls_core::MarginalState;
use bgls_linalg::{Matrix, C64};
use bgls_statevector::{apply_matrix, norm_sqr, StateVector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 24;

/// The 24-qubit 1q/2q sweep: H on every qubit, Rzz(0.3) on the chain.
fn sweep_ops() -> Vec<(Matrix, Vec<usize>)> {
    let h = Gate::H.unitary().unwrap();
    let zz = Gate::Rzz(0.3.into()).unitary().unwrap();
    let mut ops = Vec::new();
    for q in 0..N {
        ops.push((h.clone(), vec![q]));
    }
    for q in 0..N - 1 {
        ops.push((zz.clone(), vec![q, q + 1]));
    }
    ops
}

fn random_amps(n: usize) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(24);
    let mut amps: Vec<C64> = (0..1usize << n)
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let norm = norm_sqr(&amps).sqrt();
    amps.iter_mut().for_each(|z| *z = *z / norm);
    amps
}

fn bench_gate_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_24q");
    group.sample_size(5);
    let ops = sweep_ops();
    let mut amps = random_amps(N);
    group.bench_function("gate_by_gate", |b| {
        b.iter(|| {
            for (u, qs) in &ops {
                apply_matrix(&mut amps, u, qs);
            }
        })
    });
    group.bench_function("fused_passes", |b| {
        let op_refs: Vec<(&Matrix, &[usize])> =
            ops.iter().map(|(u, qs)| (u, qs.as_slice())).collect();
        b.iter(|| bgls_statevector::apply_unitaries(&mut amps, &op_refs))
    });
    group.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_24q");
    group.sample_size(10);
    let amps = random_amps(N);
    group.bench_function("norm_sqr", |b| b.iter(|| norm_sqr(&amps)));
    let sv = StateVector::from_amplitudes(random_amps(N)).unwrap();
    group.bench_function("marginal_4q_mass", |b| {
        b.iter(|| sv.marginal_probability(&[(0, false), (7, true), (13, false), (23, true)]))
    });
    group.finish();
}

criterion_group!(benches, bench_gate_sweep, bench_reductions);
criterion_main!(benches);

//! Bench: optimize_for_bgls (paper Sec. 3.2.2 / docs tips table): sampling
//! a merged circuit vs the raw one — expected 1.5-2x.

use bgls_bench::universal_workload;
use bgls_circuit::optimize_for_bgls;
use bgls_core::Simulator;
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_for_bgls");
    group.sample_size(10);
    for &layers in &[10usize, 30, 50] {
        let raw = universal_workload(8, layers, 77);
        let merged = optimize_for_bgls(&raw);
        group.bench_with_input(BenchmarkId::new("raw", layers), &layers, |b, _| {
            let sim = Simulator::new(StateVector::zero(8)).with_seed(5);
            b.iter(|| sim.sample_final_bitstrings(&raw, 200).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("merged", layers), &layers, |b, _| {
            let sim = Simulator::new(StateVector::zero(8)).with_seed(5);
            b.iter(|| sim.sample_final_bitstrings(&merged, 200).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimization);
criterion_main!(benches);

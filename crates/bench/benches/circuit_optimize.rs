//! Bench: the circuit-optimization pipeline on vs off.
//!
//! Two measurements, recorded in `BENCH_circuit_optimize.json`:
//!
//! 1. **Dense sweeps** — a dusted brickwork circuit and a T-dusted
//!    ladder run on the dense state vector with
//!    `SimulatorOptions::optimize` unset vs set. The pipeline fuses
//!    each cluster of single-qubit dust into its neighbouring
//!    two-qubit gate, so the sweep applies a fraction of the raw
//!    operation count. Acceptance bar: >= 1.5x median wall-clock on
//!    both circuits, optimization time included.
//! 2. **Uncached service mix** — the planner-driven service draining
//!    the same traffic with `PlannerConfig::optimize` on vs off and
//!    the result cache disabled, isolating the optimizer's effect on
//!    end-to-end serving throughput.

use bgls_circuit::{Circuit, Gate, Operation, OptimizeConfig, Qubit};
use bgls_core::{Simulator, SimulatorOptions};
use bgls_plan::{PlannerConfig, ServiceConfig, SimRequest, SimulationService};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, Criterion};

fn reps() -> u64 {
    if std::env::args().any(|a| a == "--test") {
        10
    } else {
        200
    }
}

fn measured(mut c: Circuit, n: u32) -> Circuit {
    c.push(Operation::measure((0..n).map(Qubit).collect::<Vec<_>>(), "m").unwrap());
    c
}

/// Brickwork with single-qubit dust: per layer, rotations on every
/// qubit followed by an alternating-offset CZ brick. The dust fuses
/// into the bricks, collapsing each (1q, 1q, 2q) cluster to one U4.
fn brickwork(n: u32, layers: u32) -> Circuit {
    let mut c = Circuit::new();
    for layer in 0..layers {
        for q in 0..n {
            c.push(
                Operation::gate(Gate::Ry((0.3 + 0.1 * layer as f64).into()), vec![Qubit(q)])
                    .unwrap(),
            );
            c.push(Operation::gate(Gate::T, vec![Qubit(q)]).unwrap());
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            c.push(Operation::gate(Gate::Cz, vec![Qubit(q), Qubit(q + 1)]).unwrap());
            q += 2;
        }
    }
    measured(c, n)
}

/// T-dusted CNOT ladder: the service bench's unitary non-Clifford
/// workload with a compile-away T-H-T-H dust layer per rung round.
fn t_ladder(n: u32) -> Circuit {
    let mut c = Circuit::new();
    for _ in 0..4 {
        for i in 0..n {
            for gate in [Gate::T, Gate::H, Gate::T, Gate::H] {
                c.push(Operation::gate(gate, vec![Qubit(i)]).unwrap());
            }
        }
        for i in 1..n {
            c.push(Operation::gate(Gate::Cnot, vec![Qubit(i - 1), Qubit(i)]).unwrap());
        }
    }
    measured(c, n)
}

/// One dense run with the in-simulator pipeline toggled; optimization
/// time (when on) is inside the measurement.
fn dense_run(circuit: &Circuit, n: usize, optimize: bool) -> u64 {
    let options = SimulatorOptions {
        seed: Some(7),
        optimize: optimize.then(OptimizeConfig::default),
        ..SimulatorOptions::default()
    };
    let sim = Simulator::new(StateVector::zero(n)).with_options(options);
    sim.run(circuit, reps()).expect("dense run").repetitions()
}

/// Drains a cold, uncached service over the mixed traffic with the
/// planner's optimizer pipeline toggled.
fn serve_uncached(circuits: &[Circuit], optimize: bool) -> u64 {
    let mut svc = SimulationService::new(ServiceConfig {
        cache_capacity: 0,
        planner: PlannerConfig {
            optimize: optimize.then(OptimizeConfig::default),
            ..PlannerConfig::default()
        },
        ..ServiceConfig::default()
    });
    for round in 0..4u64 {
        for c in circuits {
            svc.submit(SimRequest::histogram(c.clone(), reps()).with_seed(round))
                .expect("submit");
        }
    }
    svc.run_all() as u64
}

fn bench_circuit_optimize(c: &mut Criterion) {
    let brick = brickwork(14, 8);
    let ladder = t_ladder(14);
    let mut group = c.benchmark_group("circuit_optimize");
    group.sample_size(5);
    group.bench_function("dense_sweep/brickwork/raw", |b| {
        b.iter(|| dense_run(&brick, 14, false))
    });
    group.bench_function("dense_sweep/brickwork/optimized", |b| {
        b.iter(|| dense_run(&brick, 14, true))
    });
    group.bench_function("dense_sweep/t_ladder/raw", |b| {
        b.iter(|| dense_run(&ladder, 14, false))
    });
    group.bench_function("dense_sweep/t_ladder/optimized", |b| {
        b.iter(|| dense_run(&ladder, 14, true))
    });
    let mix = vec![brick.clone(), ladder.clone()];
    group.bench_function("service_mix/uncached/raw", |b| {
        b.iter(|| serve_uncached(&mix, false))
    });
    group.bench_function("service_mix/uncached/optimized", |b| {
        b.iter(|| serve_uncached(&mix, true))
    });
    group.finish();
}

criterion_group!(benches, bench_circuit_optimize);
criterion_main!(benches);

//! Bench: the batched candidate-probability hot path on the paper's
//! sample-parallelized sampler. A 16-qubit, 40-moment random circuit at
//! 10^5 repetitions saturates the multiplicity map, so runtime is
//! dominated by candidate evaluation and redistribution — exactly what
//! the batched hook, the per-entry RNG streams, and gate fusion target.
//!
//! Configurations:
//! * `scalar`  — the baseline path: per-candidate `compute_probability`
//!   calls, sequential redistribution, no fusion;
//! * `batched` — `probabilities_batch` + (on multi-core hosts) Rayon
//!   redistribution;
//! * `batched_fused` — the full restructured hot path, adding
//!   single-qubit gate fusion.
//!
//! All three produce identically distributed histograms; `scalar` and
//! `batched` are bit-identical under a fixed seed.

use bgls_bench::universal_workload;
use bgls_circuit::{Operation, Qubit};
use bgls_core::{Simulator, SimulatorOptions};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, Criterion};

const QUBITS: usize = 16;
const MOMENTS: usize = 40;
const REPS: u64 = 100_000;

fn options(batch: bool, fuse: bool) -> SimulatorOptions {
    SimulatorOptions {
        seed: Some(7),
        batch_probabilities: batch,
        parallel_redistribution: batch,
        fuse_gates: fuse,
        ..Default::default()
    }
}

fn bench_batch_probability(c: &mut Criterion) {
    let mut circuit = universal_workload(QUBITS, MOMENTS, 42);
    circuit.push(Operation::measure(Qubit::range(QUBITS), "m").unwrap());
    let mut group = c.benchmark_group("batch_probability");
    group.sample_size(2);
    for (label, batch, fuse) in [
        ("scalar", false, false),
        ("batched", true, false),
        ("batched_fused", true, true),
    ] {
        group.bench_function(label, |b| {
            let sim = Simulator::new(StateVector::zero(QUBITS)).with_options(options(batch, fuse));
            b.iter(|| sim.run(&circuit, REPS).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_probability);
criterion_main!(benches);

//! Bench: gate-by-gate (BGLS) vs conventional qubit-by-qubit sampling on
//! the dense state-vector backend (paper Sec. 2 cost comparison).

use bgls_bench::universal_workload;
use bgls_core::{QubitByQubitSimulator, Simulator};
use bgls_statevector::StateVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let circuit = universal_workload(n, 2 * n, 31);
        let reps = 200u64;
        group.bench_with_input(BenchmarkId::new("gate_by_gate", n), &n, |b, _| {
            let sim = Simulator::new(StateVector::zero(n)).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, reps).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("qubit_by_qubit", n), &n, |b, _| {
            let sim = QubitByQubitSimulator::new(StateVector::zero(n)).with_seed(1);
            b.iter(|| sim.sample_final_bitstrings(&circuit, reps).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);

//! Bench-regression smoke for CI.
//!
//! ```text
//! bench_regression [--threshold PCT] [--no-smoke] [--timed NAME]...
//! ```
//!
//! Two phases, both driven by the checked-in `BENCH_*.json` baselines
//! and the `[[bench]]` targets of `crates/bench/Cargo.toml`:
//!
//! 1. **Smoke** (default): every criterion bench target runs once in
//!    `--test` mode (one untimed iteration), so bench code cannot rot
//!    without failing CI.
//! 2. **Regression** (per `--timed NAME`): the named bench runs for
//!    real; every `  label: median X ms` line is matched against the
//!    baseline's `*_ms` entries (a baseline key matches a label when
//!    all of its `_`-separated tokens appear among the label's `/`,
//!    `_`-separated tokens). Any matched measurement more than
//!    `--threshold` percent (default 25) slower than its baseline
//!    fails the run. A first-attempt regression earns one retry (the
//!    per-label minimum across both runs is what's judged), so a
//!    uniformly loaded runner doesn't flag a phantom regression.
//!
//! Baselines recorded on other hosts make absolute comparisons noisy;
//! the threshold is a tripwire for order-of-magnitude rot, not a
//! micro-benchmark gate. Unmatched baseline entries (legacy schemas)
//! are reported but never fatal. Std-only: the JSON reader below
//! understands exactly the house bench-json subset.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};

// ---------------------------------------------------------------- JSON

/// Minimal JSON value for the house bench-json files. Bool and array
/// payloads are parsed for completeness but never consulted.
#[allow(dead_code)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' | b'f' => out.push(' '),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("bad utf-8"))?,
                    );
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage"));
    }
    Ok(v)
}

// ----------------------------------------------------------- baselines

/// One baseline timing: the token set that identifies it and the
/// recorded median milliseconds.
struct BaselineEntry {
    key_path: String,
    tokens: Vec<String>,
    ms: f64,
}

/// Collects every numeric leaf whose key ends in `_ms` (or is
/// `median_ms`), tagging it with the tokens of its path. Structural
/// keys (`results`, `groups`, ...) contribute no tokens.
fn collect_ms(value: &Json, path: &[&str], out: &mut Vec<BaselineEntry>) {
    if let Json::Obj(fields) = value {
        for (key, child) in fields {
            match child {
                Json::Num(ms) if key.ends_with("_ms") || key == "median_ms" => {
                    let mut tokens: Vec<String> = Vec::new();
                    for part in path.iter().copied().chain([key.as_str()]) {
                        if matches!(
                            part,
                            "results" | "groups" | "workloads" | "config" | "median_ms"
                        ) {
                            continue;
                        }
                        tokens.extend(
                            part.split(['_', '/', '.'])
                                .filter(|t| !t.is_empty() && *t != "ms")
                                .map(str::to_lowercase),
                        );
                    }
                    tokens.dedup();
                    out.push(BaselineEntry {
                        key_path: path
                            .iter()
                            .copied()
                            .chain([key.as_str()])
                            .collect::<Vec<_>>()
                            .join("/"),
                        tokens,
                        ms: *ms,
                    });
                }
                _ => {
                    let mut next: Vec<&str> = path.to_vec();
                    next.push(key);
                    collect_ms(child, &next, out);
                }
            }
        }
    }
}

/// Loads `BENCH_<name>.json` from the repo root, keyed by its `bench`
/// field.
fn load_baselines(root: &Path) -> BTreeMap<String, Vec<BaselineEntry>> {
    let mut out = BTreeMap::new();
    let Ok(dir) = fs::read_dir(root) else {
        return out;
    };
    for entry in dir.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = fs::read_to_string(entry.path()) else {
            continue;
        };
        let json = match parse_json(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("warning: {name}: {e}");
                continue;
            }
        };
        let bench = match &json {
            Json::Obj(fields) => fields.iter().find_map(|(k, v)| match v {
                Json::Str(s) if k == "bench" => Some(s.clone()),
                _ => None,
            }),
            _ => None,
        };
        let Some(bench) = bench else {
            eprintln!("warning: {name}: no \"bench\" field");
            continue;
        };
        let mut entries = Vec::new();
        collect_ms(&json, &[], &mut entries);
        out.insert(bench, entries);
    }
    out
}

// ---------------------------------------------------------- cargo glue

/// `[[bench]]` target names from `crates/bench/Cargo.toml`.
fn bench_targets(root: &Path) -> Vec<String> {
    let manifest = root.join("crates/bench/Cargo.toml");
    let text = fs::read_to_string(&manifest)
        .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
    let mut targets = Vec::new();
    let mut in_bench = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_bench = line == "[[bench]]";
        } else if in_bench {
            if let Some(name) = line
                .strip_prefix("name")
                .and_then(|r| r.trim_start().strip_prefix('='))
            {
                targets.push(name.trim().trim_matches('"').to_string());
            }
        }
    }
    targets
}

fn run_bench(root: &Path, name: &str, test_mode: bool) -> Result<String, String> {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args(["bench", "--bench", name]);
    if test_mode {
        cmd.args(["--", "--test"]);
    }
    let out = cmd
        .output()
        .map_err(|e| format!("spawn cargo bench --bench {name}: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "cargo bench --bench {name}{} failed:\n{}",
            if test_mode { " -- --test" } else { "" },
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Parses `  label: median X ms over N samples` lines.
fn parse_medians(stdout: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in stdout.lines() {
        let line = line.trim();
        let Some((label, rest)) = line.split_once(": median ") else {
            continue;
        };
        if let Some(ms) = rest
            .split_whitespace()
            .next()
            .and_then(|v| v.parse::<f64>().ok())
        {
            out.push((label.to_string(), ms));
        }
    }
    out
}

fn label_tokens(label: &str) -> Vec<String> {
    label
        .split(['/', '_', '.', ':'])
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
        .collect()
}

// ---------------------------------------------------------------- main

fn repo_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = <root>/crates/bench when run via cargo.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() {
    let mut threshold_pct = 25.0f64;
    let mut smoke = true;
    let mut timed: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold_pct = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--threshold needs a number");
                    exit(2);
                })
            }
            "--no-smoke" => smoke = false,
            "--timed" => timed.push(args.next().unwrap_or_else(|| {
                eprintln!("--timed needs a bench name");
                exit(2);
            })),
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: bench_regression [--threshold PCT] [--no-smoke] [--timed NAME]..."
                );
                exit(2);
            }
        }
    }

    let root = repo_root();
    let targets = bench_targets(&root);
    let baselines = load_baselines(&root);
    let mut failures: Vec<String> = Vec::new();

    if smoke {
        println!("== smoke: one untimed iteration per bench target");
        for target in &targets {
            match run_bench(&root, target, true) {
                Ok(_) => println!("  {target}: ok"),
                Err(e) => {
                    println!("  {target}: FAILED");
                    failures.push(e);
                }
            }
        }
    }

    for name in &timed {
        println!("== regression: {name} vs BENCH_{name}.json (threshold {threshold_pct}%)");
        let Some(entries) = baselines.get(name) else {
            failures.push(format!("no BENCH_{name}.json baseline found"));
            continue;
        };
        // Best-of-two: a loaded or thermally-throttled runner can slow
        // every label uniformly, so a first-attempt regression earns one
        // retry with the per-label minimum kept across attempts.
        let mut best: Vec<(String, f64)> = Vec::new();
        let mut bench_broken = false;
        for attempt in 0..2 {
            let stdout = match run_bench(&root, name, false) {
                Ok(s) => s,
                Err(e) => {
                    failures.push(e);
                    bench_broken = true;
                    break;
                }
            };
            let medians = parse_medians(&stdout);
            if medians.is_empty() {
                failures.push(format!("{name}: no `median` lines in bench output"));
                bench_broken = true;
                break;
            }
            for (label, ms) in medians {
                match best.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, prev)) => *prev = prev.min(ms),
                    None => best.push((label, ms)),
                }
            }
            let regressed = entries.iter().any(|entry| {
                best.iter().any(|(label, ms)| {
                    let tokens = label_tokens(label);
                    entry.tokens.iter().all(|t| tokens.contains(t))
                        && ms / entry.ms > 1.0 + threshold_pct / 100.0
                })
            });
            if !regressed {
                break;
            }
            if attempt == 0 {
                println!("  (regression on first run — retrying once, keeping per-label minima)");
            }
        }
        if bench_broken {
            continue;
        }
        for entry in entries {
            let hit = best.iter().find(|(label, _)| {
                let tokens = label_tokens(label);
                entry.tokens.iter().all(|t| tokens.contains(t))
            });
            match hit {
                Some((label, ms)) => {
                    let ratio = ms / entry.ms;
                    let verdict = if ratio > 1.0 + threshold_pct / 100.0 {
                        failures.push(format!(
                            "{name}: {label} regressed {ratio:.2}x vs baseline {} ({:.3} ms -> {:.3} ms)",
                            entry.key_path, entry.ms, ms
                        ));
                        "REGRESSED"
                    } else {
                        "ok"
                    };
                    println!(
                        "  {label}: {ms:.3} ms vs baseline {:.3} ms ({ratio:.2}x) {verdict}",
                        entry.ms
                    );
                }
                None => println!(
                    "  (unmatched baseline entry {} — legacy schema, skipped)",
                    entry.key_path
                ),
            }
        }
    }

    if failures.is_empty() {
        println!("bench regression check passed");
    } else {
        eprintln!("\n{} failure(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        exit(1);
    }
}

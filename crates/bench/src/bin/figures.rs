//! Regenerates every figure and table of the BGLS paper (SC-W 2023).
//!
//! ```text
//! figures <fig1|fig2|fig3a|fig3b|fig4a|fig4b|fig5|fig6|fig7a|fig7b|fig8|opt|gbg|all> [--quick]
//! ```
//!
//! Each subcommand prints the series the corresponding paper plot shows;
//! `EXPERIMENTS.md` records paper-vs-measured for every row. `--quick`
//! shrinks the sweeps for smoke-testing.

use bgls_apps::{
    brute_force_maxcut, cut_value, empirical_distribution, ghz_random_cnot_circuit, overlap,
    random_fixed_cnot_circuit, random_fixed_depth_circuit, solve_maxcut_qaoa_mps, Graph,
};
use bgls_bench::{
    clifford_t_workload, clifford_workload, fmt_secs, time_median, universal_workload,
};
use bgls_circuit::{optimize_for_bgls, substitute_gate, Circuit, Gate, Operation, Qubit};
use bgls_core::{QubitByQubitSimulator, Simulator, SimulatorOptions};
use bgls_mps::LazyNetworkState;
use bgls_stabilizer::{near_clifford_simulator, stabilizer_extent_rz, ChForm, TableauSimulator};
use bgls_statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f64::consts::PI;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let run = |name: &str| which == "all" || which == name;

    if run("fig1") {
        fig1();
    }
    if run("fig2") {
        fig2(quick);
    }
    if run("fig3a") {
        fig3a(quick);
    }
    if run("fig3b") {
        fig3b(quick);
    }
    if run("fig4a") {
        fig4a(quick);
    }
    if run("fig4b") {
        fig4b(quick);
    }
    if run("fig5") {
        fig5(quick);
    }
    if run("fig6") {
        fig6(quick);
    }
    if run("fig7a") {
        fig7a(quick);
    }
    if run("fig7b") {
        fig7b(quick);
    }
    if run("fig8") {
        fig8(quick);
    }
    if run("opt") {
        opt_table(quick);
    }
    if run("gbg") {
        gbg_vs_qbq(quick);
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Fig. 1: measurement histogram of the 2-qubit GHZ circuit.
fn fig1() {
    header("Fig 1: GHZ measurement histogram (10 and 1000 repetitions)");
    let mut circuit = Circuit::new();
    circuit.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
    circuit.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
    circuit.push(Operation::measure(Qubit::range(2), "z").unwrap());
    for reps in [10u64, 1000] {
        let sim = Simulator::new(StateVector::zero(2)).with_seed(2023);
        let result = sim.run(&circuit, reps).unwrap();
        let h = result.histogram("z").unwrap();
        println!("repetitions = {reps}:");
        for (bits, count) in h.iter_sorted() {
            println!("  {bits}: {count}");
        }
    }
}

/// Fig. 2: runtime vs repetitions saturates under sample parallelization.
fn fig2(quick: bool) {
    header("Fig 2: sample parallelization saturates runtime at many repetitions");
    let circuit = {
        let mut c = universal_workload(8, if quick { 10 } else { 20 }, 42);
        c.push(Operation::measure(Qubit::range(8), "m").unwrap());
        c
    };
    let max_pow = if quick { 10 } else { 14 };
    println!(
        "{:>8}  {:>10}  {:>10}  {:>10}",
        "reps", "parallel", "per-sample", "ratio"
    );
    for pow in (0..=max_pow).step_by(2) {
        let reps = 1u64 << pow;
        let par = Simulator::new(StateVector::zero(8)).with_seed(7);
        let t_par = time_median(3, || {
            par.run(&circuit, reps).unwrap();
        });
        // per-sample path: disable the multiplicity map
        let seq = Simulator::new(StateVector::zero(8)).with_options(SimulatorOptions {
            seed: Some(7),
            parallelize_samples: false,
            parallel_trajectories: false,
            ..Default::default()
        });
        let t_seq = if reps <= 1 << 10 {
            time_median(1, || {
                seq.run(&circuit, reps).unwrap();
            })
        } else {
            f64::NAN // too slow to run at full reps; the point is made
        };
        println!(
            "{:>8}  {}  {}  {:>9.1}x",
            reps,
            fmt_secs(t_par),
            if t_seq.is_nan() {
                "       (skip)".to_string()
            } else {
                fmt_secs(t_seq)
            },
            t_seq / t_par
        );
    }
}

/// Fig. 3a: Clifford sampling runtime vs circuit depth (CH form).
fn fig3a(quick: bool) {
    header("Fig 3a: Clifford sampling runtime scaling with depth (n = 10)");
    let depths: &[usize] = if quick {
        &[10, 50, 100]
    } else {
        &[10, 25, 50, 100, 200, 400]
    };
    println!("{:>8}  {:>10}  {:>12}", "depth", "bgls(CH)", "tableau-ref");
    for &d in depths {
        let circuit = clifford_workload(10, d, 11);
        let sim = Simulator::new(ChForm::zero(10)).with_seed(3);
        let t = time_median(3, || {
            sim.sample_final_bitstrings(&circuit, 100).unwrap();
        });
        let tab = TableauSimulator::new(10).with_seed(3);
        let tt = time_median(3, || {
            tab.sample(&circuit, 100).unwrap();
        });
        println!("{:>8}  {}  {}", d, fmt_secs(t), fmt_secs(tt));
    }
}

/// Fig. 3b: Clifford sampling runtime vs width (CH form).
fn fig3b(quick: bool) {
    header("Fig 3b: Clifford sampling runtime scaling with width (depth = 100)");
    let widths: &[usize] = if quick {
        &[4, 16, 32]
    } else {
        &[4, 8, 16, 32, 48, 64]
    };
    println!("{:>8}  {:>10}  {:>12}", "width", "bgls(CH)", "tableau-ref");
    for &n in widths {
        let circuit = clifford_workload(n, 100, 13);
        let sim = Simulator::new(ChForm::zero(n)).with_seed(3);
        let t = time_median(3, || {
            sim.sample_final_bitstrings(&circuit, 100).unwrap();
        });
        let tab = TableauSimulator::new(n).with_seed(3);
        let tt = time_median(3, || {
            tab.sample(&circuit, 100).unwrap();
        });
        println!("{:>8}  {}  {}", n, fmt_secs(t), fmt_secs(tt));
    }
}

/// Fig. 4a: overlap vs samples for pure-Clifford and near-Clifford.
fn fig4a(quick: bool) {
    header("Fig 4a: overlap vs samples, pure-Clifford vs near-Clifford (sum-over-Cliffords)");
    let n = 6;
    let (ct, n_t) = clifford_t_workload(n, 20, 8, 5);
    let pure = substitute_gate(&ct, &Gate::T, &Gate::S);
    println!("(circuit: n = {n}, 20 moments, {n_t} T gates)");
    let ideal_t = StateVector::from_circuit(&ct, n)
        .unwrap()
        .born_distribution();
    let ideal_s = StateVector::from_circuit(&pure, n)
        .unwrap()
        .born_distribution();
    let powers: &[u32] = if quick {
        &[4, 7, 10]
    } else {
        &[4, 6, 8, 10, 12, 13]
    };
    println!(
        "{:>8}  {:>14}  {:>14}",
        "samples", "pure-Clifford", "near-Clifford"
    );
    for &p in powers {
        let reps = 1u64 << p;
        let pure_samples = Simulator::new(ChForm::zero(n))
            .with_seed(p as u64)
            .sample_final_bitstrings(&pure, reps)
            .unwrap();
        let ov_pure = overlap(&empirical_distribution(&pure_samples, n), &ideal_s);
        let nc_samples = near_clifford_simulator(n)
            .with_seed(p as u64 + 100)
            .sample_final_bitstrings(&ct, reps)
            .unwrap();
        let ov_nc = overlap(&empirical_distribution(&nc_samples, n), &ideal_t);
        println!("{:>8}  {:>14.4}  {:>14.4}", reps, ov_pure, ov_nc);
    }
}

/// Fig. 4b: overlap vs rotation angle for Clifford+R(theta).
fn fig4b(quick: bool) {
    header("Fig 4b: Clifford+R(theta) overlap vs angle (fixed samples)");
    let n = 6;
    let (ct, _) = clifford_t_workload(n, 20, 6, 9);
    let steps = if quick { 8 } else { 24 };
    let reps = if quick { 512 } else { 2048 };
    println!(
        "{:>10}  {:>10}  {:>12}  {:>10}",
        "theta/pi", "bgls", "exact-sim", "extent"
    );
    for k in 0..=steps {
        let theta = 2.0 * PI * k as f64 / steps as f64;
        let circ = substitute_gate(&ct, &Gate::T, &Gate::Rz(theta.into()));
        let ideal = StateVector::from_circuit(&circ, n)
            .unwrap()
            .born_distribution();
        let nc = near_clifford_simulator(n)
            .with_seed(k as u64)
            .sample_final_bitstrings(&circ, reps)
            .unwrap();
        let ov_nc = overlap(&empirical_distribution(&nc, n), &ideal);
        let exact = Simulator::new(StateVector::zero(n))
            .with_seed(k as u64 + 1)
            .sample_final_bitstrings(&circ, reps)
            .unwrap();
        let ov_exact = overlap(&empirical_distribution(&exact, n), &ideal);
        println!(
            "{:>10.3}  {:>10.4}  {:>12.4}  {:>10.5}",
            theta / PI,
            ov_nc,
            ov_exact,
            stabilizer_extent_rz(theta)
        );
    }
}

/// Fig. 5: overlap decays as more T gates replace Clifford gates.
fn fig5(quick: bool) {
    header("Fig 5: sum-over-Cliffords overlap vs number of T gates (100-moment circuit)");
    let n = 8;
    let reps = if quick { 512 } else { 2048 };
    let counts: &[usize] = if quick {
        &[0, 4, 12]
    } else {
        &[0, 2, 4, 6, 8, 12, 16, 24]
    };
    println!("{:>8}  {:>10}", "#T", "overlap");
    for &k in counts {
        let (circ, made) = clifford_t_workload(n, 100, k, 21);
        assert_eq!(made, k);
        let ideal = StateVector::from_circuit(&circ, n)
            .unwrap()
            .born_distribution();
        let samples = near_clifford_simulator(n)
            .with_seed(k as u64)
            .sample_final_bitstrings(&circ, reps)
            .unwrap();
        let ov = overlap(&empirical_distribution(&samples, n), &ideal);
        println!("{:>8}  {:>10.4}", k, ov);
    }
}

/// Fig. 6: GHZ with random CNOT sequencing — MPS vs state vector, both
/// scale exponentially with width.
fn fig6(quick: bool) {
    header("Fig 6: random-CNOT GHZ sampling runtime, lazy MPS vs state vector");
    let widths: Vec<usize> = if quick {
        vec![4, 8, 12]
    } else {
        (2..=18).step_by(2).collect()
    };
    let reps = 50;
    println!("{:>8}  {:>10}  {:>10}", "width", "mps", "statevec");
    for &n in &widths {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let circuit = ghz_random_cnot_circuit(n, &mut rng);
        let t_mps = time_median(1, || {
            Simulator::new(LazyNetworkState::zero(n))
                .with_seed(1)
                .sample_final_bitstrings(&circuit, reps)
                .unwrap();
        });
        let t_sv = time_median(1, || {
            Simulator::new(StateVector::zero(n))
                .with_seed(1)
                .sample_final_bitstrings(&circuit, reps)
                .unwrap();
        });
        println!("{:>8}  {}  {}", n, fmt_secs(t_mps), fmt_secs(t_sv));
    }
}

/// Fig. 7a: fixed-depth random circuits — MPS much faster than the state
/// vector as width grows.
fn fig7a(quick: bool) {
    header("Fig 7a: fixed-depth random circuits, lazy MPS vs state vector");
    let widths: Vec<usize> = if quick {
        vec![6, 12]
    } else {
        vec![4, 8, 12, 16, 20, 24]
    };
    let reps = 50;
    println!("{:>8}  {:>10}  {:>10}", "width", "mps", "statevec");
    for &n in &widths {
        let mut rng = StdRng::seed_from_u64(n as u64 + 50);
        let circuit = random_fixed_depth_circuit(n, 4, 2, &mut rng);
        let t_mps = time_median(1, || {
            Simulator::new(LazyNetworkState::zero(n))
                .with_seed(1)
                .sample_final_bitstrings(&circuit, reps)
                .unwrap();
        });
        let sv = if n <= 20 {
            fmt_secs(time_median(1, || {
                Simulator::new(StateVector::zero(n))
                    .with_seed(1)
                    .sample_final_bitstrings(&circuit, reps)
                    .unwrap();
            }))
        } else {
            "   (too big)".to_string()
        };
        println!("{:>8}  {}  {}", n, fmt_secs(t_mps), sv);
    }
}

/// Fig. 7b: fixed number of CNOTs — near-linear MPS scaling with width.
fn fig7b(quick: bool) {
    header("Fig 7b: fixed-CNOT-count random circuits, lazy MPS runtime vs width");
    let widths: Vec<usize> = if quick {
        vec![8, 24, 48]
    } else {
        (8..=64).step_by(8).collect()
    };
    let reps = 50;
    println!("{:>8}  {:>10}", "width", "mps");
    for &n in &widths {
        let mut rng = StdRng::seed_from_u64(n as u64 + 99);
        let circuit = random_fixed_cnot_circuit(n, 2, 8, &mut rng);
        let t = time_median(1, || {
            Simulator::new(LazyNetworkState::zero(n))
                .with_seed(1)
                .sample_final_bitstrings(&circuit, reps)
                .unwrap();
        });
        println!("{:>8}  {}", n, fmt_secs(t));
    }
}

/// Figs. 8–9: QAOA MaxCut on G(10, 0.3) with a chi-capped chain MPS.
fn fig8(quick: bool) {
    header("Figs 8-9: QAOA MaxCut on Erdos-Renyi G(10, 0.3), 1 layer, chi-capped MPS");
    let mut rng = StdRng::seed_from_u64(2023);
    let graph = Graph::erdos_renyi(10, 0.3, &mut rng);
    println!(
        "graph: {} vertices, {} edges: {:?}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.edges()
    );
    let (opt_bits, opt_cut) = brute_force_maxcut(&graph);
    let (grid, sweep_samples, final_samples) = if quick { (4, 50, 200) } else { (10, 100, 1000) };
    let sol = solve_maxcut_qaoa_mps(&graph, 16, grid, sweep_samples, final_samples, 17).unwrap();
    println!(
        "sweep: {} configurations x {} samples, best (gamma, beta) = ({:.3}, {:.3}), mean cut {:.3}",
        sol.sweep.sweep.len(),
        sweep_samples,
        sol.sweep.best_params.0,
        sol.sweep.best_params.1,
        sol.sweep.best_mean_cut
    );
    println!(
        "solution: partition {} with cut {} (brute-force optimum: {} at {})",
        sol.partition, sol.cut, opt_cut, opt_bits
    );
    assert_eq!(cut_value(&graph, sol.partition), sol.cut);
}

/// Docs "tips" table: optimize_for_bgls speedup on random 8-qubit circuits.
fn opt_table(quick: bool) {
    header("Optimization table: optimize_for_bgls speedup (random 8-qubit circuits)");
    let layers: &[usize] = if quick {
        &[10, 50]
    } else {
        &[10, 20, 30, 40, 50]
    };
    let reps = 200u64;
    println!(
        "{:>8}  {:>6} {:>6}  {:>10}  {:>10}  {:>8}",
        "layers", "ops", "ops'", "raw", "optimized", "speedup"
    );
    for &l in layers {
        let circuit = universal_workload(8, l, 77);
        let opt = optimize_for_bgls(&circuit);
        let sim = Simulator::new(StateVector::zero(8)).with_seed(5);
        let t_raw = time_median(3, || {
            sim.sample_final_bitstrings(&circuit, reps).unwrap();
        });
        let t_opt = time_median(3, || {
            sim.sample_final_bitstrings(&opt, reps).unwrap();
        });
        println!(
            "{:>8}  {:>6} {:>6}  {}  {}  {:>7.2}x",
            l,
            circuit.num_operations(),
            opt.num_operations(),
            fmt_secs(t_raw),
            fmt_secs(t_opt),
            t_raw / t_opt
        );
    }
}

/// Sec. 2 claim: gate-by-gate vs qubit-by-qubit sampling cost.
fn gbg_vs_qbq(quick: bool) {
    header("Sec 2: gate-by-gate vs qubit-by-qubit sampling (dense state vector)");
    let widths: &[usize] = if quick { &[6, 10] } else { &[6, 8, 10, 12, 14] };
    // Many repetitions: the conventional sampler pays n marginal sums per
    // sample while the gate-by-gate multiplicity map saturates (Fig. 2).
    let reps = if quick { 200u64 } else { 1000 };
    println!(
        "{:>8}  {:>12}  {:>12}  {:>8}",
        "width", "gate-by-gate", "qubit-by-qubit", "ratio"
    );
    for &n in widths {
        let circuit = universal_workload(n, 2 * n, 31);
        let gbg = Simulator::new(StateVector::zero(n)).with_seed(1);
        let t_gbg = time_median(3, || {
            gbg.sample_final_bitstrings(&circuit, reps).unwrap();
        });
        let qbq = QubitByQubitSimulator::new(StateVector::zero(n)).with_seed(1);
        let t_qbq = time_median(3, || {
            qbq.sample_final_bitstrings(&circuit, reps).unwrap();
        });
        println!(
            "{:>8}  {:>12}  {:>14}  {:>7.2}x",
            n,
            fmt_secs(t_gbg),
            fmt_secs(t_qbq),
            t_qbq / t_gbg
        );
    }
}

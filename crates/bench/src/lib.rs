//! Shared workload builders and timing helpers for the benchmark harness
//! (criterion benches and the `figures` binary).

#![warn(missing_docs)]

use bgls_circuit::{
    generate_random_circuit, replace_single_qubit_gates, Circuit, Gate, RandomCircuitParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Wall-clock seconds of one invocation of `f`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Median wall-clock seconds over `trials` invocations (first run
/// discarded as warmup when `trials > 1`).
pub fn time_median(trials: usize, mut f: impl FnMut()) -> f64 {
    assert!(trials >= 1);
    if trials > 1 {
        f(); // warmup
    }
    let mut times: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// A seeded random H/S/CNOT Clifford circuit (the Fig. 3 workload).
pub fn clifford_workload(qubits: usize, moments: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_random_circuit(&RandomCircuitParams::clifford(qubits, moments), &mut rng)
}

/// A seeded random Clifford circuit with exactly `n_t` single-qubit gates
/// replaced by T (the Figs. 4–5 workload). Returns the circuit and the
/// number of substitutions actually made.
pub fn clifford_t_workload(
    qubits: usize,
    moments: usize,
    n_t: usize,
    seed: u64,
) -> (Circuit, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = generate_random_circuit(&RandomCircuitParams::clifford(qubits, moments), &mut rng);
    replace_single_qubit_gates(&base, &Gate::T, n_t, &mut rng)
}

/// A seeded random circuit over a universal gate set for the
/// sample-parallelization and optimizer benches.
pub fn universal_workload(qubits: usize, moments: usize, seed: u64) -> Circuit {
    let params = RandomCircuitParams {
        qubits,
        moments,
        op_density: 1.0,
        gate_set: vec![
            Gate::H,
            Gate::T,
            Gate::S,
            Gate::SqrtX,
            Gate::X,
            Gate::Cnot,
            Gate::Cz,
        ],
    };
    let mut rng = StdRng::seed_from_u64(seed);
    generate_random_circuit(&params, &mut rng)
}

/// Formats seconds in engineering style for the figure tables.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:8.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2}ms", s * 1e3)
    } else {
        format!("{:8.3}s ", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clifford_workload_is_clifford() {
        let c = clifford_workload(6, 20, 1);
        assert!(c.is_clifford());
    }

    #[test]
    fn clifford_t_workload_injects_t() {
        let (c, n) = clifford_t_workload(6, 20, 5, 1);
        assert_eq!(n, 5);
        assert_eq!(c.count_ops_where(|op| op.as_gate() == Some(&Gate::T)), 5);
    }

    #[test]
    fn time_median_is_positive() {
        let t = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(0.5e-4).contains("us"));
        assert!(fmt_secs(0.5e-1).contains("ms"));
        assert!(fmt_secs(2.0).contains("s"));
    }
}

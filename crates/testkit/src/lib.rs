//! # bgls-testkit
//!
//! Support module for the cross-backend conformance battery: one
//! declarative list of circuit classes, an explicit capability matrix
//! saying which [`BackendKind`] claims which class, deterministic
//! circuit builders per class, exact reference distributions computed
//! through the expectation frontier (so mid-circuit measurements and
//! channels are handled exactly, never sampled), and FNV-1a digests of
//! sampling runs for bit-identity assertions.
//!
//! The battery itself lives in the workspace-level `tests/conformance.rs`;
//! this crate only provides the declarative pieces so other suites
//! (property tests, benches, fault-injection) can reuse the same
//! circuits and capability claims instead of re-deriving them.

#![warn(missing_docs)]

use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{
    generate_random_circuit, Channel, Circuit, Gate, Operation, PauliOp, PauliString, PauliSum,
    Qubit, RandomCircuitParams,
};
use bgls_core::{BitString, SimError, Simulator, SimulatorOptions};
use bgls_linalg::C64;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The circuit families of the conformance battery. Every backend that
/// [`supports`] a class must reproduce the exact reference behaviour on
/// that class's circuits — expectation values to 1e-10, sampling
/// histograms to a chi-squared fit, and seed-determinism bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CircuitClass {
    /// Random Clifford circuits: every backend participates, including
    /// the stabilizer pair (CH form, tableau).
    Clifford,
    /// Random universal circuits (T, rotations, Rzz) over 1q/2q gates.
    Universal,
    /// A GHZ-style entangler with sparse single-qubit Kraus channels.
    Noisy,
    /// Clifford circuit with physical mid-circuit measurements (later
    /// gates act on the measured qubits, so the collapse is physical).
    MidCircuit,
    /// A channel after every entangling layer on every qubit — the
    /// trajectory-forking stress case that purified MPS and density
    /// matrices absorb deterministically.
    ChannelHeavy,
}

impl CircuitClass {
    /// Every class, in battery order.
    pub fn all() -> [CircuitClass; 5] {
        [
            CircuitClass::Clifford,
            CircuitClass::Universal,
            CircuitClass::Noisy,
            CircuitClass::MidCircuit,
            CircuitClass::ChannelHeavy,
        ]
    }

    /// Stable lowercase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CircuitClass::Clifford => "clifford",
            CircuitClass::Universal => "universal",
            CircuitClass::Noisy => "noisy",
            CircuitClass::MidCircuit => "mid-circuit",
            CircuitClass::ChannelHeavy => "channel-heavy",
        }
    }
}

impl std::fmt::Display for CircuitClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every *exact* backend configuration under conformance test: the
/// runtime-dispatch set ([`BackendKind::all`]) plus the two kinds it
/// deliberately omits — the Clifford tableau and the purified MPS —
/// each uncapped so agreement is exact, not approximate.
pub fn backends_under_test() -> Vec<BackendKind> {
    let mut kinds = BackendKind::all();
    kinds.push(BackendKind::Tableau);
    kinds.push(BackendKind::PurifiedMps {
        chi: None,
        kraus_dim: None,
    });
    kinds
}

/// The capability matrix: does `kind` claim conformance on `class`?
///
/// Claims are intentionally explicit rather than probed at runtime, so
/// a backend silently losing a capability fails the battery instead of
/// silently shrinking it:
///
/// * the CH form is Clifford-only and has no projective collapse;
/// * the tableau adds mid-circuit collapse but still no channels and no
///   non-Clifford gates;
/// * the chain MPS, lazy network, and state vector run channels as
///   stochastic trajectories; the density matrix and purified MPS run
///   them deterministically — all five claim the noisy classes.
pub fn supports(kind: BackendKind, class: CircuitClass) -> bool {
    let stabilizer = matches!(kind, BackendKind::ChForm | BackendKind::Tableau);
    match class {
        CircuitClass::Clifford => true,
        CircuitClass::Universal => !stabilizer,
        CircuitClass::Noisy | CircuitClass::ChannelHeavy => !stabilizer,
        CircuitClass::MidCircuit => !matches!(kind, BackendKind::ChForm),
    }
}

/// Deterministic battery circuit for `class` on `n` qubits. Circuits
/// carry no final measurement; samplers append their own readout and
/// the expectation checks run on the bare circuit.
pub fn circuit_for(class: CircuitClass, n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    match class {
        CircuitClass::Clifford => {
            generate_random_circuit(&RandomCircuitParams::clifford(n, 3 * n), &mut rng)
        }
        CircuitClass::Universal => {
            let params = RandomCircuitParams {
                qubits: n,
                moments: 2 * n,
                op_density: 0.9,
                gate_set: vec![
                    Gate::H,
                    Gate::T,
                    Gate::Ry(0.7.into()),
                    Gate::Rz((-0.3).into()),
                    Gate::Cnot,
                    Gate::Cz,
                    Gate::Rzz(0.5.into()),
                ],
            };
            generate_random_circuit(&params, &mut rng)
        }
        CircuitClass::Noisy => {
            let mut c = Circuit::new();
            c.push(gate(Gate::H, &[0]));
            for q in 1..n {
                c.push(gate(Gate::Cnot, &[q - 1, q]));
            }
            // Mixed-unitary channels only: gate-by-gate sampling keeps
            // its tracked bitstring consistent through unitary Kraus
            // jumps, while a non-unitary jump (amplitude damping) can
            // zero every candidate. Amplitude-damping agreement is
            // covered by the purified-MPS/density property tests, which
            // compare states, not sampled paths.
            c.push(channel(Channel::depolarizing(0.1).unwrap(), &[0]));
            c.push(channel(Channel::phase_flip(0.15).unwrap(), &[n / 2]));
            c.push(gate(Gate::Ry(0.4.into()), &[n - 1]));
            c.push(channel(Channel::bit_flip(0.05).unwrap(), &[n - 1]));
            c.push(gate(Gate::Cnot, &[0, n - 1]));
            c
        }
        CircuitClass::MidCircuit => {
            let mut c = Circuit::new();
            for op in generate_random_circuit(&RandomCircuitParams::clifford(n, n), &mut rng)
                .all_operations()
            {
                c.push(op.clone());
            }
            // Physical collapse: both measured qubits see later gates.
            c.push(Operation::measure(vec![Qubit(0)], "m0").unwrap());
            c.push(gate(Gate::H, &[0]));
            c.push(gate(Gate::Cnot, &[0, 1]));
            c.push(Operation::measure(vec![Qubit(1)], "m1").unwrap());
            c.push(gate(Gate::S, &[1]));
            c.push(gate(Gate::Cz, &[1, n - 1]));
            c
        }
        CircuitClass::ChannelHeavy => {
            let mut c = Circuit::new();
            for layer in 0..2 {
                for q in 0..n {
                    let angle = 0.3 + 0.1 * (q + layer * n) as f64;
                    c.push(gate(Gate::Ry(angle.into()), &[q]));
                }
                for q in (layer % 2..n.saturating_sub(1)).step_by(2) {
                    c.push(gate(Gate::Cnot, &[q, q + 1]));
                }
                // a channel on every qubit, every layer
                for q in 0..n {
                    let ch = if (q + layer) % 2 == 0 {
                        Channel::bit_flip(0.08).unwrap()
                    } else {
                        Channel::phase_flip(0.12).unwrap()
                    };
                    c.push(channel(ch, &[q]));
                }
            }
            c
        }
    }
}

/// Observables every class is scored on: single-site, two-site, the
/// full Z string, and a mixed multi-term sum with a constant offset.
pub fn observables_for(n: usize) -> Vec<PauliSum> {
    let mut z0 = PauliSum::new();
    z0.add_term(C64::ONE, pauli(&[(0, PauliOp::Z)]));
    let mut zz = PauliSum::new();
    zz.add_term(C64::ONE, pauli(&[(0, PauliOp::Z), (1, PauliOp::Z)]));
    let mut zstring = PauliSum::new();
    zstring.add_term(
        C64::ONE,
        pauli(&(0..n).map(|q| (q, PauliOp::Z)).collect::<Vec<_>>()),
    );
    let mut mixed = PauliSum::new();
    mixed.add_term(C64::real(0.75), pauli(&[(0, PauliOp::X)]));
    mixed.add_term(
        C64::real(-0.25),
        pauli(&[(1, PauliOp::Z), (n - 1, PauliOp::Z)]),
    );
    mixed.add_term(C64::real(0.5), pauli(&[]));
    vec![z0, zz, zstring, mixed]
}

/// Exact expectation of `observable` after `circuit` on backend `kind`,
/// through the runtime dispatch layer. `max_forest_nodes` bounds the
/// exact frontier for trajectory backends (deterministic-channel
/// backends never fork on channels and ignore the headroom).
pub fn expectation_on(
    kind: BackendKind,
    circuit: &Circuit,
    n: usize,
    observable: &PauliSum,
    max_forest_nodes: usize,
) -> Result<f64, SimError> {
    let opts = SimulatorOptions {
        max_forest_nodes,
        ..Default::default()
    };
    Simulator::for_backend(kind, n, opts).expectation_value(circuit, observable)
}

/// The Z-basis projector `|bits><bits|` as a `2^n`-term Pauli sum:
/// `prod_i (I + s_i Z_i) / 2` with `s_i = +1` for bit 0, `-1` for bit 1
/// (bit `i` of `bits` = qubit `i`, the [`BitString`] convention).
pub fn zbasis_projector(n: usize, bits: u64) -> PauliSum {
    let mut sum = PauliSum::new();
    let scale = 1.0 / (1u64 << n) as f64;
    for mask in 0u64..(1 << n) {
        let mut coeff = scale;
        let mut ops = Vec::new();
        for (q, s) in (0..n).map(|q| (q, (bits >> q) & 1)) {
            if (mask >> q) & 1 == 1 {
                ops.push((q, PauliOp::Z));
                if s == 1 {
                    coeff = -coeff;
                }
            }
        }
        sum.add_term(C64::real(coeff), pauli(&ops));
    }
    sum
}

/// The exact final Z-basis distribution of `circuit`, computed on the
/// density-matrix backend through the exact expectation frontier — so
/// Kraus channels contribute their full mixture and mid-circuit
/// measurements fork exactly, with no sampling anywhere. This is the
/// battery's reference for every chi-squared fit. Exponential in `n`;
/// keep `n` small.
pub fn exact_distribution(circuit: &Circuit, n: usize) -> Vec<f64> {
    (0..1u64 << n)
        .map(|bits| {
            expectation_on(
                BackendKind::DensityMatrix,
                circuit,
                n,
                &zbasis_projector(n, bits),
                1 << 12,
            )
            .expect("density matrix serves every battery circuit")
            .max(0.0)
        })
        .collect()
}

/// Runs `circuit` on `kind` with a full-width readout appended and
/// returns the final-measurement counts per basis state, through
/// [`bgls_core::Simulator::run`] — the one path that collapses
/// mid-circuit measurements physically (the bare bitstring sampler
/// strips measurement operations entirely).
pub fn sample_counts(
    kind: BackendKind,
    circuit: &Circuit,
    n: usize,
    reps: u64,
    opts: SimulatorOptions,
) -> Result<Vec<u64>, SimError> {
    let mut measured = circuit.clone();
    measured.push(Operation::measure(Qubit::range(n), "conf").unwrap());
    let result = Simulator::for_backend(kind, n, opts).run(&measured, reps)?;
    let h = result
        .histogram("conf")
        .expect("appended readout key must be recorded");
    Ok((0..1u64 << n).map(|v| h.count_value(v)).collect())
}

/// Folds a seeded sampling run into an FNV-1a digest of its histogram —
/// the unit of the battery's bit-identity assertions (same seed, any
/// parallelism knobs or thread count, same digest).
pub fn sample_digest(
    kind: BackendKind,
    circuit: &Circuit,
    n: usize,
    reps: u64,
    opts: SimulatorOptions,
) -> Result<u64, SimError> {
    let counts = sample_counts(kind, circuit, n, reps, opts)?;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in &counts {
        fnv1a(&mut h, c);
    }
    Ok(h)
}

/// FNV-1a over a sample vector: order-sensitive, so equal digests mean
/// the *sequence* of outcomes matched bit for bit.
pub fn digest_samples(samples: &[BitString]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut h, samples.len() as u64);
    for b in samples {
        fnv1a(&mut h, b.as_u64());
    }
    h
}

fn fnv1a(h: &mut u64, v: u64) {
    for byte in v.to_le_bytes() {
        *h ^= byte as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn gate(g: Gate, qs: &[usize]) -> Operation {
    Operation::gate(g, qs.iter().map(|&q| Qubit(q as u32)).collect::<Vec<_>>()).unwrap()
}

fn channel(ch: Channel, qs: &[usize]) -> Operation {
    Operation::channel(ch, qs.iter().map(|&q| Qubit(q as u32)).collect::<Vec<_>>()).unwrap()
}

fn pauli(ops: &[(usize, PauliOp)]) -> PauliString {
    PauliString::from_ops(ops.iter().copied()).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_backend_contracts() {
        // Stabilizer backends never claim channel classes; everything
        // claims Clifford; only the CH form sits out mid-circuit.
        for kind in backends_under_test() {
            assert!(supports(kind, CircuitClass::Clifford), "{kind}");
        }
        assert!(!supports(BackendKind::ChForm, CircuitClass::Universal));
        assert!(!supports(BackendKind::Tableau, CircuitClass::Noisy));
        assert!(!supports(BackendKind::ChForm, CircuitClass::MidCircuit));
        assert!(supports(BackendKind::Tableau, CircuitClass::MidCircuit));
        assert!(supports(
            BackendKind::PurifiedMps {
                chi: None,
                kraus_dim: None
            },
            CircuitClass::ChannelHeavy
        ));
    }

    #[test]
    fn battery_circuits_are_deterministic_and_classed() {
        for class in CircuitClass::all() {
            let a = circuit_for(class, 4, 7);
            let b = circuit_for(class, 4, 7);
            assert_eq!(a, b, "{class}: builder must be a pure function");
            let has_channels = a.has_channels();
            match class {
                CircuitClass::Noisy | CircuitClass::ChannelHeavy => {
                    assert!(has_channels, "{class} must carry channels")
                }
                _ => assert!(!has_channels, "{class} must be channel-free"),
            }
        }
        assert!(circuit_for(CircuitClass::MidCircuit, 4, 7)
            .all_operations()
            .any(|op| op.is_measurement()));
    }

    #[test]
    fn projectors_partition_unity() {
        // Summing |b><b| over all b is the identity, so the exact
        // distribution must sum to 1 on a noisy circuit.
        let n = 3;
        let circuit = circuit_for(CircuitClass::Noisy, n, 11);
        let dist = exact_distribution(&circuit, n);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        assert!(dist.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn digests_are_order_sensitive_and_seed_stable() {
        let n = 3;
        let circuit = circuit_for(CircuitClass::Clifford, n, 3);
        let opts = SimulatorOptions {
            seed: Some(5),
            ..Default::default()
        };
        let a = sample_digest(BackendKind::StateVector, &circuit, n, 500, opts.clone()).unwrap();
        let b = sample_digest(BackendKind::StateVector, &circuit, n, 500, opts).unwrap();
        assert_eq!(a, b, "same seed must reproduce the digest");
        let x = BitString::from_u64(2, 1);
        let y = BitString::from_u64(2, 2);
        assert_ne!(
            digest_samples(&[x, y]),
            digest_samples(&[y, x]),
            "digest must see sample order"
        );
    }
}

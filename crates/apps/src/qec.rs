//! Repetition-code quantum-error-correction scenario.
//!
//! A distance-`d` bit-flip repetition code: `d` data qubits protected
//! against X errors, `d - 1` ancilla qubits extracting the adjacent-pair
//! parities each cycle. The workload exercises the stabilizer backends
//! at scale (a distance-51 memory is a 101-qubit experiment) while
//! staying classically checkable end to end: error injection is
//! *compiled in* as explicit seeded `X` gates — the stabilizer backends
//! reject channels, and a fixed error pattern makes every syndrome
//! deterministic and every decode reproducible.
//!
//! Layout: data qubits `0..d`, ancilla qubit `d + i` measuring the
//! parity of data pair `(i, i + 1)`. Ancillas are never reset; each
//! cycle's readout therefore records the *running* parity, which is
//! just as deterministic and keeps the circuit pure-Clifford.
//!
//! Two drivers share the exact same seeded error stream:
//!
//! * [`run_memory_tableau`] steps a raw [`CliffordTableau`] — no
//!   bitstring-width ceiling, so 100+-qubit memories are routine;
//! * [`run_memory`] runs [`RepetitionCode::memory_circuit`] through the
//!   generic simulator on any backend (up to the 64-qubit readout
//!   width), which is what the cross-backend determinism tests compare.

use bgls_backend::{BackendKind, SimulatorExt};
use bgls_circuit::{Circuit, Gate, Operation, Qubit};
use bgls_core::{RunResult, SimError, Simulator, SimulatorOptions};
use bgls_stabilizer::CliffordTableau;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distance-`d`, `cycles`-round repetition-code memory experiment.
#[derive(Clone, Copy, Debug)]
pub struct RepetitionCode {
    /// Code distance: number of data qubits (odd, at least 3, so
    /// majority vote is well defined).
    pub distance: usize,
    /// Number of syndrome-extraction rounds.
    pub cycles: usize,
}

/// The readouts of one memory run: per-cycle ancilla parities plus the
/// final data measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemoryOutcome {
    /// `cycles` rows of `d - 1` running parities.
    pub syndromes: Vec<Vec<bool>>,
    /// Final readout of the `d` data qubits.
    pub data: Vec<bool>,
}

impl MemoryOutcome {
    /// Order-sensitive FNV-1a digest of every recorded bit — two runs
    /// of the same seeded experiment must produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut fold = |bit: bool| {
            h ^= u64::from(bit) + 1;
            h = h.wrapping_mul(0x100000001b3);
        };
        for row in &self.syndromes {
            for &b in row {
                fold(b);
            }
        }
        for &b in &self.data {
            fold(b);
        }
        h
    }
}

impl RepetitionCode {
    /// A `d`-distance code with the given number of rounds.
    pub fn new(distance: usize, cycles: usize) -> Self {
        assert!(distance >= 3, "distance must be at least 3");
        assert!(distance % 2 == 1, "distance must be odd for majority vote");
        assert!(cycles >= 1, "need at least one cycle");
        RepetitionCode { distance, cycles }
    }

    /// Total qubit count: `d` data plus `d - 1` ancilla.
    pub fn n_qubits(&self) -> usize {
        2 * self.distance - 1
    }

    /// The measurement key recording cycle `c`'s ancilla readout.
    pub fn syndrome_key(cycle: usize) -> String {
        format!("s{cycle}")
    }

    /// The seeded X-error pattern for one cycle: one draw per data
    /// qubit, in qubit order. Both drivers consume the stream through
    /// this single definition, so their error patterns are identical.
    fn cycle_errors(&self, p_error: f64, rng: &mut impl Rng) -> Vec<bool> {
        (0..self.distance)
            .map(|_| rng.gen::<f64>() < p_error)
            .collect()
    }

    /// The full memory circuit on `|0..0>`: per cycle, seeded X-error
    /// injection on every data qubit with probability `p_error`, CNOT
    /// syndrome extraction onto the ancillas, and an ancilla readout
    /// keyed [`Self::syndrome_key`]; finally the data qubits are read
    /// out under the `"data"` key.
    pub fn memory_circuit(&self, p_error: f64, rng: &mut impl Rng) -> Circuit {
        assert!((0.0..=1.0).contains(&p_error), "p_error is a probability");
        let d = self.distance;
        let mut c = Circuit::new();
        for cycle in 0..self.cycles {
            for (q, flip) in self.cycle_errors(p_error, rng).into_iter().enumerate() {
                if flip {
                    c.push(Operation::gate(Gate::X, vec![Qubit(q as u32)]).expect("1q"));
                }
            }
            let ancillas: Vec<Qubit> = (0..d - 1).map(|i| Qubit((d + i) as u32)).collect();
            for i in 0..d - 1 {
                let anc = Qubit((d + i) as u32);
                c.push(Operation::gate(Gate::Cnot, vec![Qubit(i as u32), anc]).expect("2q"));
                c.push(Operation::gate(Gate::Cnot, vec![Qubit(i as u32 + 1), anc]).expect("2q"));
            }
            c.push(
                Operation::measure(ancillas, &Self::syndrome_key(cycle)).expect("ancilla readout"),
            );
        }
        let data: Vec<Qubit> = (0..d).map(|q| Qubit(q as u32)).collect();
        c.push(Operation::measure(data, "data").expect("data readout"));
        c
    }

    /// Majority-vote decode of a data readout: `true` means the decoder
    /// declares a logical flip (more than half the data qubits read 1).
    pub fn decode_logical_flip(&self, data: &[bool]) -> bool {
        assert_eq!(data.len(), self.distance);
        data.iter().filter(|&&b| b).count() > self.distance / 2
    }
}

/// One seeded memory run stepping a raw [`CliffordTableau`] — the
/// scale path, with no readout-width ceiling (a distance-51 memory is
/// 101 qubits). Every measurement here is on a computational basis
/// state, so the outcomes are deterministic; the rng passed to
/// [`CliffordTableau::measure`] is never consulted.
pub fn run_memory_tableau(
    code: &RepetitionCode,
    p_error: f64,
    seed: u64,
) -> Result<MemoryOutcome, SimError> {
    assert!((0.0..=1.0).contains(&p_error), "p_error is a probability");
    let d = code.distance;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mrng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let mut t = CliffordTableau::zero(code.n_qubits());
    let mut syndromes = Vec::with_capacity(code.cycles);
    for _ in 0..code.cycles {
        for (q, flip) in code.cycle_errors(p_error, &mut rng).into_iter().enumerate() {
            if flip {
                t.apply_gate(&Gate::X, &[q])?;
            }
        }
        for i in 0..d - 1 {
            t.cnot(i, d + i)?;
            t.cnot(i + 1, d + i)?;
        }
        let row: Vec<bool> = (0..d - 1)
            .map(|i| t.measure(d + i, &mut mrng))
            .collect::<Result<_, _>>()?;
        syndromes.push(row);
    }
    let data: Vec<bool> = (0..d)
        .map(|q| t.measure(q, &mut mrng))
        .collect::<Result<_, _>>()?;
    Ok(MemoryOutcome { syndromes, data })
}

/// One seeded memory run of [`RepetitionCode::memory_circuit`] through
/// the generic simulator on `backend` — the cross-backend path (readout
/// width caps it at 64 qubits, i.e. distance 32).
pub fn run_memory(
    code: &RepetitionCode,
    p_error: f64,
    seed: u64,
    backend: BackendKind,
) -> Result<RunResult, SimError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let circuit = code.memory_circuit(p_error, &mut rng);
    let sim = Simulator::for_backend(
        backend,
        code.n_qubits(),
        SimulatorOptions {
            seed: Some(seed),
            ..Default::default()
        },
    );
    sim.run(&circuit, 1)
}

/// Monte-Carlo logical error rate: the fraction of `trials`
/// independently-seeded memory runs whose majority-vote decode declares
/// a logical flip. Runs on the raw tableau, so distances well past the
/// state-vector limit stay cheap.
pub fn logical_error_rate(
    code: &RepetitionCode,
    p_error: f64,
    trials: u64,
    seed: u64,
) -> Result<f64, SimError> {
    let mut flips = 0u64;
    for t in 0..trials {
        let outcome = run_memory_tableau(code, p_error, seed.wrapping_add(t))?;
        if code.decode_logical_flip(&outcome.data) {
            flips += 1;
        }
    }
    Ok(flips as f64 / trials as f64)
}

/// Order-sensitive digest of every syndrome histogram in a
/// circuit-driver run ([`run_memory`]) — comparable across backends and
/// across repeats, like [`MemoryOutcome::digest`] for the raw-tableau
/// driver.
pub fn syndrome_digest(code: &RepetitionCode, result: &RunResult) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for cycle in 0..code.cycles {
        let hist = result
            .histogram(&RepetitionCode::syndrome_key(cycle))
            .expect("syndrome recorded every cycle");
        fold(cycle as u64);
        for (outcome, count) in hist.iter_sorted() {
            fold(outcome.as_u64());
            fold(count);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_core::BitString;

    #[test]
    fn noiseless_memory_decodes_to_the_identity() {
        let code = RepetitionCode::new(5, 3);
        let outcome = run_memory_tableau(&code, 0.0, 7).unwrap();
        assert!(outcome.data.iter().all(|&b| !b), "no errors, no flips");
        assert!(!code.decode_logical_flip(&outcome.data));
        assert!(
            outcome.syndromes.iter().flatten().all(|&b| !b),
            "all syndromes trivial"
        );
    }

    #[test]
    fn single_injected_error_lights_adjacent_syndromes() {
        let code = RepetitionCode::new(3, 1);
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        let anc = [Qubit(3), Qubit(4)];
        for i in 0..2u32 {
            c.push(Operation::gate(Gate::Cnot, vec![Qubit(i), anc[i as usize]]).unwrap());
            c.push(Operation::gate(Gate::Cnot, vec![Qubit(i + 1), anc[i as usize]]).unwrap());
        }
        c.push(Operation::measure(anc.to_vec(), "s0").unwrap());
        let sim = Simulator::for_backend(
            BackendKind::Tableau,
            code.n_qubits(),
            SimulatorOptions::default(),
        );
        let r = sim.run(&c, 1).unwrap();
        // X on the middle qubit trips both parities: outcome 0b11
        assert_eq!(r.histogram("s0").unwrap().count_value(0b11), 1);
    }

    #[test]
    fn decode_is_a_strict_majority_vote() {
        let code = RepetitionCode::new(5, 1);
        let bits = |v: u64| -> Vec<bool> {
            let b = BitString::from_u64(5, v);
            (0..5).map(|i| b.get(i)).collect()
        };
        assert!(!code.decode_logical_flip(&bits(0b00011)));
        assert!(code.decode_logical_flip(&bits(0b00111)));
        assert!(code.decode_logical_flip(&bits(0b11111)));
    }

    #[test]
    fn both_drivers_read_the_same_syndromes() {
        let code = RepetitionCode::new(5, 4);
        let (p, seed) = (0.2, 99);
        let raw = run_memory_tableau(&code, p, seed).unwrap();
        let circ = run_memory(&code, p, seed, BackendKind::Tableau).unwrap();
        for (cycle, row) in raw.syndromes.iter().enumerate() {
            let hist = circ
                .histogram(&RepetitionCode::syndrome_key(cycle))
                .unwrap();
            let value = row
                .iter()
                .enumerate()
                .fold(0u64, |v, (i, &b)| v | (u64::from(b) << i));
            assert_eq!(
                hist.count_value(value),
                1,
                "cycle {cycle}: circuit driver disagrees with raw tableau"
            );
        }
    }
}

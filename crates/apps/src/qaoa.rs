//! QAOA for MaxCut (paper Sec. 4.4): circuit construction, the
//! (gamma, beta) grid sweep with BGLS sampling on a runtime-selected
//! backend (the paper's configuration is a chi-capped MPS), and solution
//! extraction.

use crate::graph::Graph;
use crate::maxcut::{cut_value, mean_cut};
use crate::observables::maxcut_hamiltonian;
use bgls_backend::{AnyState, BackendKind};
use bgls_circuit::{Circuit, Gate, Operation, Param, ParamResolver, Qubit};
use bgls_core::{BglsState, BitString, SimError, Simulator, SimulatorOptions};

/// Builds a `p`-layer QAOA MaxCut circuit with symbolic parameters
/// `gamma0..` and `beta0..`. The cost layer applies `Rzz(-gamma)` per
/// edge (implementing `e^{i gamma Z_a Z_b / 2}` per unit edge weight up
/// to global phase), the mixer `Rx(2 beta)` per vertex.
pub fn qaoa_maxcut_circuit(graph: &Graph, layers: usize) -> Circuit {
    let n = graph.num_vertices();
    let mut c = Circuit::new();
    for v in 0..n {
        c.push(Operation::gate(Gate::H, vec![Qubit(v as u32)]).expect("1q"));
    }
    for layer in 0..layers {
        let gamma = Param::symbol(&format!("gamma{layer}")).scaled(-1.0);
        for &(a, b) in graph.edges() {
            c.push(
                Operation::gate(
                    Gate::Rzz(gamma.clone()),
                    vec![Qubit(a as u32), Qubit(b as u32)],
                )
                .expect("2q"),
            );
        }
        let beta = Param::symbol(&format!("beta{layer}")).scaled(2.0);
        for v in 0..n {
            c.push(Operation::gate(Gate::Rx(beta.clone()), vec![Qubit(v as u32)]).expect("1q"));
        }
    }
    c
}

/// Binds one layer's `(gamma, beta)` (or several) into a runnable circuit.
pub fn resolve_qaoa(circuit: &Circuit, gammas: &[f64], betas: &[f64]) -> Circuit {
    let mut r = ParamResolver::new();
    for (i, &g) in gammas.iter().enumerate() {
        r.bind(&format!("gamma{i}"), g);
    }
    for (i, &b) in betas.iter().enumerate() {
        r.bind(&format!("beta{i}"), b);
    }
    circuit.resolve(&r)
}

/// Result of a QAOA parameter sweep.
#[derive(Clone, Debug)]
pub struct QaoaSweepResult {
    /// Best `(gamma, beta)` found.
    pub best_params: (f64, f64),
    /// Mean cut at the best parameters during the sweep.
    pub best_mean_cut: f64,
    /// All sweep points: `(gamma, beta, mean_cut)`.
    pub sweep: Vec<(f64, f64, f64)>,
}

/// Result of the full QAOA MaxCut pipeline.
#[derive(Clone, Debug)]
pub struct QaoaSolution {
    /// The sweep stage outcome.
    pub sweep: QaoaSweepResult,
    /// Best-cut bitstring found in the final sampling round.
    pub partition: BitString,
    /// Its cut value.
    pub cut: usize,
}

/// Sweeps a `grid x grid` of one-layer `(gamma, beta)` values over
/// `[0, pi) x [0, pi/2)`, sampling `samples_per_point` bitstrings per
/// configuration with the supplied simulator factory, and returns the
/// parameters maximizing the mean cut. This mirrors the paper's "initial
/// sweep of 100 samples ... for each configuration".
pub fn qaoa_sweep<S, F>(
    graph: &Graph,
    circuit: &Circuit,
    make_simulator: F,
    grid: usize,
    samples_per_point: u64,
) -> Result<QaoaSweepResult, SimError>
where
    S: BglsState + Send + Sync,
    F: Fn() -> Simulator<S>,
{
    assert!(grid >= 1);
    let (points, _) = qaoa_grid_resolvers(grid);
    let mut sweep = Vec::with_capacity(points.len());
    let mut best = (0.0f64, 0.0f64, f64::NEG_INFINITY);
    for (gamma, beta) in points {
        let bound = resolve_qaoa(circuit, &[gamma], &[beta]);
        let samples = make_simulator().sample_final_bitstrings(&bound, samples_per_point)?;
        let mc = mean_cut(graph, &samples);
        sweep.push((gamma, beta, mc));
        if mc > best.2 {
            best = (gamma, beta, mc);
        }
    }
    Ok(QaoaSweepResult {
        best_params: (best.0, best.1),
        best_mean_cut: best.2,
        sweep,
    })
}

/// The one-layer `(gamma, beta)` grid, as points and as parameter
/// resolvers — the single source of truth for both the sampled sweep
/// ([`qaoa_sweep`]) and the exact landscape
/// ([`qaoa_energy_landscape`]), so the two stay pointwise comparable.
fn qaoa_grid_resolvers(grid: usize) -> (Vec<(f64, f64)>, Vec<ParamResolver>) {
    let mut points = Vec::with_capacity(grid * grid);
    let mut resolvers = Vec::with_capacity(grid * grid);
    for gi in 0..grid {
        let gamma = std::f64::consts::PI * (gi as f64 + 0.5) / grid as f64;
        for bi in 0..grid {
            let beta = std::f64::consts::FRAC_PI_2 * (bi as f64 + 0.5) / grid as f64;
            points.push((gamma, beta));
            let mut r = ParamResolver::new();
            r.bind("gamma0", gamma);
            r.bind("beta0", beta);
            resolvers.push(r);
        }
    }
    (points, resolvers)
}

/// The **exact** one-layer QAOA energy landscape over the same
/// `grid x grid` of `(gamma, beta)` values as [`qaoa_sweep`], scored by
/// the expectation engine instead of sampling: each grid point's mean
/// cut is `<C>` of the MaxCut Hamiltonian ([`maxcut_hamiltonian`]) on
/// the bound circuit's output state, evaluated through
/// `Simulator::expectation_sweep` with zero sampling noise.
///
/// Use this to score parameters when an exact backend fits the problem
/// (it is what the sampled sweep converges to as `samples_per_point`
/// grows); use [`qaoa_sweep`] to reproduce the paper's sampled workflow.
pub fn qaoa_energy_landscape<S, F>(
    graph: &Graph,
    circuit: &Circuit,
    make_simulator: F,
    grid: usize,
) -> Result<QaoaSweepResult, SimError>
where
    S: BglsState + Send + Sync,
    F: Fn() -> Simulator<S>,
{
    assert!(grid >= 1);
    let hamiltonian = maxcut_hamiltonian(graph);
    let (points, resolvers) = qaoa_grid_resolvers(grid);
    let energies = make_simulator().expectation_sweep(circuit, &resolvers, &hamiltonian)?;
    let mut sweep = Vec::with_capacity(points.len());
    let mut best = (0.0f64, 0.0f64, f64::NEG_INFINITY);
    for (&(gamma, beta), &energy) in points.iter().zip(&energies) {
        sweep.push((gamma, beta, energy));
        if energy > best.2 {
            best = (gamma, beta, energy);
        }
    }
    Ok(QaoaSweepResult {
        best_params: (best.0, best.1),
        best_mean_cut: best.2,
        sweep,
    })
}

/// The full paper workflow (Sec. 4.4) on a runtime-selected backend:
/// sweep -> rerun best parameters with `final_samples` -> return the
/// best-cut bitstring as the MaxCut solution.
///
/// Any [`BackendKind`] works as long as it supports the QAOA gate set
/// (`H`, `Rzz`, `Rx`); the paper's configuration is
/// `BackendKind::ChainMps { chi: Some(max_bond) }`.
///
/// Runs on the batched hot path: candidate probabilities go through the
/// backend's `probabilities_batch` (environment sharing on the MPS), and
/// `fuse_gates` merges each vertex's `H`/`Rx` runs before sampling. Every
/// backend this pipeline accepts consumes arbitrary `U1` matrices, so
/// fusion is always safe here.
pub fn solve_maxcut_qaoa(
    graph: &Graph,
    backend: BackendKind,
    grid: usize,
    samples_per_point: u64,
    final_samples: u64,
    seed: u64,
) -> Result<QaoaSolution, SimError> {
    let n = graph.num_vertices();
    let circuit = qaoa_maxcut_circuit(graph, 1);
    let options = SimulatorOptions {
        seed: Some(seed),
        fuse_gates: true,
        ..Default::default()
    };
    let make = || Simulator::new(AnyState::zero(backend, n)).with_options(options.clone());
    let sweep = qaoa_sweep(graph, &circuit, make, grid, samples_per_point)?;
    let bound = resolve_qaoa(&circuit, &[sweep.best_params.0], &[sweep.best_params.1]);
    let samples = make().sample_final_bitstrings(&bound, final_samples)?;
    let (partition, cut) = samples
        .into_iter()
        .map(|b| (b, cut_value(graph, b)))
        .max_by_key(|&(_, c)| c)
        .expect("final_samples > 0");
    Ok(QaoaSolution {
        sweep,
        partition,
        cut,
    })
}

/// The paper's concrete configuration: [`solve_maxcut_qaoa`] on a chain
/// MPS with bond cap `max_bond`.
pub fn solve_maxcut_qaoa_mps(
    graph: &Graph,
    max_bond: usize,
    grid: usize,
    samples_per_point: u64,
    final_samples: u64,
    seed: u64,
) -> Result<QaoaSolution, SimError> {
    solve_maxcut_qaoa(
        graph,
        BackendKind::ChainMps {
            chi: Some(max_bond),
        },
        grid,
        samples_per_point,
        final_samples,
        seed,
    )
}

/// Planner-driven variant of [`solve_maxcut_qaoa`]: instead of the
/// caller naming a backend, a representative bound circuit (the grid's
/// interior point — the planner only reads structure, which is
/// identical at every grid point) is profiled by [`bgls_plan::plan`]
/// and the sweep runs on whatever backend it routes to. Returns the
/// solution together with the plan so callers can inspect the routing
/// rationale.
pub fn solve_maxcut_qaoa_auto(
    graph: &Graph,
    grid: usize,
    samples_per_point: u64,
    final_samples: u64,
    seed: u64,
) -> Result<(QaoaSolution, bgls_plan::ExecutionPlan), SimError> {
    let n = graph.num_vertices();
    let circuit = qaoa_maxcut_circuit(graph, 1);
    let mut probe = resolve_qaoa(&circuit, &[0.5], &[0.5]);
    probe.push(Operation::measure(Qubit::range(n), "m").expect("n >= 1"));
    let plan = bgls_plan::plan(
        &probe,
        &bgls_plan::Deliverable::Histogram {
            repetitions: samples_per_point,
        },
        &bgls_plan::PlannerConfig::default(),
    )?;
    let solution = solve_maxcut_qaoa(
        graph,
        plan.backend,
        grid,
        samples_per_point,
        final_samples,
        seed,
    )?;
    Ok((solution, plan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::brute_force_maxcut;
    use bgls_statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn circuit_structure_is_h_cost_mixer() {
        let g = Graph::new(3, [(0, 1), (1, 2)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        // 3 H + 2 Rzz + 3 Rx
        assert_eq!(c.num_operations(), 8);
        assert!(c.is_parameterized());
        let bound = resolve_qaoa(&c, &[0.7], &[0.3]);
        assert!(!bound.is_parameterized());
    }

    #[test]
    fn zero_angles_give_uniform_distribution() {
        let g = Graph::new(2, [(0, 1)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        let bound = resolve_qaoa(&c, &[0.0], &[0.0]);
        let sv = StateVector::from_circuit(&bound, 2).unwrap();
        for p in sv.born_distribution() {
            assert!((p - 0.25).abs() < 1e-10);
        }
    }

    #[test]
    fn qaoa_beats_random_on_single_edge() {
        // On K2, optimal 1-layer QAOA solves MaxCut exactly:
        // gamma = pi/2, beta = pi/8 gives cut expectation 1.
        let g = Graph::new(2, [(0, 1)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        let bound = resolve_qaoa(
            &c,
            &[std::f64::consts::FRAC_PI_2],
            &[std::f64::consts::PI / 8.0],
        );
        let sv = StateVector::from_circuit(&bound, 2).unwrap();
        let p = sv.born_distribution();
        // cut-1 outcomes are 01 and 10
        let cut_mass = p[1] + p[2];
        assert!(cut_mass > 0.99, "cut probability {cut_mass}");
    }

    #[test]
    fn sweep_finds_good_parameters_on_path() {
        let g = Graph::new(3, [(0, 1), (1, 2)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        let make = || Simulator::new(StateVector::zero(3)).with_seed(5);
        let result = qaoa_sweep(&g, &c, make, 6, 200).unwrap();
        assert_eq!(result.sweep.len(), 36);
        // random guessing gives mean cut 1.0; QAOA should beat it
        assert!(
            result.best_mean_cut > 1.2,
            "best mean cut {}",
            result.best_mean_cut
        );
    }

    #[test]
    fn exact_landscape_agrees_with_sampled_sweep() {
        let g = Graph::new(3, [(0, 1), (1, 2)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        let exact =
            qaoa_energy_landscape(&g, &c, || Simulator::new(StateVector::zero(3)), 4).unwrap();
        assert_eq!(exact.sweep.len(), 16);
        // the sampled sweep converges to the exact landscape pointwise
        let sampled = qaoa_sweep(
            &g,
            &c,
            || Simulator::new(StateVector::zero(3)).with_seed(3),
            4,
            4000,
        )
        .unwrap();
        for ((ge, be, ee), (gs, bs, es)) in exact.sweep.iter().zip(&sampled.sweep) {
            assert_eq!((ge, be), (gs, bs));
            assert!(
                (ee - es).abs() < 0.08,
                "({ge}, {be}): exact {ee} vs sampled {es}"
            );
        }
        // exact landscape at zero angles is the uniform mean cut |E|/2
        let zero = resolve_qaoa(&c, &[0.0], &[0.0]);
        let e0 = Simulator::new(StateVector::zero(3))
            .expectation_value(&zero, &crate::observables::maxcut_hamiltonian(&g))
            .unwrap();
        assert!((e0 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn exact_landscape_is_backend_agnostic() {
        use bgls_backend::simulator_for;
        let g = Graph::new(4, [(0, 1), (1, 2), (2, 3)]);
        let c = qaoa_maxcut_circuit(&g, 1);
        let reference =
            qaoa_energy_landscape(&g, &c, || Simulator::new(StateVector::zero(4)), 3).unwrap();
        for kind in [
            BackendKind::DensityMatrix,
            BackendKind::ChainMps { chi: None },
            BackendKind::LazyNetwork,
        ] {
            let land = qaoa_energy_landscape(&g, &c, || simulator_for(kind, 4), 3).unwrap();
            for (a, b) in reference.sweep.iter().zip(&land.sweep) {
                assert!((a.2 - b.2).abs() < 1e-10, "{kind} at ({}, {})", a.0, a.1);
            }
        }
    }

    #[test]
    fn auto_pipeline_routes_and_solves() {
        let g = Graph::new(4, [(0, 1), (1, 2), (2, 3)]);
        let (_, optimal) = brute_force_maxcut(&g);
        let (sol, plan) = solve_maxcut_qaoa_auto(&g, 5, 60, 300, 7).unwrap();
        // Narrow unitary non-Clifford circuit: dense statevector wins
        // the planner's cost model.
        assert_eq!(plan.backend, BackendKind::StateVector);
        assert_eq!(cut_value(&g, sol.partition), sol.cut);
        assert!(
            sol.cut + 1 >= optimal,
            "QAOA cut {} vs optimal {optimal}",
            sol.cut
        );
    }

    #[test]
    fn full_pipeline_solves_small_er_graph() {
        let mut rng = StdRng::seed_from_u64(33);
        let g = Graph::erdos_renyi(6, 0.4, &mut rng);
        let (_, optimal) = brute_force_maxcut(&g);
        let sol = solve_maxcut_qaoa_mps(&g, 8, 5, 60, 300, 7).unwrap();
        assert_eq!(cut_value(&g, sol.partition), sol.cut);
        // the best sampled bitstring should be at or near optimal
        assert!(
            sol.cut + 1 >= optimal,
            "QAOA cut {} vs optimal {optimal}",
            sol.cut
        );
    }

    #[test]
    fn generic_pipeline_accepts_runtime_backends() {
        let mut rng = StdRng::seed_from_u64(44);
        let g = Graph::erdos_renyi(5, 0.5, &mut rng);
        let (_, optimal) = brute_force_maxcut(&g);
        for backend in [
            BackendKind::StateVector,
            BackendKind::ChainMps { chi: Some(8) },
            BackendKind::LazyNetwork,
        ] {
            let sol = solve_maxcut_qaoa(&g, backend, 4, 50, 200, 9).unwrap();
            assert_eq!(cut_value(&g, sol.partition), sol.cut, "{backend}");
            assert!(
                sol.cut + 1 >= optimal,
                "{backend}: QAOA cut {} vs optimal {optimal}",
                sol.cut
            );
        }
    }
}

//! Random-circuit sampling with linear cross-entropy benchmarking
//! (XEB) — the scenario behind the "quantum supremacy"-style fidelity
//! score. A Haar-random two-qubit-gate brickwork circuit is sampled
//! through the planner, and the samples are scored against the exact
//! Born distribution with [`crate::linear_xeb`]:
//!
//! * sampling the ideal circuit yields `F_XEB ~ 1` (Porter–Thomas
//!   statistics of deep Haar-random brickwork);
//! * a depolarizing layer drives the score toward 0, the fully-mixed
//!   floor.
//!
//! The exact reference is a single state-vector evolution, so the
//! scenario stays honest up to ~16 qubits while the sampling side runs
//! through whatever backend the planner picks.

use crate::metrics::linear_xeb;
use crate::workloads::random_u2_brickwork;
use bgls_circuit::{Channel, Circuit, Operation, Qubit};
use bgls_core::{BitString, Histogram, SimError};
use bgls_plan::plan_and_run;
use bgls_statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One XEB experiment's outcome.
#[derive(Clone, Debug)]
pub struct XebReport {
    /// Circuit width.
    pub n_qubits: usize,
    /// Brickwork depth (layers of Haar-random two-qubit gates).
    pub layers: usize,
    /// Number of sampled bitstrings.
    pub shots: u64,
    /// The linear XEB score `2^n * mean(p_ideal(sample)) - 1`.
    pub fidelity: f64,
    /// The backend the planner routed the sampling run to.
    pub backend: String,
    /// The exact Born distribution of the ideal (noiseless) circuit.
    pub ideal: Vec<f64>,
    /// The sampled readout histogram (for goodness-of-fit checks).
    pub histogram: Histogram,
}

/// The seeded Haar-random brickwork circuit under benchmark (no
/// measurements — callers append their own readout).
pub fn xeb_random_circuit(n: usize, layers: usize, seed: u64) -> Circuit {
    random_u2_brickwork(n, layers, &mut StdRng::seed_from_u64(seed))
}

/// Runs one planner-routed XEB experiment: build the seeded circuit,
/// compute the exact Born distribution by state vector, sample `shots`
/// bitstrings (optionally through a trailing per-qubit depolarizing
/// layer of strength `depolarizing`), and score them.
pub fn xeb_experiment(
    n: usize,
    layers: usize,
    shots: u64,
    seed: u64,
    depolarizing: Option<f64>,
) -> Result<XebReport, SimError> {
    assert!(n <= 16, "the exact XEB reference is a 2^n state vector");
    let ideal_circuit = xeb_random_circuit(n, layers, seed);
    let ideal = StateVector::from_circuit(&ideal_circuit, n)?.born_distribution();

    let mut sampled = ideal_circuit;
    if let Some(p) = depolarizing {
        for q in 0..n as u32 {
            sampled.push(Operation::channel(
                Channel::depolarizing(p)?,
                vec![Qubit(q)],
            )?);
        }
    }
    sampled.push(Operation::measure(Qubit::range(n), "xeb")?);

    let planned = plan_and_run(&sampled, shots, Some(seed))?;
    let hist = planned
        .result
        .histogram("xeb")
        .expect("readout key recorded");
    let samples: Vec<BitString> = hist
        .iter_sorted()
        .into_iter()
        .flat_map(|(b, c)| std::iter::repeat_n(b, c as usize))
        .collect();
    Ok(XebReport {
        n_qubits: n,
        layers,
        shots,
        fidelity: linear_xeb(&samples, &ideal),
        backend: planned.plan.backend.name(),
        ideal,
        histogram: hist.clone(),
    })
}

impl XebReport {
    /// The sampled histogram densified to per-outcome counts, aligned
    /// with [`XebReport::ideal`].
    pub fn counts(&self) -> Vec<u64> {
        (0..1u64 << self.n_qubits)
            .map(|v| self.histogram.count_value(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sampling_scores_near_unit_fidelity() {
        let r = xeb_experiment(8, 6, 2000, 11, None).unwrap();
        assert!(
            (r.fidelity - 1.0).abs() < 0.25,
            "ideal F_XEB should be near 1, got {} via {}",
            r.fidelity,
            r.backend
        );
    }

    #[test]
    fn a_depolarizing_layer_degrades_the_score() {
        let ideal = xeb_experiment(8, 6, 1500, 11, None).unwrap();
        let noisy = xeb_experiment(8, 6, 1500, 11, Some(0.2)).unwrap();
        assert!(
            noisy.fidelity < ideal.fidelity - 0.3,
            "noisy {} vs ideal {}",
            noisy.fidelity,
            ideal.fidelity
        );
    }
}

//! The MaxCut objective: cut values of partitions and a brute-force
//! reference solver for verification.

use crate::graph::Graph;
use bgls_core::BitString;

/// Number of edges cut by the partition encoded in `bits` (vertex `v` on
/// side `bits[v]`).
pub fn cut_value(graph: &Graph, bits: BitString) -> usize {
    assert_eq!(bits.len(), graph.num_vertices());
    graph
        .edges()
        .iter()
        .filter(|&&(a, b)| bits.get(a) != bits.get(b))
        .count()
}

/// Exhaustive MaxCut solver (up to ~24 vertices). Returns
/// `(best_partition, best_cut)`.
pub fn brute_force_maxcut(graph: &Graph) -> (BitString, usize) {
    let n = graph.num_vertices();
    assert!(n <= 24, "brute force limited to 24 vertices");
    let mut best = (BitString::zeros(n), 0usize);
    for x in 0..1u64 << n {
        let bits = BitString::from_u64(n, x);
        let c = cut_value(graph, bits);
        if c > best.1 {
            best = (bits, c);
        }
    }
    best
}

/// The MaxCut cost expectation over a set of sampled partitions:
/// `mean cut value`.
pub fn mean_cut(graph: &Graph, samples: &[BitString]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: usize = samples.iter().map(|&b| cut_value(graph, b)).sum();
    total as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::new(3, [(0, 1), (1, 2)])
    }

    #[test]
    fn cut_counts_crossing_edges() {
        let g = path3();
        // partition {1} vs {0, 2} cuts both edges
        assert_eq!(cut_value(&g, BitString::from_u64(3, 0b010)), 2);
        // all-same partition cuts nothing
        assert_eq!(cut_value(&g, BitString::zeros(3)), 0);
        assert_eq!(cut_value(&g, BitString::from_u64(3, 0b111)), 0);
    }

    #[test]
    fn brute_force_on_path() {
        let (best, cut) = brute_force_maxcut(&path3());
        assert_eq!(cut, 2);
        // the middle vertex alone (or its complement)
        assert!(best.as_u64() == 0b010 || best.as_u64() == 0b101);
    }

    #[test]
    fn brute_force_on_triangle() {
        let g = Graph::new(3, [(0, 1), (1, 2), (0, 2)]);
        let (_, cut) = brute_force_maxcut(&g);
        assert_eq!(cut, 2); // triangles are not bipartite
    }

    #[test]
    fn complete_bipartite_is_fully_cuttable() {
        // K_{2,2}
        let g = Graph::new(4, [(0, 2), (0, 3), (1, 2), (1, 3)]);
        let (best, cut) = brute_force_maxcut(&g);
        assert_eq!(cut, 4);
        assert_eq!(cut_value(&g, best), 4);
    }

    #[test]
    fn mean_cut_averages() {
        let g = path3();
        let samples = vec![
            BitString::from_u64(3, 0b010), // 2
            BitString::from_u64(3, 0b000), // 0
        ];
        assert!((mean_cut(&g, &samples) - 1.0).abs() < 1e-12);
        assert_eq!(mean_cut(&g, &[]), 0.0);
    }
}

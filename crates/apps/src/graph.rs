//! Undirected graphs and the Erdős–Rényi generator (the networkx
//! substitute for the QAOA MaxCut experiment, paper Sec. 4.4).

use rand::Rng;

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list (edges normalized to `a < b`,
    /// duplicates and self-loops rejected).
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> = Vec::new();
        for (a, b) in edges {
            assert!(
                a < n && b < n,
                "edge ({a},{b}) out of range for {n} vertices"
            );
            assert_ne!(a, b, "self-loop ({a},{a})");
            let e = (a.min(b), a.max(b));
            assert!(!es.contains(&e), "duplicate edge {e:?}");
            es.push(e);
        }
        es.sort_unstable();
        Graph { n, edges: es }
    }

    /// G(n, p): each possible edge included independently with
    /// probability `p`.
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((a, b));
                }
            }
        }
        Graph { n, edges }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list, each as `(a, b)` with `a < b`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_normalizes_edges() {
        let g = Graph::new(4, [(2, 0), (1, 3)]);
        assert_eq!(g.edges(), &[(0, 2), (1, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let _ = Graph::new(3, [(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicates_rejected() {
        let _ = Graph::new(3, [(0, 1), (1, 0)]);
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(0);
        let empty = Graph::erdos_renyi(6, 0.0, &mut rng);
        assert_eq!(empty.num_edges(), 0);
        let full = Graph::erdos_renyi(6, 1.0, &mut rng);
        assert_eq!(full.num_edges(), 15);
        assert_eq!(full.max_degree(), 5);
    }

    #[test]
    fn erdos_renyi_density_roughly_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = 0usize;
        for _ in 0..50 {
            total += Graph::erdos_renyi(10, 0.3, &mut rng).num_edges();
        }
        let mean = total as f64 / 50.0;
        // expectation = 45 * 0.3 = 13.5
        assert!((mean - 13.5).abs() < 2.0, "mean edges {mean}");
    }
}

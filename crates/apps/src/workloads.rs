//! Circuit workload generators for the paper's experiments: GHZ chains
//! with random CNOT sequencing (Fig. 6), fixed-depth random circuits
//! (Fig. 7a), fixed-CNOT-count random circuits (Fig. 7b).

use bgls_circuit::{Circuit, Gate, Operation, Qubit};
use bgls_linalg::{svd, Matrix, C64};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// The canonical GHZ ladder: `H(0)` then `CNOT(i-1 -> i)`.
pub fn ghz_circuit(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).expect("1q"));
    for i in 1..n {
        c.push(
            Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).expect("2q"),
        );
    }
    c
}

/// One Trotter-style transverse-field Ising layer: an `Ry(0.55)` tilt
/// per site, `Rzz(0.7)` bonds along the open chain, then `Rx(0.35)`
/// kicks — the correlated, non-Clifford state the observable-estimation
/// example and the `observable_expectation` bench both score against
/// [`crate::transverse_field_ising`]. One definition so the recorded
/// bench baseline always measures the documented example workload.
pub fn tfim_layer_circuit(n: usize) -> Circuit {
    assert!(n >= 2);
    let mut c = Circuit::new();
    for q in 0..n as u32 {
        c.push(Operation::gate(Gate::Ry(0.55.into()), vec![Qubit(q)]).expect("1q"));
    }
    for q in 0..(n - 1) as u32 {
        c.push(Operation::gate(Gate::Rzz(0.7.into()), vec![Qubit(q), Qubit(q + 1)]).expect("2q"));
    }
    for q in 0..n as u32 {
        c.push(Operation::gate(Gate::Rx(0.35.into()), vec![Qubit(q)]).expect("1q"));
    }
    c
}

/// GHZ with *randomly sequenced* CNOTs (the Fig. 6 workload): starting
/// from `H(0)`, repeatedly pick a random already-entangled control and a
/// random fresh target. The final state is exactly GHZ, but the random
/// connectivity makes blind tensor-network simulation hard.
pub fn ghz_random_cnot_circuit(n: usize, rng: &mut impl Rng) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::new();
    c.push(Operation::gate(Gate::H, vec![Qubit(0)]).expect("1q"));
    let mut entangled: Vec<usize> = vec![0];
    let mut fresh: Vec<usize> = (1..n).collect();
    fresh.shuffle(rng);
    while let Some(target) = fresh.pop() {
        let control = *entangled.choose(rng).expect("nonempty");
        c.push(
            Operation::gate(
                Gate::Cnot,
                vec![Qubit(control as u32), Qubit(target as u32)],
            )
            .expect("2q"),
        );
        entangled.push(target);
    }
    c
}

/// Random fixed-depth circuits of single-qubit gates plus nearest-available
/// CNOTs (the Fig. 7a workload): each moment applies a random 1q gate to
/// every qubit, then `cnot_pairs_per_moment` random disjoint CNOTs.
pub fn random_fixed_depth_circuit(
    n: usize,
    depth: usize,
    cnot_pairs_per_moment: usize,
    rng: &mut impl Rng,
) -> Circuit {
    let one_q = [Gate::H, Gate::T, Gate::S, Gate::SqrtX, Gate::X];
    let mut c = Circuit::new();
    for _ in 0..depth {
        for q in 0..n {
            let g = one_q.choose(rng).expect("nonempty").clone();
            c.push(Operation::gate(g, vec![Qubit(q as u32)]).expect("1q"));
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        for pair in order.chunks(2).take(cnot_pairs_per_moment) {
            if let [a, b] = pair {
                c.push(
                    Operation::gate(Gate::Cnot, vec![Qubit(*a as u32), Qubit(*b as u32)])
                        .expect("2q"),
                );
            }
        }
    }
    c
}

/// Random circuits with a *fixed total number* of CNOTs regardless of
/// width (the Fig. 7b workload): a layer of random 1q gates per qubit
/// plus exactly `num_cnots` random CNOTs spread through the circuit.
pub fn random_fixed_cnot_circuit(
    n: usize,
    one_q_layers: usize,
    num_cnots: usize,
    rng: &mut impl Rng,
) -> Circuit {
    assert!(n >= 2, "need two qubits for CNOTs");
    let one_q = [Gate::H, Gate::T, Gate::S, Gate::SqrtX];
    let mut c = Circuit::new();
    for _ in 0..one_q_layers {
        for q in 0..n {
            let g = one_q.choose(rng).expect("nonempty").clone();
            c.push(Operation::gate(g, vec![Qubit(q as u32)]).expect("1q"));
        }
    }
    for _ in 0..num_cnots {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n - 1);
        if b >= a {
            b += 1;
        }
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(a as u32), Qubit(b as u32)]).expect("2q"));
    }
    c
}

/// Brickwork "supremacy-style" random circuit: alternating layers of
/// random single-qubit gates and staggered nearest-neighbour CZ bricks.
/// The canonical hard-sampling workload the paper's introduction motivates
/// (random circuit sampling as the supremacy benchmark).
pub fn brickwork_circuit(n: usize, layers: usize, rng: &mut impl Rng) -> Circuit {
    let one_q = [Gate::SqrtX, Gate::T, Gate::H, Gate::S];
    let mut c = Circuit::new();
    for layer in 0..layers {
        for q in 0..n {
            let g = one_q.choose(rng).expect("nonempty").clone();
            c.push(Operation::gate(g, vec![Qubit(q as u32)]).expect("1q"));
        }
        let start = layer % 2;
        let mut q = start;
        while q + 1 < n {
            c.push(
                Operation::gate(Gate::Cz, vec![Qubit(q as u32), Qubit(q as u32 + 1)]).expect("2q"),
            );
            q += 2;
        }
    }
    c
}

/// A Haar-style random two-qubit unitary: `U V^dagger` from the SVD of
/// a matrix with i.i.d. complex entries.
fn random_unitary_4(rng: &mut impl Rng) -> Matrix {
    let a = Matrix::from_fn(4, 4, |_, _| {
        C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    });
    let d = svd(&a);
    d.u.matmul(&d.vt)
}

/// Brickwork circuit of *random two-qubit unitaries* (staggered
/// nearest-neighbour bricks). Unlike [`brickwork_circuit`]'s CZ bricks,
/// generic `SU(4)` gates multiply the Schmidt rank across every bond by
/// 4 per brick, so a chi-capped chain MPS saturates its bond budget
/// within a few layers — the stress workload for the two-site
/// split/sweep kernels at a given chi.
pub fn random_u2_brickwork(n: usize, layers: usize, rng: &mut impl Rng) -> Circuit {
    let mut c = Circuit::new();
    for layer in 0..layers {
        let mut q = layer % 2;
        while q + 1 < n {
            let u = random_unitary_4(rng);
            c.push(
                Operation::gate(
                    Gate::U2(Arc::new(u)),
                    vec![Qubit(q as u32), Qubit(q as u32 + 1)],
                )
                .expect("2q"),
            );
            q += 2;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_backend::{AnyState, BackendKind};
    use bgls_core::{BglsState, BitString};
    use bgls_statevector::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// GHZ circuits are Clifford, so every runtime-selectable backend
    /// must reproduce the two-outcome distribution exactly.
    fn is_ghz(circuit: &Circuit, n: usize) {
        for kind in BackendKind::all() {
            let mut state = AnyState::zero(kind, n);
            for op in circuit.all_operations() {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_gate(op.as_gate().unwrap(), &qs).unwrap();
            }
            let p0 = state.probability(BitString::zeros(n));
            let p1 = state.probability(BitString::from_u64(n, (1u64 << n) - 1));
            assert!(
                (p0 - 0.5).abs() < 1e-10 && (p1 - 0.5).abs() < 1e-10,
                "{kind}: p0 = {p0}, p1 = {p1}"
            );
        }
    }

    #[test]
    fn ghz_ladder_produces_ghz() {
        is_ghz(&ghz_circuit(6), 6);
    }

    #[test]
    fn random_cnot_ghz_still_produces_ghz() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let c = ghz_random_cnot_circuit(7, &mut rng);
            assert_eq!(c.count_ops_where(|op| op.as_gate() == Some(&Gate::Cnot)), 6);
            is_ghz(&c, 7);
        }
    }

    #[test]
    fn fixed_depth_circuit_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = random_fixed_depth_circuit(6, 4, 2, &mut rng);
        let cnots = c.count_ops_where(|op| op.as_gate() == Some(&Gate::Cnot));
        assert_eq!(cnots, 8);
        let oneq = c.count_ops_where(|op| op.support().len() == 1);
        assert_eq!(oneq, 24);
    }

    #[test]
    fn fixed_cnot_circuit_caps_cnots() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [4usize, 8, 16] {
            let c = random_fixed_cnot_circuit(n, 2, 5, &mut rng);
            assert_eq!(c.count_ops_where(|op| op.as_gate() == Some(&Gate::Cnot)), 5);
            assert!(c.num_qubits() <= n);
        }
    }

    #[test]
    fn brickwork_alternates_cz_bricks() {
        let mut rng = StdRng::seed_from_u64(6);
        let c = brickwork_circuit(6, 4, &mut rng);
        let czs = c.count_ops_where(|op| op.as_gate() == Some(&Gate::Cz));
        // even layers: 3 bricks (0-1, 2-3, 4-5); odd layers: 2 (1-2, 3-4)
        assert_eq!(czs, 2 * 3 + 2 * 2);
        let oneq = c.count_ops_where(|op| op.support().len() == 1);
        assert_eq!(oneq, 24);
    }

    #[test]
    fn brickwork_spreads_amplitude() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = brickwork_circuit(4, 6, &mut rng);
        let mut sv = StateVector::zero(4);
        for op in c.all_operations() {
            let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            sv.apply_gate(op.as_gate().unwrap(), &qs).unwrap();
        }
        // Porter-Thomas-ish: no single outcome should dominate
        let max_p = sv.born_distribution().into_iter().fold(0.0f64, f64::max);
        assert!(max_p < 0.7, "max outcome probability {max_p}");
    }

    #[test]
    fn ghz_single_qubit_edge_case() {
        let c = ghz_circuit(1);
        assert_eq!(c.num_operations(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let cr = ghz_random_cnot_circuit(1, &mut rng);
        assert_eq!(cr.num_operations(), 1);
    }
}

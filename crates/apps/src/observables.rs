//! Observable construction and estimation for the application layer.
//!
//! Built on the Pauli subsystem (`bgls_circuit::{PauliString,
//! PauliSum}`): Hamiltonian builders for the shipped workloads (MaxCut
//! cost, transverse-field Ising) plus sample-based estimators for
//! Z-diagonal observables — the historical `z_string_expectation` path,
//! now expressed through the same [`PauliString`] parity machinery the
//! shot-based estimator in `bgls-core` uses. Exact (sample-free)
//! evaluation goes through `Simulator::expectation_value` /
//! `BglsState::expectation` instead.

use crate::graph::Graph;
use bgls_circuit::{CircuitError, PauliString, PauliSum};
use bgls_core::BitString;
use bgls_linalg::C64;

/// The MaxCut cost Hamiltonian `C = sum_{(a,b) in E} (1 - Z_a Z_b) / 2`
/// as a [`PauliSum`]. Its expectation on a computational-basis
/// distribution is the mean cut value — the quantity the QAOA sweep
/// maximizes.
pub fn maxcut_hamiltonian(graph: &Graph) -> PauliSum {
    let mut h = PauliSum::new();
    for &(a, b) in graph.edges() {
        h.add_term(C64::real(0.5), PauliString::identity());
        h.add_term(
            C64::real(-0.5),
            PauliString::z_string(&[a, b]).expect("graph edges join distinct vertices"),
        );
    }
    h
}

/// The transverse-field Ising Hamiltonian
/// `H = -J sum_i Z_i Z_{i+1} - h sum_i X_i` on an open (or periodic)
/// chain of `n` qubits — the standard mixed-basis observable used by the
/// observable-estimation example and benches: its ZZ and X terms land in
/// different qubit-wise-commuting groups, so shot-based estimation
/// exercises the grouped path.
pub fn transverse_field_ising(n: usize, coupling: f64, field: f64, periodic: bool) -> PauliSum {
    let mut h = PauliSum::new();
    for i in 0..n.saturating_sub(1) {
        h.add_term(
            C64::real(-coupling),
            PauliString::z_string(&[i, i + 1]).expect("distinct chain sites"),
        );
    }
    if periodic && n > 2 {
        h.add_term(
            C64::real(-coupling),
            PauliString::z_string(&[n - 1, 0]).expect("distinct chain sites"),
        );
    }
    for i in 0..n {
        h.add_term(C64::real(-field), PauliString::x(i));
    }
    h
}

/// Estimates a **Z-diagonal** Hermitian observable from
/// computational-basis samples: every non-identity term must be a pure
/// Z-string, whose eigenvalue on a sample is its support parity. Fails
/// on X/Y terms (those need the basis-rotated shot path,
/// `Simulator::estimate_expectation`). With no samples, only the
/// identity constant is returned.
pub fn diagonal_expectation(
    observable: &PauliSum,
    samples: &[BitString],
) -> Result<f64, CircuitError> {
    let mut constant = 0.0;
    let mut diagonal: Vec<(f64, &PauliString)> = Vec::new();
    for (c, p) in observable.terms() {
        if p.is_identity() {
            constant += c.re;
            continue;
        }
        if p.iter().any(|(_, op)| op != bgls_circuit::PauliOp::Z) {
            return Err(CircuitError::Invalid(format!(
                "term '{p}' is not Z-diagonal; use the basis-rotated shot estimator"
            )));
        }
        diagonal.push((c.re, p));
    }
    if samples.is_empty() || diagonal.is_empty() {
        return Ok(constant);
    }
    // per-term support masks hoisted out of the per-sample loop; the
    // per-sample scorer is shared with the core shot estimator
    let masks: Vec<(f64, u64)> = diagonal
        .iter()
        .map(|(c, p)| (*c, p.support_mask()))
        .collect();
    let mean: f64 = samples
        .iter()
        .map(|b| bgls_circuit::score_parity_terms(&masks, b.as_u64()))
        .sum::<f64>()
        / samples.len() as f64;
    Ok(constant + mean)
}

/// Estimates `<Z_{q1} Z_{q2} ... >` for a Z-string supported on `qubits`
/// from computational-basis samples: each sample contributes
/// `(-1)^(parity of selected bits)` ([`PauliString::parity_sign`]).
/// Repeated qubits cancel pairwise (`Z^2 = I`), matching the operator
/// algebra.
pub fn z_string_expectation(samples: &[BitString], qubits: &[usize]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    // XOR-fold so duplicated qubits cancel instead of erroring
    let mask = qubits.iter().fold(0u64, |acc, &q| acc ^ (1 << q));
    samples
        .iter()
        .map(|b| bgls_circuit::parity_sign_masked(mask, b.as_u64()))
        .sum::<f64>()
        / samples.len() as f64
}

/// Estimates the Ising/MaxCut cost Hamiltonian expectation
/// `<C> = sum_edges (1 - <Z_a Z_b>) / 2` from samples — the
/// [`maxcut_hamiltonian`] evaluated with [`diagonal_expectation`].
pub fn maxcut_energy_expectation(graph: &Graph, samples: &[BitString]) -> f64 {
    diagonal_expectation(&maxcut_hamiltonian(graph), samples)
        .expect("the MaxCut Hamiltonian is Z-diagonal")
}

/// Standard error of the mean for a +-1-valued estimator (conservative
/// Bernoulli bound at the observed expectation).
pub fn z_string_standard_error(samples: &[BitString], qubits: &[usize]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 1.0;
    }
    let mean = z_string_expectation(samples, qubits);
    // Var((-1)^b) = 1 - mean^2 for +-1 variables
    ((1.0 - mean * mean) / (n as f64 - 1.0)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize, x: u64) -> BitString {
        BitString::from_u64(n, x)
    }

    #[test]
    fn all_zero_samples_give_plus_one() {
        let samples = vec![b(3, 0); 10];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), 1.0);
        assert_eq!(z_string_expectation(&samples, &[2]), 1.0);
    }

    #[test]
    fn anti_correlated_bits_give_minus_one() {
        let samples = vec![b(2, 0b01), b(2, 0b10), b(2, 0b01)];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), -1.0);
    }

    #[test]
    fn empty_support_is_identity() {
        let samples = vec![b(2, 0b11); 5];
        assert_eq!(z_string_expectation(&samples, &[]), 1.0);
    }

    #[test]
    fn repeated_qubits_cancel_pairwise() {
        // Z0 Z0 = I: duplicates must evaluate, not panic
        let samples = vec![b(2, 0b01), b(2, 0b11)];
        assert_eq!(z_string_expectation(&samples, &[0, 0]), 1.0);
        assert_eq!(
            z_string_expectation(&samples, &[0, 0, 1]),
            z_string_expectation(&samples, &[1])
        );
    }

    #[test]
    fn mixed_samples_average() {
        // two +1 (00), two -1 (01): expectation 0
        let samples = vec![b(2, 0), b(2, 0), b(2, 1), b(2, 1)];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), 0.0);
    }

    #[test]
    fn maxcut_energy_matches_mean_cut() {
        use crate::maxcut::mean_cut;
        let g = Graph::new(3, [(0, 1), (1, 2)]);
        let samples = vec![b(3, 0b010), b(3, 0b000), b(3, 0b011)];
        let via_energy = maxcut_energy_expectation(&g, &samples);
        let via_cuts = mean_cut(&g, &samples);
        assert!((via_energy - via_cuts).abs() < 1e-12);
    }

    #[test]
    fn maxcut_hamiltonian_scores_partitions_exactly() {
        use crate::maxcut::cut_value;
        let g = Graph::new(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let h = maxcut_hamiltonian(&g);
        for x in 0..16u64 {
            let cut = cut_value(&g, b(4, x)) as f64;
            let e = diagonal_expectation(&h, &[b(4, x)]).unwrap();
            assert!((e - cut).abs() < 1e-12, "partition {x:04b}");
        }
    }

    #[test]
    fn diagonal_expectation_rejects_off_diagonal_terms() {
        let h: PauliSum = "X0 + Z1".parse().unwrap();
        assert!(diagonal_expectation(&h, &[b(2, 0)]).is_err());
        // identity constant survives an empty sample set
        let c: PauliSum = "Z0 + 3".parse().unwrap();
        assert_eq!(diagonal_expectation(&c, &[]).unwrap(), 3.0);
    }

    #[test]
    fn tfim_has_expected_structure() {
        let h = transverse_field_ising(4, 1.0, 0.5, false);
        // 3 ZZ bonds + 4 X fields
        assert_eq!(h.num_terms(), 7);
        assert!(h.is_hermitian(0.0));
        let ring = transverse_field_ising(4, 1.0, 0.5, true);
        assert_eq!(ring.num_terms(), 8);
        // ZZ terms and X terms cannot share a measurement basis
        assert!(ring.qubit_wise_commuting_groups().len() >= 2);
    }

    #[test]
    fn standard_error_shrinks_with_samples() {
        let few = vec![b(1, 0), b(1, 1), b(1, 0), b(1, 1)];
        let many: Vec<BitString> = (0..400).map(|i| b(1, i % 2)).collect();
        assert!(z_string_standard_error(&many, &[0]) < z_string_standard_error(&few, &[0]));
        assert_eq!(z_string_standard_error(&few[..1], &[0]), 1.0);
    }
}

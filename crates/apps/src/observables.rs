//! Sample-based estimation of diagonal observables.
//!
//! Gate-by-gate sampling produces computational-basis bitstrings, so any
//! observable diagonal in that basis (Z-strings, cut counts, Ising
//! energies) can be estimated directly from samples — this is exactly how
//! the QAOA sweep scores parameter settings (paper Sec. 4.4).

use crate::graph::Graph;
use bgls_core::BitString;

/// Estimates `<Z_{q1} Z_{q2} ... >` for a Z-string supported on `qubits`
/// from computational-basis samples: each sample contributes
/// `(-1)^(parity of selected bits)`.
pub fn z_string_expectation(samples: &[BitString], qubits: &[usize]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: i64 = samples
        .iter()
        .map(|b| {
            let parity = qubits.iter().filter(|&&q| b.get(q)).count() % 2;
            if parity == 0 {
                1i64
            } else {
                -1i64
            }
        })
        .sum();
    total as f64 / samples.len() as f64
}

/// Estimates the Ising/MaxCut cost Hamiltonian expectation
/// `<C> = sum_edges (1 - <Z_a Z_b>) / 2` from samples.
pub fn maxcut_energy_expectation(graph: &Graph, samples: &[BitString]) -> f64 {
    graph
        .edges()
        .iter()
        .map(|&(a, b)| (1.0 - z_string_expectation(samples, &[a, b])) / 2.0)
        .sum()
}

/// Standard error of the mean for a +-1-valued estimator (conservative
/// Bernoulli bound at the observed expectation).
pub fn z_string_standard_error(samples: &[BitString], qubits: &[usize]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 1.0;
    }
    let mean = z_string_expectation(samples, qubits);
    // Var((-1)^b) = 1 - mean^2 for +-1 variables
    ((1.0 - mean * mean) / (n as f64 - 1.0)).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize, x: u64) -> BitString {
        BitString::from_u64(n, x)
    }

    #[test]
    fn all_zero_samples_give_plus_one() {
        let samples = vec![b(3, 0); 10];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), 1.0);
        assert_eq!(z_string_expectation(&samples, &[2]), 1.0);
    }

    #[test]
    fn anti_correlated_bits_give_minus_one() {
        let samples = vec![b(2, 0b01), b(2, 0b10), b(2, 0b01)];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), -1.0);
    }

    #[test]
    fn empty_support_is_identity() {
        let samples = vec![b(2, 0b11); 5];
        assert_eq!(z_string_expectation(&samples, &[]), 1.0);
    }

    #[test]
    fn mixed_samples_average() {
        // two +1 (00), two -1 (01): expectation 0
        let samples = vec![b(2, 0), b(2, 0), b(2, 1), b(2, 1)];
        assert_eq!(z_string_expectation(&samples, &[0, 1]), 0.0);
    }

    #[test]
    fn maxcut_energy_matches_mean_cut() {
        use crate::maxcut::mean_cut;
        let g = Graph::new(3, [(0, 1), (1, 2)]);
        let samples = vec![b(3, 0b010), b(3, 0b000), b(3, 0b011)];
        let via_energy = maxcut_energy_expectation(&g, &samples);
        let via_cuts = mean_cut(&g, &samples);
        assert!((via_energy - via_cuts).abs() < 1e-12);
    }

    #[test]
    fn standard_error_shrinks_with_samples() {
        let few = vec![b(1, 0), b(1, 1), b(1, 0), b(1, 1)];
        let many: Vec<BitString> = (0..400).map(|i| b(1, i % 2)).collect();
        assert!(z_string_standard_error(&many, &[0]) < z_string_standard_error(&few, &[0]));
        assert_eq!(z_string_standard_error(&few[..1], &[0]), 1.0);
    }
}

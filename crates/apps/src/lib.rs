//! # bgls-apps
//!
//! Applications and experiment workloads on top of the BGLS stack:
//!
//! * [`Graph`] / [`cut_value`] / [`brute_force_maxcut`] — MaxCut substrate;
//! * [`qaoa_maxcut_circuit`] / [`solve_maxcut_qaoa_mps`] — the QAOA
//!   pipeline of paper Sec. 4.4 (sweep, sample, extract the best cut);
//! * [`ghz_random_cnot_circuit`] and the random-circuit generators backing
//!   Figs. 6–7;
//! * [`overlap`] and friends — the distribution metrics of Figs. 4–5.
//!
//! ```
//! use bgls_apps::{brute_force_maxcut, cut_value, Graph};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let g = Graph::erdos_renyi(8, 0.4, &mut StdRng::seed_from_u64(1));
//! let (partition, cut) = brute_force_maxcut(&g);
//! assert_eq!(cut_value(&g, partition), cut);
//! ```

#![warn(missing_docs)]

mod graph;
mod maxcut;
mod metrics;
mod observables;
mod qaoa;
mod qec;
mod workloads;
mod xeb;

pub use graph::Graph;
pub use maxcut::{brute_force_maxcut, cut_value, mean_cut};
pub use metrics::{
    chi_squared_fits, chi_squared_statistic, chi_squared_threshold, classical_fidelity,
    empirical_distribution, linear_xeb, overlap, total_variation_distance,
};
pub use observables::{
    diagonal_expectation, maxcut_energy_expectation, maxcut_hamiltonian, transverse_field_ising,
    z_string_expectation, z_string_standard_error,
};
pub use qaoa::{
    qaoa_energy_landscape, qaoa_maxcut_circuit, qaoa_sweep, resolve_qaoa, solve_maxcut_qaoa,
    solve_maxcut_qaoa_auto, solve_maxcut_qaoa_mps, QaoaSolution, QaoaSweepResult,
};
pub use qec::{
    logical_error_rate, run_memory, run_memory_tableau, syndrome_digest, MemoryOutcome,
    RepetitionCode,
};
pub use xeb::{xeb_experiment, xeb_random_circuit, XebReport};

// Re-exported so app callers can name backends without a direct
// `bgls-backend` dependency.
pub use bgls_backend::{AnyState, BackendKind, SimulatorExt};
pub use workloads::{
    brickwork_circuit, ghz_circuit, ghz_random_cnot_circuit, random_fixed_cnot_circuit,
    random_fixed_depth_circuit, random_u2_brickwork, tfim_layer_circuit,
};

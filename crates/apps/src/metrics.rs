//! Distribution-comparison metrics for the overlap experiments
//! (paper Figs. 4–5): how well an empirical sample set matches the ideal
//! Born distribution.

use bgls_core::BitString;

/// Turns a list of sampled bitstrings into an empirical distribution over
/// `2^n` outcomes.
pub fn empirical_distribution(samples: &[BitString], n: usize) -> Vec<f64> {
    assert!(n <= 24, "distribution too wide to densify");
    let mut p = vec![0.0f64; 1usize << n];
    if samples.is_empty() {
        return p;
    }
    let w = 1.0 / samples.len() as f64;
    for s in samples {
        debug_assert_eq!(s.len(), n);
        p[s.as_u64() as usize] += w;
    }
    p
}

/// Histogram intersection `sum_i min(p_i, q_i)` — the "fractional
/// overlap" plotted in Figs. 4–5: 1 for identical distributions, 0 for
/// disjoint support.
pub fn overlap(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    p.iter().zip(q).map(|(&a, &b)| a.min(b)).sum()
}

/// Total variation distance `(1/2) sum |p_i - q_i|` (= 1 - overlap for
/// normalized distributions).
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Linear cross-entropy benchmarking (XEB) fidelity estimate:
/// `2^n * E_samples[ p_ideal(sample) ] - 1`. Equals ~1 when samples come
/// from the ideal distribution of a scrambling (Porter-Thomas) circuit
/// and ~0 for uniform noise — the random-circuit-sampling supremacy
/// metric the paper's introduction cites.
pub fn linear_xeb(samples: &[BitString], ideal: &[f64]) -> f64 {
    assert!(ideal.len().is_power_of_two());
    if samples.is_empty() {
        return 0.0;
    }
    let dim = ideal.len() as f64;
    let mean: f64 = samples
        .iter()
        .map(|s| ideal[s.as_u64() as usize])
        .sum::<f64>()
        / samples.len() as f64;
    dim * mean - 1.0
}

/// Classical (Bhattacharyya) fidelity `(sum_i sqrt(p_i q_i))^2`.
pub fn classical_fidelity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    let bc: f64 = p.iter().zip(q).map(|(&a, &b)| (a * b).sqrt()).sum();
    bc * bc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_distribution_normalizes() {
        let samples = vec![
            BitString::from_u64(2, 0),
            BitString::from_u64(2, 0),
            BitString::from_u64(2, 3),
            BitString::from_u64(2, 1),
        ];
        let p = empirical_distribution(&samples, 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_full_overlap() {
        let p = vec![0.25, 0.25, 0.5, 0.0];
        assert!((overlap(&p, &p) - 1.0).abs() < 1e-12);
        assert!(total_variation_distance(&p, &p) < 1e-12);
        assert!((classical_fidelity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_zero_overlap() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert_eq!(overlap(&p, &q), 0.0);
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(classical_fidelity(&p, &q), 0.0);
    }

    #[test]
    fn overlap_is_one_minus_tvd() {
        let p = vec![0.7, 0.1, 0.2, 0.0];
        let q = vec![0.4, 0.3, 0.2, 0.1];
        let ov = overlap(&p, &q);
        let tvd = total_variation_distance(&p, &q);
        assert!((ov + tvd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xeb_of_ideal_sampler_is_positive_and_uniform_is_zero() {
        // ideal: concentrated distribution; sampling from it gives XEB > 0
        let ideal = vec![0.7, 0.1, 0.1, 0.1];
        let faithful: Vec<BitString> = std::iter::repeat_n(BitString::from_u64(2, 0), 7)
            .chain((1..4).map(|v| BitString::from_u64(2, v)))
            .collect();
        let xeb = linear_xeb(&faithful, &ideal);
        assert!(xeb > 0.9, "xeb = {xeb}");
        // uniform sampler: XEB ~ 0
        let uniform: Vec<BitString> = (0..4).map(|v| BitString::from_u64(2, v)).collect();
        assert!(linear_xeb(&uniform, &ideal).abs() < 1e-12);
        assert_eq!(linear_xeb(&[], &ideal), 0.0);
    }

    #[test]
    fn empty_samples_give_zero_distribution() {
        let p = empirical_distribution(&[], 2);
        assert_eq!(p, vec![0.0; 4]);
    }
}

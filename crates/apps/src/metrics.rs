//! Distribution-comparison metrics for the overlap experiments
//! (paper Figs. 4–5): how well an empirical sample set matches the ideal
//! Born distribution.

use bgls_core::BitString;

/// Turns a list of sampled bitstrings into an empirical distribution over
/// `2^n` outcomes.
pub fn empirical_distribution(samples: &[BitString], n: usize) -> Vec<f64> {
    assert!(n <= 24, "distribution too wide to densify");
    let mut p = vec![0.0f64; 1usize << n];
    if samples.is_empty() {
        return p;
    }
    let w = 1.0 / samples.len() as f64;
    for s in samples {
        debug_assert_eq!(s.len(), n);
        p[s.as_u64() as usize] += w;
    }
    p
}

/// Histogram intersection `sum_i min(p_i, q_i)` — the "fractional
/// overlap" plotted in Figs. 4–5: 1 for identical distributions, 0 for
/// disjoint support.
pub fn overlap(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    p.iter().zip(q).map(|(&a, &b)| a.min(b)).sum()
}

/// Total variation distance `(1/2) sum |p_i - q_i|` (= 1 - overlap for
/// normalized distributions).
pub fn total_variation_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Linear cross-entropy benchmarking (XEB) fidelity estimate:
/// `2^n * E_samples[ p_ideal(sample) ] - 1`. Equals ~1 when samples come
/// from the ideal distribution of a scrambling (Porter-Thomas) circuit
/// and ~0 for uniform noise — the random-circuit-sampling supremacy
/// metric the paper's introduction cites.
pub fn linear_xeb(samples: &[BitString], ideal: &[f64]) -> f64 {
    assert!(ideal.len().is_power_of_two());
    if samples.is_empty() {
        return 0.0;
    }
    let dim = ideal.len() as f64;
    let mean: f64 = samples
        .iter()
        .map(|s| ideal[s.as_u64() as usize])
        .sum::<f64>()
        / samples.len() as f64;
    dim * mean - 1.0
}

/// Classical (Bhattacharyya) fidelity `(sum_i sqrt(p_i q_i))^2`.
pub fn classical_fidelity(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len());
    let bc: f64 = p.iter().zip(q).map(|(&a, &b)| (a * b).sqrt()).sum();
    bc * bc
}

/// Pearson chi-squared statistic of observed counts against expected
/// (unnormalized) weights: `sum_i (o_i - e_i)^2 / e_i` with
/// `e_i = total * w_i / sum(w)`. Zero-weight bins contribute nothing when
/// empty and `+inf` when any count landed in them.
pub fn chi_squared_statistic(observed: &[u64], expected_weights: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected_weights.len());
    let total: u64 = observed.iter().sum();
    let mass: f64 = expected_weights.iter().sum();
    assert!(mass > 0.0, "expected weights must have positive mass");
    let n = total as f64;
    let mut stat = 0.0;
    for (&o, &w) in observed.iter().zip(expected_weights) {
        let e = n * w / mass;
        if e <= 0.0 {
            if o > 0 {
                return f64::INFINITY;
            }
            continue;
        }
        let d = o as f64 - e;
        stat += d * d / e;
    }
    stat
}

/// Upper chi-squared quantile via the Wilson–Hilferty cube-root
/// approximation: the value a chi-squared variable with `df` degrees of
/// freedom exceeds with the tail probability of a `sigmas`-sigma normal
/// deviate. Slightly conservative (larger than exact) at small `df`,
/// accurate to a few percent otherwise — exactly what a statistical test
/// bound wants.
pub fn chi_squared_threshold(df: usize, sigmas: f64) -> f64 {
    assert!(df >= 1, "need at least one degree of freedom");
    let k = df as f64;
    let t = 1.0 - 2.0 / (9.0 * k) + sigmas * (2.0 / (9.0 * k)).sqrt();
    k * t.max(0.0).powi(3)
}

/// True when observed counts are statistically consistent with the
/// expected weights: chi-squared statistic below the `sigmas`-sigma
/// threshold at `df = (positive-weight bins) - 1`. This is the shared
/// replacement for ad-hoc "loose 5-sigma" count windows in statistical
/// tests; `sigmas = 5.0` keeps the false-failure probability per test
/// well below `1e-6`.
pub fn chi_squared_fits(observed: &[u64], expected_weights: &[f64], sigmas: f64) -> bool {
    let df = expected_weights
        .iter()
        .filter(|&&w| w > 0.0)
        .count()
        .saturating_sub(1)
        .max(1);
    chi_squared_statistic(observed, expected_weights) <= chi_squared_threshold(df, sigmas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_distribution_normalizes() {
        let samples = vec![
            BitString::from_u64(2, 0),
            BitString::from_u64(2, 0),
            BitString::from_u64(2, 3),
            BitString::from_u64(2, 1),
        ];
        let p = empirical_distribution(&samples, 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions_have_full_overlap() {
        let p = vec![0.25, 0.25, 0.5, 0.0];
        assert!((overlap(&p, &p) - 1.0).abs() < 1e-12);
        assert!(total_variation_distance(&p, &p) < 1e-12);
        assert!((classical_fidelity(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_distributions_have_zero_overlap() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        assert_eq!(overlap(&p, &q), 0.0);
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
        assert_eq!(classical_fidelity(&p, &q), 0.0);
    }

    #[test]
    fn overlap_is_one_minus_tvd() {
        let p = vec![0.7, 0.1, 0.2, 0.0];
        let q = vec![0.4, 0.3, 0.2, 0.1];
        let ov = overlap(&p, &q);
        let tvd = total_variation_distance(&p, &q);
        assert!((ov + tvd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn xeb_of_ideal_sampler_is_positive_and_uniform_is_zero() {
        // ideal: concentrated distribution; sampling from it gives XEB > 0
        let ideal = vec![0.7, 0.1, 0.1, 0.1];
        let faithful: Vec<BitString> = std::iter::repeat_n(BitString::from_u64(2, 0), 7)
            .chain((1..4).map(|v| BitString::from_u64(2, v)))
            .collect();
        let xeb = linear_xeb(&faithful, &ideal);
        assert!(xeb > 0.9, "xeb = {xeb}");
        // uniform sampler: XEB ~ 0
        let uniform: Vec<BitString> = (0..4).map(|v| BitString::from_u64(2, v)).collect();
        assert!(linear_xeb(&uniform, &ideal).abs() < 1e-12);
        assert_eq!(linear_xeb(&[], &ideal), 0.0);
    }

    #[test]
    fn empty_samples_give_zero_distribution() {
        let p = empirical_distribution(&[], 2);
        assert_eq!(p, vec![0.0; 4]);
    }

    #[test]
    fn chi_squared_statistic_matches_hand_computation() {
        // 60/40 observed against a fair coin: (60-50)^2/50 * 2 = 4
        let stat = chi_squared_statistic(&[60, 40], &[1.0, 1.0]);
        assert!((stat - 4.0).abs() < 1e-12, "stat = {stat}");
        // perfect agreement scores zero
        assert_eq!(chi_squared_statistic(&[25, 75], &[0.25, 0.75]), 0.0);
        // counts in a zero-weight bin are an unconditional failure
        assert_eq!(chi_squared_statistic(&[1, 99], &[0.0, 1.0]), f64::INFINITY);
        assert_eq!(chi_squared_statistic(&[0, 100], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn chi_squared_threshold_is_sane() {
        // df = 1 at 5 sigma: exact quantile is ~26.3; Wilson–Hilferty is
        // conservative but the right order
        let t1 = chi_squared_threshold(1, 5.0);
        assert!(t1 > 20.0 && t1 < 40.0, "t1 = {t1}");
        // large df: threshold approaches df + sigmas * sqrt(2 df)
        let t100 = chi_squared_threshold(100, 5.0);
        let gauss = 100.0 + 5.0 * (200.0f64).sqrt();
        assert!((t100 - gauss).abs() / gauss < 0.10, "t100 = {t100}");
        // monotone in both arguments
        assert!(chi_squared_threshold(10, 5.0) > chi_squared_threshold(10, 3.0));
        assert!(chi_squared_threshold(20, 5.0) > chi_squared_threshold(10, 5.0));
    }

    #[test]
    fn chi_squared_fits_accepts_fair_samples_and_rejects_biased_ones() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        assert!(chi_squared_fits(&counts, &[1.0; 4], 5.0));
        // grossly biased observations fail even a generous bound
        assert!(!chi_squared_fits(
            &[30_000, 4000, 3000, 3000],
            &[1.0; 4],
            5.0
        ));
    }
}

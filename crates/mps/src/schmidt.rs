//! Operator Schmidt decomposition of two-qubit gates.
//!
//! Any two-qubit unitary splits as `U = sum_k A_k (x) B_k` with at most
//! four terms; CNOT/CZ and all diagonal gates have rank 2 or less. The
//! lazy tensor-network state turns each 2-qubit gate into a new bond of
//! dimension equal to this rank — exactly how the paper's quimb `MPSState`
//! accumulates entanglement structure (Sec. 4.3).

use bgls_linalg::{svd, Matrix};

/// One Schmidt term: `coefficient-absorbed` factors on each qubit.
#[derive(Clone, Debug)]
pub struct SchmidtTerm {
    /// 2x2 factor acting on the first (most significant) qubit.
    pub a: Matrix,
    /// 2x2 factor acting on the second qubit.
    pub b: Matrix,
}

/// Decomposes a 4x4 two-qubit gate into Schmidt terms, dropping singular
/// values below `cutoff` (use ~1e-12 to trim exact zeros).
pub fn operator_schmidt(u: &Matrix, cutoff: f64) -> Vec<SchmidtTerm> {
    assert_eq!((u.rows(), u.cols()), (4, 4), "two-qubit gate expected");
    // Reshuffle U[(ia ib),(ja jb)] -> R[(ia ja),(ib jb)].
    let mut r = Matrix::zeros(4, 4);
    for ia in 0..2 {
        for ib in 0..2 {
            for ja in 0..2 {
                for jb in 0..2 {
                    r[(ia * 2 + ja, ib * 2 + jb)] = u[(ia * 2 + ib, ja * 2 + jb)];
                }
            }
        }
    }
    let d = svd(&r);
    let mut terms = Vec::new();
    for (k, &sigma) in d.s.iter().enumerate() {
        if sigma <= cutoff {
            break; // singular values are sorted descending
        }
        let w = sigma.sqrt();
        let mut a = Matrix::zeros(2, 2);
        let mut b = Matrix::zeros(2, 2);
        for ia in 0..2 {
            for ja in 0..2 {
                a[(ia, ja)] = d.u[(ia * 2 + ja, k)] * w;
            }
        }
        for ib in 0..2 {
            for jb in 0..2 {
                b[(ib, jb)] = d.vt[(k, ib * 2 + jb)] * w;
            }
        }
        terms.push(SchmidtTerm { a, b });
    }
    terms
}

/// Rebuilds the 4x4 gate from its Schmidt terms (testing).
pub fn reconstruct(terms: &[SchmidtTerm]) -> Matrix {
    let mut u = Matrix::zeros(4, 4);
    for t in terms {
        u = &u + &t.a.kron(&t.b);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_circuit::Gate;

    fn check_gate(g: &Gate, expected_rank: usize) {
        let u = g.unitary().unwrap();
        let terms = operator_schmidt(&u, 1e-10);
        assert_eq!(terms.len(), expected_rank, "{} rank", g.name());
        let r = reconstruct(&terms);
        assert!(r.approx_eq(&u, 1e-9), "{} reconstruction", g.name());
    }

    #[test]
    fn cnot_and_cz_are_rank_two() {
        check_gate(&Gate::Cnot, 2);
        check_gate(&Gate::Cz, 2);
    }

    #[test]
    fn cphase_small_angle_is_rank_two() {
        check_gate(&Gate::CPhase(0.3.into()), 2);
        check_gate(&Gate::Rzz(0.7.into()), 2);
    }

    #[test]
    fn swap_is_rank_four() {
        check_gate(&Gate::Swap, 4);
        check_gate(&Gate::ISwap, 4);
    }

    #[test]
    fn identity_like_is_rank_one() {
        let u = Matrix::identity(4);
        let terms = operator_schmidt(&u, 1e-10);
        assert_eq!(terms.len(), 1);
        assert!(reconstruct(&terms).approx_eq(&u, 1e-10));
    }

    #[test]
    fn random_two_qubit_unitary_reconstructs() {
        // product of gates gives a generic unitary
        let a = Gate::Cnot.unitary().unwrap();
        let h = Gate::H.unitary().unwrap().kron(&Gate::T.unitary().unwrap());
        let u = a.matmul(&h).matmul(&Gate::ISwap.unitary().unwrap());
        let terms = operator_schmidt(&u, 1e-12);
        assert!(terms.len() <= 4);
        assert!(reconstruct(&terms).approx_eq(&u, 1e-8));
    }
}

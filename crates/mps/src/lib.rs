//! # bgls-mps
//!
//! Tensor-network simulation states for BGLS (paper Sec. 4.3):
//!
//! * [`LazyNetworkState`] — the `cirq.contrib.quimb.MPSState` substitute:
//!   one tensor per qubit, each two-qubit gate inserts an
//!   operator-Schmidt bond, amplitudes by slicing + greedy contraction
//!   (the paper's `mps_bitstring_probability`);
//! * [`ChainMps`] — a canonical chain MPS with chi-capped SVD truncation
//!   ([`MpsOptions`]), swap-routing for long-range gates, and
//!   `O(n chi^2)` amplitudes — the representation behind the QAOA
//!   MaxCut experiment (Sec. 4.4);
//! * [`PurifiedMps`] — a locally-purified chain for *mixed* states: each
//!   site carries an extra Kraus leg, so channels apply deterministically
//!   (no trajectory forking) at `O(n chi^3 kappa)` cost instead of the
//!   density matrix's `4^n` memory ([`PurifiedOptions`]).
//!
//! ```
//! use bgls_circuit::Gate;
//! use bgls_core::{BglsState, BitString};
//! use bgls_mps::{ChainMps, MpsOptions};
//!
//! let mut mps = ChainMps::zero(3, MpsOptions::with_max_bond(4));
//! mps.apply_gate(&Gate::H, &[0]).unwrap();
//! mps.apply_gate(&Gate::Cnot, &[0, 2]).unwrap(); // long-range: swap-routed
//! let p = mps.probability(BitString::from_u64(3, 0b101));
//! assert!((p - 0.5).abs() < 1e-10);
//! ```

#![warn(missing_docs)]

mod chain;
mod lazy;
mod purified;
mod schmidt;

pub use chain::{ChainMps, MpsOptions};
pub use lazy::LazyNetworkState;
pub use purified::{PurifiedMps, PurifiedOptions};
pub use schmidt::{operator_schmidt, reconstruct, SchmidtTerm};

//! Canonical chain matrix-product state with bond truncation — the
//! chi-capped `MPSOptions` workflow used for the QAOA experiment
//! (paper Sec. 4.4).
//!
//! Site tensors `A_i[l, p, r]` hold one physical leg (`p`, dim 2) between
//! bond legs. Two-qubit gates on non-adjacent qubits are routed with
//! adjacent SWAPs under a tracked qubit-to-site permutation. After every
//! two-site gate the merged tensor is split by SVD, truncating to
//! `max_bond` and accumulating the discarded weight. Bitstring amplitudes
//! cost `O(n chi^2)` — the `f(n, d)` that makes wide, lowly-entangled
//! circuits cheap (Fig. 7).

use bgls_circuit::{Channel, Gate, PauliString};
use bgls_core::{AmplitudeState, BglsState, BitString, SimError};
use bgls_linalg::{gemm, svd_slice, Matrix, C64};
use rand::{Rng, RngCore};
use std::cell::RefCell;

/// Reusable buffers for the two-site split, the transfer-matrix norm,
/// and the batched amplitude sweep. Thread-local so `ChainMps` values
/// stay plain data (`Clone + Send + Sync`) while per-gate allocations
/// are amortized away — the same buffer-reuse discipline PR 3 applied
/// to replay states via `clone_from`.
#[derive(Default)]
struct ChainScratch {
    /// Merged two-site tensor `theta` (`2l x 2r`).
    theta: Vec<C64>,
    /// Gate-applied theta, fed straight to the SVD.
    gated: Vec<C64>,
    /// Transfer-matrix environment (`dim x dim`).
    rho: Vec<C64>,
    /// Next transfer-matrix environment.
    rho_next: Vec<C64>,
    /// `M_p^T rho` intermediate (`r x l`).
    tmat: Vec<C64>,
    /// Conjugated physical slice (`l x r`).
    conj_slice: Vec<C64>,
    /// One-qubit gate application buffer.
    buf_1q: Vec<C64>,
    /// Batched-sweep environment rows (`branches x dim`).
    env: Vec<C64>,
    /// Batched-sweep next environment rows.
    env_next: Vec<C64>,
}

thread_local! {
    static SCRATCH: RefCell<ChainScratch> = RefCell::new(ChainScratch::default());
}

/// Truncation options — the `cirq.contrib.quimb.MPSOptions` substitute.
#[derive(Clone, Copy, Debug)]
pub struct MpsOptions {
    /// Maximum bond dimension chi (`None` = unbounded, exact simulation).
    pub max_bond: Option<usize>,
    /// Singular values at or below this threshold are dropped.
    pub cutoff: f64,
}

impl Default for MpsOptions {
    fn default() -> Self {
        MpsOptions {
            max_bond: None,
            cutoff: 1e-12,
        }
    }
}

impl MpsOptions {
    /// Unbounded-chi exact options.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Caps the bond dimension at `chi`.
    pub fn with_max_bond(chi: usize) -> Self {
        MpsOptions {
            max_bond: Some(chi),
            cutoff: 1e-12,
        }
    }
}

/// One site tensor `A[l, p, r]`, row-major over `(l, p, r)`.
#[derive(Clone, Debug)]
struct Site {
    l: usize,
    r: usize,
    data: Vec<C64>,
}

impl Site {
    #[inline]
    fn at(&self, l: usize, p: usize, r: usize) -> C64 {
        self.data[(l * 2 + p) * self.r + r]
    }
}

/// Chain MPS over `n` qubits with a tracked qubit-to-site permutation.
#[derive(Clone, Debug)]
pub struct ChainMps {
    sites: Vec<Site>,
    site_of_qubit: Vec<usize>,
    qubit_of_site: Vec<usize>,
    options: MpsOptions,
    truncation_weight: f64,
    n: usize,
}

impl ChainMps {
    /// The all-zeros product state with the given truncation options.
    pub fn zero(n: usize, options: MpsOptions) -> Self {
        assert!(n > 0, "need at least one qubit");
        if let Some(chi) = options.max_bond {
            assert!(chi >= 1, "max_bond must be at least 1");
        }
        let sites = (0..n)
            .map(|_| Site {
                l: 1,
                r: 1,
                data: vec![C64::ONE, C64::ZERO],
            })
            .collect();
        ChainMps {
            sites,
            site_of_qubit: (0..n).collect(),
            qubit_of_site: (0..n).collect(),
            options,
            truncation_weight: 0.0,
            n,
        }
    }

    /// Accumulated discarded squared Schmidt weight across all
    /// truncations (0 for exact evolution).
    pub fn truncation_weight(&self) -> f64 {
        self.truncation_weight
    }

    /// Largest bond dimension currently in the chain.
    pub fn max_bond_dimension(&self) -> usize {
        self.sites.iter().map(|s| s.r).max().unwrap_or(1)
    }

    /// The truncation options in force.
    pub fn options(&self) -> MpsOptions {
        self.options
    }

    fn apply_1q_matrix(&mut self, u: &Matrix, q: usize) {
        let i = self.site_of_qubit[q];
        let site = &mut self.sites[i];
        let (l, r) = (site.l, site.r);
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.buf_1q.clear();
            sc.buf_1q.resize(site.data.len(), C64::ZERO);
            let out = &mut sc.buf_1q;
            for li in 0..l {
                for ri in 0..r {
                    let a0 = site.data[(li * 2) * r + ri];
                    let a1 = site.data[(li * 2 + 1) * r + ri];
                    out[(li * 2) * r + ri] = u[(0, 0)] * a0 + u[(0, 1)] * a1;
                    out[(li * 2 + 1) * r + ri] = u[(1, 0)] * a0 + u[(1, 1)] * a1;
                }
            }
            std::mem::swap(&mut site.data, &mut sc.buf_1q);
        });
    }

    /// Applies a 4x4 matrix to adjacent sites `(i, i+1)`; gate index bit 1
    /// (most significant) belongs to site `i`.
    ///
    /// The merge is one GEMM — site tensors `A[l, p, m]` and
    /// `B[m, p, r]` are *already* the row-major `(2l x m)` and
    /// `(m x 2r)` operands of the theta product — the gate application
    /// is a `(4 x 4)(4 x r)` GEMM per left-bond block, and the gated
    /// buffer doubles as the `(2l x 2r)` SVD input with no reshape copy.
    /// All intermediates live in the thread-local [`ChainScratch`].
    fn apply_two_site(&mut self, i: usize, u: &Matrix) {
        let (l, r) = (self.sites[i].l, self.sites[i + 1].r);
        let chi_cap = self.options.max_bond.unwrap_or(usize::MAX);
        let (d, err) = SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let a = &self.sites[i];
            let b = &self.sites[i + 1];
            let m = a.r;
            debug_assert_eq!(b.l, m);
            // theta[(l p1), (p2 r)] = sum_m A[(l p1), m] B[m, (p2 r)]
            sc.theta.clear();
            sc.theta.resize(l * 4 * r, C64::ZERO);
            gemm::matmul_into(&mut sc.theta, 2 * l, m, 2 * r, &a.data, &b.data);
            // gate application over the two physical legs: block `li` of
            // theta is (4 x r) row-major over the joint physical index
            sc.gated.clear();
            sc.gated.resize(l * 4 * r, C64::ZERO);
            for li in 0..l {
                gemm::matmul_into(
                    &mut sc.gated[li * 4 * r..(li + 1) * 4 * r],
                    4,
                    4,
                    r,
                    u.data(),
                    &sc.theta[li * 4 * r..(li + 1) * 4 * r],
                );
            }
            // `gated` is already the (2l x 2r) split matrix.
            let mut d = svd_slice(l * 2, 2 * r, &sc.gated);
            let err = d.truncate(chi_cap, self.options.cutoff);
            (d, err)
        });
        self.truncation_weight += err;
        let chi = d.s.len();
        let mut na_data = std::mem::take(&mut self.sites[i].data);
        na_data.clear();
        na_data.resize(l * 2 * chi, C64::ZERO);
        for li2 in 0..l * 2 {
            for k in 0..chi {
                na_data[li2 * chi + k] = d.u[(li2, k)];
            }
        }
        let mut nb_data = std::mem::take(&mut self.sites[i + 1].data);
        nb_data.clear();
        nb_data.resize(chi * 2 * r, C64::ZERO);
        for k in 0..chi {
            for p2 in 0..2 {
                for ri in 0..r {
                    nb_data[(k * 2 + p2) * r + ri] = d.vt[(k, p2 * r + ri)] * d.s[k];
                }
            }
        }
        self.sites[i] = Site {
            l,
            r: chi,
            data: na_data,
        };
        self.sites[i + 1] = Site {
            l: chi,
            r,
            data: nb_data,
        };
        // Truncation shrinks the state; renormalize exactly. (The chain is
        // not kept in canonical form, so the discarded singular weight
        // alone does not determine the norm change.)
        if err > 0.0 {
            let norm = self.norm_sqr();
            if norm > 0.0 {
                self.scale_first_site(1.0 / norm.sqrt());
            }
        }
    }

    /// Swaps the qubits at sites `i` and `i+1` (full SWAP gate + mapping
    /// update).
    fn swap_adjacent(&mut self, i: usize) {
        let swap = Gate::Swap.unitary().expect("SWAP");
        self.apply_two_site(i, &swap);
        let (qa, qb) = (self.qubit_of_site[i], self.qubit_of_site[i + 1]);
        self.qubit_of_site.swap(i, i + 1);
        self.site_of_qubit[qa] = i + 1;
        self.site_of_qubit[qb] = i;
    }

    fn apply_2q_matrix(&mut self, u: &Matrix, qa: usize, qb: usize) {
        // route qa's site next to qb's
        let mut sa = self.site_of_qubit[qa];
        let sb = self.site_of_qubit[qb];
        debug_assert_ne!(sa, sb);
        while sa + 1 < sb {
            self.swap_adjacent(sa);
            sa += 1;
        }
        while sa > sb + 1 {
            self.swap_adjacent(sa - 1);
            sa -= 1;
        }
        // now adjacent; left site index:
        if sa < sb {
            // site sa holds qa (gate's most significant bit): use u as-is
            self.apply_two_site(sa, u);
        } else {
            // left site holds qb: permute gate qubit roles
            let mut flipped = Matrix::zeros(4, 4);
            for i1 in 0..2 {
                for i2 in 0..2 {
                    for j1 in 0..2 {
                        for j2 in 0..2 {
                            flipped[(i2 * 2 + i1, j2 * 2 + j1)] = u[(i1 * 2 + i2, j1 * 2 + j2)];
                        }
                    }
                }
            }
            self.apply_two_site(sb, &flipped);
        }
    }

    /// One step of the amplitude sweep: contracts the left environment
    /// row vector `v` with site `i`'s tensor sliced at physical value
    /// `bit`. Both the scalar and batched amplitude paths are built from
    /// this exact routine, so they perform identical floating-point
    /// operations.
    fn sweep_step(&self, i: usize, bit: usize, v: &[C64]) -> Vec<C64> {
        let site = &self.sites[i];
        let mut next = vec![C64::ZERO; site.r];
        for (li, &vl) in v.iter().enumerate() {
            if vl == C64::ZERO {
                continue;
            }
            for (ri, slot) in next.iter_mut().enumerate() {
                *slot = vl.mul_add(site.at(li, bit, ri), *slot);
            }
        }
        next
    }

    /// Amplitude `<bits|psi>` in `O(n chi^2)` by sweeping the chain.
    pub fn amplitude_of(&self, bits: BitString) -> C64 {
        assert_eq!(bits.len(), self.n);
        let mut v = vec![C64::ONE];
        for i in 0..self.sites.len() {
            let bit = bits.get(self.qubit_of_site[i]) as usize;
            v = self.sweep_step(i, bit, &v);
        }
        debug_assert_eq!(v.len(), 1);
        v[0]
    }

    /// Batched amplitude sweep sharing environments across candidates:
    /// descends the chain level-synchronously, forking a branch's left
    /// environment only at sites where its candidate set disagrees on
    /// the physical bit. For the sampler's candidate sets (all `2^k`
    /// assignments of a small support) each shared chain prefix is
    /// contracted once instead of `2^k` times, and every site advances
    /// *all* branch environments with at most two gather-GEMMs (one per
    /// physical bit value) on the blocked kernels — a
    /// `(branches x chi)(chi x chi)`-shaped workload instead of one
    /// strided axpy per branch.
    ///
    /// Every environment element folds the same `sum_l v[l] * A[l,b,r]`
    /// terms in the same ascending order as [`ChainMps::sweep_step`], so
    /// the returned probabilities are bit-identical to per-candidate
    /// [`ChainMps::amplitude_of`] calls (the GEMM multiplies structural
    /// zeros the scalar sweep skips, which can flip the sign of an
    /// exact-zero component but never survives `norm_sqr`).
    fn amplitudes_shared_sweep(&self, candidates: &[BitString], out: &mut [f64]) {
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let mut env = std::mem::take(&mut sc.env);
            let mut next = std::mem::take(&mut sc.env_next);
            env.clear();
            env.push(C64::ONE);
            let mut dim = 1usize;
            // Branch `b` owns environment row `env[b*dim..(b+1)*dim]`
            // and the candidate indices `branches[b]`.
            let mut branches: Vec<Vec<usize>> = vec![(0..candidates.len()).collect()];
            for i in 0..self.sites.len() {
                let site = &self.sites[i];
                let (l, r) = (site.l, site.r);
                debug_assert_eq!(l, dim);
                let q = self.qubit_of_site[i];
                // Plan this level: (parent row, bit) per output branch,
                // grouped by bit so each group is one batched GEMM.
                let mut plan: [(Vec<usize>, Vec<Vec<usize>>); 2] = Default::default();
                for (b, idxs) in branches.drain(..).enumerate() {
                    let first = candidates[idxs[0]].get(q);
                    if idxs.iter().all(|&c| candidates[c].get(q) == first) {
                        plan[first as usize].0.push(b);
                        plan[first as usize].1.push(idxs);
                    } else {
                        let (ones, zeros): (Vec<usize>, Vec<usize>) =
                            idxs.into_iter().partition(|&c| candidates[c].get(q));
                        plan[0].0.push(b);
                        plan[0].1.push(zeros);
                        plan[1].0.push(b);
                        plan[1].1.push(ones);
                    }
                }
                let total = plan[0].0.len() + plan[1].0.len();
                next.clear();
                next.resize(total * r, C64::ZERO);
                let mut row0 = 0usize;
                for (bit, (parents, idx_groups)) in plan.iter_mut().enumerate() {
                    let rows = parents.len();
                    if rows == 0 {
                        continue;
                    }
                    gemm::with_scratch(|g| {
                        g.moff.clear();
                        g.moff.extend(parents.iter().map(|&p| p * dim));
                        g.a_koff.clear();
                        g.a_koff.extend(0..dim);
                        g.b_koff.clear();
                        g.b_koff.extend((0..l).map(|li| (li * 2 + bit) * r));
                        g.noff.clear();
                        g.noff.extend(0..r);
                        gemm::matmul_gather_into(
                            &mut next[row0 * r..(row0 + rows) * r],
                            rows,
                            dim,
                            r,
                            &env,
                            &site.data,
                            g,
                        );
                    });
                    branches.append(idx_groups);
                    row0 += rows;
                }
                std::mem::swap(&mut env, &mut next);
                dim = r;
            }
            debug_assert_eq!(dim, 1);
            for (b, idxs) in branches.iter().enumerate() {
                let p = env[b].norm_sqr();
                for &c in idxs {
                    out[c] = p;
                }
            }
            sc.env = env;
            sc.env_next = next;
        });
    }

    /// Squared norm via transfer-matrix contraction.
    ///
    /// Each site advances the environment as
    /// `rho' = sum_p M_p^T rho conj(M_p)` — two GEMMs per physical
    /// value on the blocked kernels (`O(n chi^3)` arithmetic at GEMM
    /// speed instead of the historical scalar `O(n chi^4)` loop), with
    /// every intermediate in the thread-local scratch. Deterministic: a
    /// pure function of the state, identical on every call and thread
    /// count.
    pub fn norm_sqr(&self) -> f64 {
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            // rho[l, l'] environment, starting 1x1
            sc.rho.clear();
            sc.rho.push(C64::ONE);
            let mut dim = 1usize;
            for site in &self.sites {
                let (l, r) = (site.l, site.r);
                debug_assert_eq!(l, dim);
                sc.rho_next.clear();
                sc.rho_next.resize(r * r, C64::ZERO);
                for p in 0..2 {
                    // T = M_p^T rho, gathering M_p[li, ri] = A[li, p, ri]
                    // straight from the site tensor (no transposed copy).
                    sc.tmat.clear();
                    sc.tmat.resize(r * l, C64::ZERO);
                    gemm::with_scratch(|g| {
                        g.moff.clear();
                        g.moff.extend(0..r);
                        g.a_koff.clear();
                        g.a_koff.extend((0..l).map(|li| (li * 2 + p) * r));
                        g.b_koff.clear();
                        g.b_koff.extend((0..l).map(|li| li * l));
                        g.noff.clear();
                        g.noff.extend(0..l);
                        gemm::matmul_gather_into(&mut sc.tmat, r, l, l, &site.data, &sc.rho, g);
                    });
                    // rho' += T conj(M_p)
                    sc.conj_slice.clear();
                    sc.conj_slice
                        .extend((0..l * r).map(|t| site.data[(t / r * 2 + p) * r + t % r].conj()));
                    gemm::matmul_acc_into(&mut sc.rho_next, r, l, r, &sc.tmat, &sc.conj_slice);
                }
                std::mem::swap(&mut sc.rho, &mut sc.rho_next);
                dim = r;
            }
            sc.rho[0].re
        })
    }

    /// Exact expectation `<psi| prod_q O_q |psi>` of a product of
    /// single-qubit operators, by the same GEMM transfer-matrix sweep as
    /// [`ChainMps::norm_sqr`] with the operator matrix elements woven
    /// into the bra-side slice: at each site,
    /// `rho' = sum_{p, p'} O[p', p] * M_p^T rho conj(M_{p'})`
    /// (identity sites keep the two-GEMM norm step). `O(n chi^3)`
    /// arithmetic on the blocked kernels, intermediates in the
    /// thread-local scratch. Deterministic: a pure function of the
    /// state.
    fn operator_product_expectation(&self, site_ops: &[Option<Matrix>]) -> C64 {
        debug_assert_eq!(site_ops.len(), self.sites.len());
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.rho.clear();
            sc.rho.push(C64::ONE);
            let mut dim = 1usize;
            for (site, op) in self.sites.iter().zip(site_ops) {
                let (l, r) = (site.l, site.r);
                debug_assert_eq!(l, dim);
                sc.rho_next.clear();
                sc.rho_next.resize(r * r, C64::ZERO);
                for p in 0..2 {
                    // T = M_p^T rho, gathered straight from the site
                    // tensor exactly as in norm_sqr.
                    sc.tmat.clear();
                    sc.tmat.resize(r * l, C64::ZERO);
                    gemm::with_scratch(|g| {
                        g.moff.clear();
                        g.moff.extend(0..r);
                        g.a_koff.clear();
                        g.a_koff.extend((0..l).map(|li| (li * 2 + p) * r));
                        g.b_koff.clear();
                        g.b_koff.extend((0..l).map(|li| li * l));
                        g.noff.clear();
                        g.noff.extend(0..l);
                        gemm::matmul_gather_into(&mut sc.tmat, r, l, l, &site.data, &sc.rho, g);
                    });
                    for p_out in 0..2 {
                        let w = match op {
                            // identity site: only the diagonal survives
                            None if p_out == p => C64::ONE,
                            None => continue,
                            Some(m) => m[(p_out, p)],
                        };
                        if w == C64::ZERO {
                            continue;
                        }
                        // rho' += T (w * conj(M_{p_out})): the operator
                        // element rides the conjugated bra slice.
                        sc.conj_slice.clear();
                        sc.conj_slice.extend(
                            (0..l * r)
                                .map(|t| site.data[(t / r * 2 + p_out) * r + t % r].conj() * w),
                        );
                        gemm::matmul_acc_into(&mut sc.rho_next, r, l, r, &sc.tmat, &sc.conj_slice);
                    }
                }
                std::mem::swap(&mut sc.rho, &mut sc.rho_next);
                dim = r;
            }
            debug_assert_eq!(dim, 1);
            sc.rho[0]
        })
    }

    /// Exact Pauli expectation `<psi|P|psi>` via the operator-woven
    /// transfer-matrix sweep above, with each Pauli factor routed to its
    /// current site through the tracked qubit-to-site permutation.
    pub fn pauli_expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check_qubits(&[q])?;
        }
        let mut site_ops: Vec<Option<Matrix>> = vec![None; self.sites.len()];
        for (q, op) in observable.iter() {
            site_ops[self.site_of_qubit[q]] = Some(op.matrix());
        }
        Ok(self.operator_product_expectation(&site_ops).re)
    }

    /// Rescales the whole state by `k` (used after non-unitary Kraus
    /// application).
    fn scale_first_site(&mut self, k: f64) {
        for z in &mut self.sites[0].data {
            *z *= k;
        }
    }

    /// Dense ket for verification (exponential).
    pub fn ket(&self) -> Vec<C64> {
        assert!(self.n <= 16, "ket() limited to 16 qubits");
        (0..1u64 << self.n)
            .map(|x| self.amplitude_of(BitString::from_u64(self.n, x)))
            .collect()
    }
}

impl BglsState for ChainMps {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        match qubits.len() {
            1 => {
                self.apply_1q_matrix(&u, qubits[0]);
                Ok(())
            }
            2 => {
                if qubits[0] == qubits[1] {
                    return Err(SimError::Invalid("duplicate qubit".into()));
                }
                self.apply_2q_matrix(&u, qubits[0], qubits[1]);
                Ok(())
            }
            k => Err(SimError::Unsupported(format!(
                "{k}-qubit gates on chain MPS (decompose first)"
            ))),
        }
    }

    fn probability(&self, bits: BitString) -> f64 {
        self.amplitude_of(bits).norm_sqr()
    }

    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        for c in candidates {
            assert_eq!(c.len(), self.n);
        }
        let mut out = vec![0.0; candidates.len()];
        if !candidates.is_empty() {
            self.amplitudes_shared_sweep(candidates, &mut out);
        }
        out
    }

    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        self.pauli_expectation(observable)
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubits(&[qubit])?;
        // apply |v><v| on the physical leg, then renormalize globally
        let mut p = Matrix::zeros(2, 2);
        let idx = value as usize;
        p[(idx, idx)] = C64::ONE;
        self.apply_1q_matrix(&p, qubit);
        let norm = self.norm_sqr();
        if norm <= 1e-300 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        self.scale_first_site(1.0 / norm.sqrt());
        Ok(())
    }

    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on chain MPS".into(),
            ));
        }
        Ok(channel
            .kraus()
            .iter()
            .map(|k| {
                let mut cand = self.clone();
                cand.apply_1q_matrix(k, qubits[0]);
                cand.norm_sqr()
            })
            .collect())
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on chain MPS".into(),
            ));
        }
        let k = channel
            .kraus()
            .get(branch)
            .ok_or_else(|| SimError::Invalid(format!("Kraus branch {branch} out of range")))?;
        // apply on a candidate so a zero-weight branch leaves the state
        // untouched instead of poisoned
        let mut cand = self.clone();
        cand.apply_1q_matrix(k, qubits[0]);
        let norm = cand.norm_sqr();
        if norm <= 0.0 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        cand.scale_first_site(1.0 / norm.sqrt());
        *self = cand;
        Ok(())
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on chain MPS".into(),
            ));
        }
        let mut r: f64 = rng.gen::<f64>();
        let last = channel.kraus().len() - 1;
        for (i, k) in channel.kraus().iter().enumerate() {
            let mut cand = self.clone();
            cand.apply_1q_matrix(k, qubits[0]);
            let norm = cand.norm_sqr();
            if r < norm || i == last {
                if norm <= 0.0 {
                    return Err(SimError::ZeroProbabilityEvent);
                }
                cand.scale_first_site(1.0 / norm.sqrt());
                *self = cand;
                return Ok(i);
            }
            r -= norm;
        }
        unreachable!("last branch always taken")
    }
}

impl AmplitudeState for ChainMps {
    fn amplitude(&self, bits: BitString) -> C64 {
        self.amplitude_of(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(n: usize, x: u64) -> BitString {
        BitString::from_u64(n, x)
    }

    #[test]
    fn zero_state() {
        let st = ChainMps::zero(3, MpsOptions::exact());
        assert!((st.probability(b(3, 0)) - 1.0).abs() < 1e-12);
        assert!((st.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ghz_adjacent() {
        let mut st = ChainMps::zero(3, MpsOptions::exact());
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        st.apply_gate(&Gate::Cnot, &[1, 2]).unwrap();
        assert!((st.probability(b(3, 0b000)) - 0.5).abs() < 1e-12);
        assert!((st.probability(b(3, 0b111)) - 0.5).abs() < 1e-12);
        assert!(st.probability(b(3, 0b010)) < 1e-15);
        assert_eq!(st.max_bond_dimension(), 2);
        assert_eq!(st.truncation_weight(), 0.0);
    }

    #[test]
    fn non_adjacent_gate_routes_with_swaps() {
        let mut st = ChainMps::zero(4, MpsOptions::exact());
        st.apply_gate(&Gate::X, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 3]).unwrap();
        assert!((st.probability(b(4, 0b1001)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_qubit_order_gate() {
        // control on the higher site
        let mut st = ChainMps::zero(2, MpsOptions::exact());
        st.apply_gate(&Gate::X, &[1]).unwrap();
        st.apply_gate(&Gate::Cnot, &[1, 0]).unwrap();
        assert!((st.probability(b(2, 0b11)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_cap_truncates_and_records_weight() {
        let mut st = ChainMps::zero(6, MpsOptions::with_max_bond(1));
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap(); // needs chi 2
        assert_eq!(st.max_bond_dimension(), 1);
        assert!(st.truncation_weight() > 0.1);
        // norm stays ~1 thanks to rescaling
        assert!((st.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_chain_matches_known_ghz_after_many_swaps() {
        let mut st = ChainMps::zero(5, MpsOptions::exact());
        st.apply_gate(&Gate::H, &[0]).unwrap();
        // entangle in scrambled order
        for (a, c) in [(0usize, 4usize), (4, 2), (2, 1), (1, 3)] {
            st.apply_gate(&Gate::Cnot, &[a, c]).unwrap();
        }
        assert!((st.probability(b(5, 0)) - 0.5).abs() < 1e-10);
        assert!((st.probability(b(5, 0b11111)) - 0.5).abs() < 1e-10);
        assert!((st.norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn kraus_trajectory_on_mps() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let ch = Channel::bit_flip(1.0).unwrap();
        let mut st = ChainMps::zero(2, MpsOptions::exact());
        let mut rng = StdRng::seed_from_u64(0);
        st.apply_kraus(&ch, &[1], &mut rng).unwrap();
        assert!((st.probability(b(2, 0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_qubit_gate_unsupported() {
        let mut st = ChainMps::zero(3, MpsOptions::exact());
        assert!(matches!(
            st.apply_gate(&Gate::Ccx, &[0, 1, 2]),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn kraus_branch_probabilities_sum_to_one_on_entangled_chain() {
        let mut st = ChainMps::zero(3, MpsOptions::exact());
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 2]).unwrap();
        let ch = Channel::amplitude_damping(0.4).unwrap();
        let probs = st.kraus_branch_probabilities(&ch, &[2]).unwrap();
        assert_eq!(probs.len(), 2);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        // P(decay) = gamma * P(|1>) = 0.4 * 0.5
        assert!((probs[1] - 0.2).abs() < 1e-10);
        // multi-qubit channels stay unsupported
        let two = Channel::depolarizing2(0.1).unwrap();
        assert!(matches!(
            st.kraus_branch_probabilities(&two, &[0, 1]),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn apply_kraus_branch_renormalizes() {
        let mut st = ChainMps::zero(2, MpsOptions::exact());
        st.apply_gate(&Gate::H, &[1]).unwrap();
        let ch = Channel::bit_flip(0.5).unwrap();
        st.apply_kraus_branch(&ch, 1, &[0]).unwrap();
        assert!((st.norm_sqr() - 1.0).abs() < 1e-10);
        assert!((st.probability(b(2, 0b01)) - 0.5).abs() < 1e-10);
        // zero-weight branch errors and leaves the state untouched
        let zero = Channel::bit_flip(0.0).unwrap();
        let mut st = ChainMps::zero(1, MpsOptions::exact());
        assert!(matches!(
            st.apply_kraus_branch(&zero, 1, &[0]),
            Err(SimError::ZeroProbabilityEvent)
        ));
        assert!((st.probability(b(1, 0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_expectation_matches_statevector() {
        use bgls_statevector::StateVector;
        // scrambled chain whose swap routing permutes qubit -> site
        let gates: [(Gate, Vec<usize>); 7] = [
            (Gate::H, vec![0]),
            (Gate::Cnot, vec![0, 3]),
            (Gate::T, vec![3]),
            (Gate::ISwap, vec![1, 4]),
            (Gate::Ry(0.6.into()), vec![2]),
            (Gate::Cnot, vec![4, 1]),
            (Gate::Rzz(0.4.into()), vec![0, 2]),
        ];
        let mut st = ChainMps::zero(5, MpsOptions::exact());
        let mut sv = StateVector::zero(5);
        for (g, qs) in gates {
            st.apply_gate(&g, &qs).unwrap();
            sv.apply_gate(&g, &qs).unwrap();
        }
        for s in ["I", "Z0", "X3", "Y1 Z2", "X0 X3", "Z0 Y1 X2 Z3 Y4"] {
            let p: PauliString = s.parse().unwrap();
            let a = st.pauli_expectation(&p).unwrap();
            let b = sv.expectation(&p).unwrap();
            assert!((a - b).abs() < 1e-10, "{s}: mps {a} vs sv {b}");
        }
        // identity sweep reproduces the norm
        assert!((st.pauli_expectation(&PauliString::identity()).unwrap() - 1.0).abs() < 1e-10);
        assert!(st.pauli_expectation(&"Z7".parse().unwrap()).is_err());
    }

    #[test]
    fn batched_probabilities_are_bit_identical_to_scalar() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // scramble a 6-qubit chain, including swaps that permute sites
        let mut st = ChainMps::zero(6, MpsOptions::exact());
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 3]).unwrap();
        st.apply_gate(&Gate::T, &[3]).unwrap();
        st.apply_gate(&Gate::ISwap, &[1, 4]).unwrap();
        st.apply_gate(&Gate::SqrtX, &[2]).unwrap();
        st.apply_gate(&Gate::Cnot, &[5, 2]).unwrap();
        st.apply_gate(&Gate::H, &[4]).unwrap();

        let mut rng = StdRng::seed_from_u64(7);
        // candidate sets of the sampler's shape (shared base, varying
        // support) and fully random sets
        let base = BitString::from_u64(6, rng.gen::<u64>());
        let mut sets: Vec<Vec<BitString>> = vec![
            base.candidates(&[2, 4]),
            base.candidates(&[0]),
            base.candidates(&[1, 3, 5]),
        ];
        sets.push(
            (0..9)
                .map(|_| BitString::from_u64(6, rng.gen::<u64>()))
                .collect(),
        );
        for cands in sets {
            let batched = st.probabilities_batch(&cands);
            for (c, p) in cands.iter().zip(&batched) {
                let scalar = st.probability(*c);
                assert!(
                    p.to_bits() == scalar.to_bits(),
                    "batched {p} != scalar {scalar} for {c}"
                );
            }
        }
    }
}

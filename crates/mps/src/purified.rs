//! Locally-purified MPS: an exact-channel tensor-network mixed state.
//!
//! Each site tensor `A_i[l, p, k, r]` carries a physical leg (`p`, dim 2)
//! *and* a Kraus/purification leg (`k`, per-site dimension) between its
//! bond legs, representing `rho = Tr_K |psi><psi|` for the joint
//! (physical x purification) MPS `|psi>`. A Kraus channel `{K_j}` applies
//! *deterministically* as a local tensor contraction that multiplies the
//! site's Kraus-leg dimension by the number of Kraus operators — no
//! trajectory fork, no randomness — after which the leg is compressed
//! back down by an SVD over the Kraus index (exact up to the configured
//! cap: the leg only ever contracts against its own conjugate, so the
//! unitary factor on the Kraus side can always be dropped).
//!
//! This is the mixed-state analogue of [`crate::ChainMps`]: the same
//! swap-routed two-site SVD evolution and transfer-matrix sweeps, with
//! every environment contraction additionally tracing the Kraus legs.
//! Probabilities are diagonal transfer sweeps (`Tr(rho |b><b|)`), Pauli
//! expectations weave the operator into the doubled sweep
//! (`Tr(rho P)`), and channels keep the sample-parallelized execution
//! path because [`PurifiedMps::channels_are_deterministic`] is true —
//! exactly like the density matrix, but at `O(n chi^3 kappa)` cost
//! instead of `O(4^n)` memory.

use bgls_circuit::{Channel, Gate, PauliString};
use bgls_core::{BglsState, BitString, SimError};
use bgls_linalg::{gemm, svd_slice, Matrix, C64};
use rand::RngCore;
use std::cell::RefCell;

/// Reusable buffers for the two-site split, Kraus-leg compression, and
/// the transfer-matrix sweeps. Thread-local so [`PurifiedMps`] values
/// stay plain data (`Clone + Send + Sync`) while per-op allocations are
/// amortized away, matching the [`crate::ChainMps`] scratch discipline.
#[derive(Default)]
struct PurifiedScratch {
    /// Merged two-site tensor `theta` (`(2 l k1) x (2 k2 r)`).
    theta: Vec<C64>,
    /// Gate- or channel-applied theta, fed straight to the SVD.
    gated: Vec<C64>,
    /// Kraus-leg compression matrix (`(2 l r) x k`).
    kmat: Vec<C64>,
    /// Transfer-matrix environment (`dim x dim`).
    rho: Vec<C64>,
    /// Next transfer-matrix environment.
    rho_next: Vec<C64>,
    /// `M^T rho` intermediate (`r x l`).
    tmat: Vec<C64>,
    /// Conjugated (and operator-weighted) bra slice (`l x r`).
    conj_slice: Vec<C64>,
    /// One-qubit gate / channel-growth buffer.
    buf: Vec<C64>,
}

thread_local! {
    static SCRATCH: RefCell<PurifiedScratch> = RefCell::new(PurifiedScratch::default());
}

/// Truncation options for the purified chain: a bond cap (as in
/// [`crate::MpsOptions`]) plus an independent cap on the per-site
/// Kraus-leg dimension.
#[derive(Clone, Copy, Debug)]
pub struct PurifiedOptions {
    /// Maximum bond dimension chi (`None` = unbounded, exact evolution).
    pub max_bond: Option<usize>,
    /// Maximum per-site Kraus-leg dimension kappa (`None` = unbounded;
    /// the leg is still rank-compressed exactly after every channel, so
    /// it never exceeds `2 * l * r` for the site's bond dimensions).
    pub max_kraus: Option<usize>,
    /// Singular values at or below this threshold are dropped.
    pub cutoff: f64,
}

impl Default for PurifiedOptions {
    fn default() -> Self {
        PurifiedOptions {
            max_bond: None,
            max_kraus: None,
            cutoff: 1e-12,
        }
    }
}

impl PurifiedOptions {
    /// Unbounded exact options.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Caps the bond dimension at `chi` (Kraus leg unbounded).
    pub fn with_max_bond(chi: usize) -> Self {
        PurifiedOptions {
            max_bond: Some(chi),
            ..Self::default()
        }
    }

    /// Caps the per-site Kraus-leg dimension at `kappa`.
    pub fn with_max_kraus(mut self, kappa: usize) -> Self {
        self.max_kraus = Some(kappa);
        self
    }
}

/// One site tensor `A[l, p, k, r]`, row-major over `(l, p, k, r)`.
#[derive(Clone, Debug)]
struct PSite {
    l: usize,
    r: usize,
    /// Kraus/purification-leg dimension (1 until a channel touches the
    /// site).
    k: usize,
    data: Vec<C64>,
}

impl PSite {
    #[inline]
    fn idx(&self, l: usize, p: usize, k: usize, r: usize) -> usize {
        ((l * 2 + p) * self.k + k) * self.r + r
    }
}

/// Locally-purified chain MPS over `n` qubits with a tracked
/// qubit-to-site permutation — the deterministic-channel mixed-state
/// backend (`BackendKind::PurifiedMps` in `bgls-backend`).
#[derive(Clone, Debug)]
pub struct PurifiedMps {
    sites: Vec<PSite>,
    site_of_qubit: Vec<usize>,
    qubit_of_site: Vec<usize>,
    options: PurifiedOptions,
    truncation_weight: f64,
    n: usize,
}

impl PurifiedMps {
    /// The all-zeros product state `|0..0><0..0|` with the given options.
    pub fn zero(n: usize, options: PurifiedOptions) -> Self {
        assert!(n > 0, "need at least one qubit");
        if let Some(chi) = options.max_bond {
            assert!(chi >= 1, "max_bond must be at least 1");
        }
        if let Some(kappa) = options.max_kraus {
            assert!(kappa >= 1, "max_kraus must be at least 1");
        }
        let sites = (0..n)
            .map(|_| PSite {
                l: 1,
                r: 1,
                k: 1,
                data: vec![C64::ONE, C64::ZERO],
            })
            .collect();
        PurifiedMps {
            sites,
            site_of_qubit: (0..n).collect(),
            qubit_of_site: (0..n).collect(),
            options,
            truncation_weight: 0.0,
            n,
        }
    }

    /// Accumulated discarded squared singular weight across all bond and
    /// Kraus-leg truncations (0 for exact evolution).
    pub fn truncation_weight(&self) -> f64 {
        self.truncation_weight
    }

    /// Largest bond dimension currently in the chain.
    pub fn max_bond_dimension(&self) -> usize {
        self.sites.iter().map(|s| s.r).max().unwrap_or(1)
    }

    /// Largest per-site Kraus-leg dimension currently in the chain.
    pub fn max_kraus_dimension(&self) -> usize {
        self.sites.iter().map(|s| s.k).max().unwrap_or(1)
    }

    /// The options in force.
    pub fn options(&self) -> PurifiedOptions {
        self.options
    }

    /// `Tr(rho)` via the doubled transfer-matrix sweep (1 on a
    /// normalized state). Deterministic: a pure function of the state.
    pub fn trace(&self) -> f64 {
        let ops: Vec<Option<Matrix>> = vec![None; self.sites.len()];
        self.transfer_sweep(&ops).re
    }

    /// Rescales the whole purification by `c` (scales `rho` by `c^2`).
    fn scale_first_site(&mut self, c: f64) {
        for z in &mut self.sites[0].data {
            *z *= c;
        }
    }

    /// Renormalizes `Tr(rho)` back to 1 after a truncation shrank it.
    fn renormalize(&mut self) {
        let tr = self.trace();
        if tr > 0.0 {
            self.scale_first_site(1.0 / tr.sqrt());
        }
    }

    fn apply_1q_matrix(&mut self, u: &Matrix, q: usize) {
        let i = self.site_of_qubit[q];
        let site = &mut self.sites[i];
        let (l, k, r) = (site.l, site.k, site.r);
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.buf.clear();
            sc.buf.resize(site.data.len(), C64::ZERO);
            for li in 0..l {
                for ki in 0..k {
                    for ri in 0..r {
                        let a0 = site.data[((li * 2) * k + ki) * r + ri];
                        let a1 = site.data[((li * 2 + 1) * k + ki) * r + ri];
                        sc.buf[((li * 2) * k + ki) * r + ri] = u[(0, 0)] * a0 + u[(0, 1)] * a1;
                        sc.buf[((li * 2 + 1) * k + ki) * r + ri] = u[(1, 0)] * a0 + u[(1, 1)] * a1;
                    }
                }
            }
            std::mem::swap(&mut site.data, &mut sc.buf);
        });
    }

    /// Merges sites `(i, i+1)` into `theta[(l p1 k1), (p2 k2 r)]` — one
    /// GEMM, since the row-major site layouts are already the
    /// `((2 l k1) x m)` and `(m x (2 k2 r))` operands — then applies
    /// `apply` to produce the gated split matrix (rows `l * 2 * k1_new`)
    /// and splits it back by SVD under the bond cap. `k1_new` is the
    /// left site's Kraus dimension after the operation (unchanged for
    /// gates, multiplied by the Kraus count for two-site channels).
    fn merge_apply_split(
        &mut self,
        i: usize,
        k1_new: usize,
        apply: impl Fn(&[C64], &mut [C64], usize, usize, usize, usize, usize),
    ) {
        let (l, r) = (self.sites[i].l, self.sites[i + 1].r);
        let (k1, k2) = (self.sites[i].k, self.sites[i + 1].k);
        let chi_cap = self.options.max_bond.unwrap_or(usize::MAX);
        let (d, err) = SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let a = &self.sites[i];
            let b = &self.sites[i + 1];
            let m = a.r;
            debug_assert_eq!(b.l, m);
            let rows = l * 2 * k1;
            let cols = 2 * k2 * r;
            sc.theta.clear();
            sc.theta.resize(rows * cols, C64::ZERO);
            gemm::matmul_into(&mut sc.theta, rows, m, cols, &a.data, &b.data);
            sc.gated.clear();
            sc.gated.resize(l * 2 * k1_new * cols, C64::ZERO);
            apply(&sc.theta, &mut sc.gated, l, k1, k2, r, cols);
            let mut d = svd_slice(l * 2 * k1_new, cols, &sc.gated);
            let err = d.truncate(chi_cap, self.options.cutoff);
            (d, err)
        });
        self.truncation_weight += err;
        let chi = d.s.len();
        let mut na_data = std::mem::take(&mut self.sites[i].data);
        na_data.clear();
        na_data.resize(l * 2 * k1_new * chi, C64::ZERO);
        for row in 0..l * 2 * k1_new {
            for c in 0..chi {
                na_data[row * chi + c] = d.u[(row, c)];
            }
        }
        let mut nb_data = std::mem::take(&mut self.sites[i + 1].data);
        nb_data.clear();
        nb_data.resize(chi * 2 * k2 * r, C64::ZERO);
        for c in 0..chi {
            for col in 0..2 * k2 * r {
                nb_data[c * 2 * k2 * r + col] = d.vt[(c, col)] * d.s[c];
            }
        }
        self.sites[i] = PSite {
            l,
            r: chi,
            k: k1_new,
            data: na_data,
        };
        self.sites[i + 1] = PSite {
            l: chi,
            r,
            k: k2,
            data: nb_data,
        };
        if err > 0.0 {
            self.renormalize();
        }
    }

    /// Applies a 4x4 matrix to adjacent sites `(i, i+1)`; gate index
    /// bit 1 (most significant) belongs to site `i`. The Kraus legs ride
    /// along untouched.
    fn apply_two_site(&mut self, i: usize, u: &Matrix) {
        let k1 = self.sites[i].k;
        self.merge_apply_split(i, k1, |theta, gated, l, k1, k2, r, cols| {
            for li in 0..l {
                for k1i in 0..k1 {
                    for k2i in 0..k2 {
                        for ri in 0..r {
                            let mut t = [C64::ZERO; 4];
                            for (p1, tp) in t.chunks_mut(2).enumerate() {
                                let row = (li * 2 + p1) * k1 + k1i;
                                for (p2, slot) in tp.iter_mut().enumerate() {
                                    let col = (p2 * k2 + k2i) * r + ri;
                                    *slot = theta[row * cols + col];
                                }
                            }
                            for po in 0..4 {
                                let mut acc = C64::ZERO;
                                for (pi, &tv) in t.iter().enumerate() {
                                    acc += u[(po, pi)] * tv;
                                }
                                let row = (li * 2 + po / 2) * k1 + k1i;
                                let col = ((po % 2) * k2 + k2i) * r + ri;
                                gated[row * cols + col] = acc;
                            }
                        }
                    }
                }
            }
        });
    }

    /// Swaps the qubits at sites `i` and `i+1` (full SWAP + mapping
    /// update). The purification legs stay attached to their *sites* —
    /// `rho` traces every Kraus leg regardless of position, so they need
    /// not follow the qubits.
    fn swap_adjacent(&mut self, i: usize) {
        let swap = Gate::Swap.unitary().expect("SWAP");
        self.apply_two_site(i, &swap);
        let (qa, qb) = (self.qubit_of_site[i], self.qubit_of_site[i + 1]);
        self.qubit_of_site.swap(i, i + 1);
        self.site_of_qubit[qa] = i + 1;
        self.site_of_qubit[qb] = i;
    }

    /// Routes `qa` adjacent to `qb` with swaps; returns the left site
    /// index and whether the gate's qubit roles must be flipped.
    fn route_adjacent(&mut self, qa: usize, qb: usize) -> (usize, bool) {
        let mut sa = self.site_of_qubit[qa];
        let sb = self.site_of_qubit[qb];
        debug_assert_ne!(sa, sb);
        while sa + 1 < sb {
            self.swap_adjacent(sa);
            sa += 1;
        }
        while sa > sb + 1 {
            self.swap_adjacent(sa - 1);
            sa -= 1;
        }
        if sa < sb {
            (sa, false)
        } else {
            (sb, true)
        }
    }

    /// Reverses the two qubit roles of a 4x4 operator matrix.
    fn flip_qubit_roles(u: &Matrix) -> Matrix {
        let mut flipped = Matrix::zeros(4, 4);
        for i1 in 0..2 {
            for i2 in 0..2 {
                for j1 in 0..2 {
                    for j2 in 0..2 {
                        flipped[(i2 * 2 + i1, j2 * 2 + j1)] = u[(i1 * 2 + i2, j1 * 2 + j2)];
                    }
                }
            }
        }
        flipped
    }

    fn apply_2q_matrix(&mut self, u: &Matrix, qa: usize, qb: usize) {
        let (left, flip) = self.route_adjacent(qa, qb);
        if flip {
            self.apply_two_site(left, &Self::flip_qubit_roles(u));
        } else {
            self.apply_two_site(left, u);
        }
    }

    /// Compresses site `i`'s Kraus leg by SVD over the Kraus index.
    ///
    /// The leg only ever contracts against its own conjugate (`rho`
    /// depends on the site matrix `Y[(l p r), k]` solely through
    /// `Y Y^dagger = U S^2 U^dagger`), so replacing `Y` with `U S` is
    /// *exact*; truncating below the rank (the `max_kraus` cap) discards
    /// the returned squared weight. Keeps every leg at
    /// `min(kappa_cap, rank) <= 2 l r`.
    fn compress_kraus_leg(&mut self, i: usize) -> f64 {
        let (l, k, r) = (self.sites[i].l, self.sites[i].k, self.sites[i].r);
        if k <= 1 {
            return 0.0;
        }
        let cap = self.options.max_kraus.unwrap_or(usize::MAX);
        let (d, err) = SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            let site = &self.sites[i];
            let rows = l * 2 * r;
            sc.kmat.clear();
            sc.kmat.resize(rows * k, C64::ZERO);
            for li in 0..l {
                for p in 0..2 {
                    for ki in 0..k {
                        for ri in 0..r {
                            sc.kmat[((li * 2 + p) * r + ri) * k + ki] =
                                site.data[site.idx(li, p, ki, ri)];
                        }
                    }
                }
            }
            let mut d = svd_slice(rows, k, &sc.kmat);
            let err = d.truncate(cap, self.options.cutoff);
            (d, err)
        });
        let k_new = d.s.len();
        let site = &mut self.sites[i];
        site.data.clear();
        site.data.resize(l * 2 * k_new * r, C64::ZERO);
        site.k = k_new;
        for li in 0..l {
            for p in 0..2 {
                for ki in 0..k_new {
                    for ri in 0..r {
                        site.data[((li * 2 + p) * k_new + ki) * r + ri] =
                            d.u[((li * 2 + p) * r + ri, ki)] * d.s[ki];
                    }
                }
            }
        }
        self.truncation_weight += err;
        err
    }

    /// Grows site `i`'s Kraus leg by the channel's operator count:
    /// `A'[l, p', (k, j), r] = sum_p K_j[p', p] A[l, p, k, r]`.
    fn grow_kraus_1q(&mut self, kraus: &[Matrix], i: usize) {
        let site = &mut self.sites[i];
        let (l, k, r) = (site.l, site.k, site.r);
        let m = kraus.len();
        let k_new = k * m;
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.buf.clear();
            sc.buf.resize(l * 2 * k_new * r, C64::ZERO);
            for li in 0..l {
                for ki in 0..k {
                    for ri in 0..r {
                        let a0 = site.data[((li * 2) * k + ki) * r + ri];
                        let a1 = site.data[((li * 2 + 1) * k + ki) * r + ri];
                        for (j, kj) in kraus.iter().enumerate() {
                            sc.buf[((li * 2) * k_new + ki * m + j) * r + ri] =
                                kj[(0, 0)] * a0 + kj[(0, 1)] * a1;
                            sc.buf[((li * 2 + 1) * k_new + ki * m + j) * r + ri] =
                                kj[(1, 0)] * a0 + kj[(1, 1)] * a1;
                        }
                    }
                }
            }
            std::mem::swap(&mut site.data, &mut sc.buf);
        });
        self.sites[i].k = k_new;
    }

    /// Applies the whole channel exactly (deterministic — no trajectory
    /// branch is sampled): Kraus-leg growth, then compression back under
    /// the cap. Supports one- and two-qubit channels; two-qubit channels
    /// are swap-routed adjacent like gates, with the new branch index
    /// folded into the left site's Kraus leg before the SVD split.
    pub fn apply_channel_exact(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        match qubits.len() {
            1 => {
                let i = self.site_of_qubit[qubits[0]];
                self.grow_kraus_1q(channel.kraus(), i);
                if self.compress_kraus_leg(i) > 0.0 {
                    self.renormalize();
                }
                Ok(())
            }
            2 => {
                if qubits[0] == qubits[1] {
                    return Err(SimError::Invalid("duplicate qubit".into()));
                }
                let (left, flip) = self.route_adjacent(qubits[0], qubits[1]);
                let kraus: Vec<Matrix> = if flip {
                    channel.kraus().iter().map(Self::flip_qubit_roles).collect()
                } else {
                    channel.kraus().to_vec()
                };
                let m = kraus.len();
                let k1_new = self.sites[left].k * m;
                self.merge_apply_split(left, k1_new, |theta, gated, l, k1, k2, r, cols| {
                    for li in 0..l {
                        for k1i in 0..k1 {
                            for k2i in 0..k2 {
                                for ri in 0..r {
                                    let mut t = [C64::ZERO; 4];
                                    for (p1, tp) in t.chunks_mut(2).enumerate() {
                                        let row = (li * 2 + p1) * k1 + k1i;
                                        for (p2, slot) in tp.iter_mut().enumerate() {
                                            let col = (p2 * k2 + k2i) * r + ri;
                                            *slot = theta[row * cols + col];
                                        }
                                    }
                                    for (j, kj) in kraus.iter().enumerate() {
                                        for po in 0..4 {
                                            let mut acc = C64::ZERO;
                                            for (pi, &tv) in t.iter().enumerate() {
                                                acc += kj[(po, pi)] * tv;
                                            }
                                            let row = ((li * 2 + po / 2) * k1 + k1i) * m + j;
                                            let col = ((po % 2) * k2 + k2i) * r + ri;
                                            gated[row * cols + col] = acc;
                                        }
                                    }
                                }
                            }
                        }
                    }
                });
                let mut err = self.compress_kraus_leg(left);
                err += self.compress_kraus_leg(left + 1);
                if err > 0.0 {
                    self.renormalize();
                }
                Ok(())
            }
            k => Err(SimError::Unsupported(format!(
                "{k}-qubit channels on the purified MPS (decompose first)"
            ))),
        }
    }

    /// The doubled transfer-matrix sweep `Tr(rho prod_site O_site)`:
    /// at each site `rho' = sum_{p, p', k} O[p', p] M_{p,k}^T rho
    /// conj(M_{p',k})` — the Kraus leg is traced against its own
    /// conjugate, identity sites keep only the diagonal. All GEMM work
    /// on the blocked kernels, intermediates in the thread-local
    /// scratch. Deterministic: a pure function of the state.
    fn transfer_sweep(&self, site_ops: &[Option<Matrix>]) -> C64 {
        debug_assert_eq!(site_ops.len(), self.sites.len());
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.rho.clear();
            sc.rho.push(C64::ONE);
            let mut dim = 1usize;
            for (site, op) in self.sites.iter().zip(site_ops) {
                let (l, k, r) = (site.l, site.k, site.r);
                debug_assert_eq!(l, dim);
                sc.rho_next.clear();
                sc.rho_next.resize(r * r, C64::ZERO);
                for p in 0..2 {
                    for ki in 0..k {
                        // T = M_{p,ki}^T rho, gathered straight from the
                        // site tensor (no transposed copy).
                        sc.tmat.clear();
                        sc.tmat.resize(r * l, C64::ZERO);
                        gemm::with_scratch(|g| {
                            g.moff.clear();
                            g.moff.extend(0..r);
                            g.a_koff.clear();
                            g.a_koff
                                .extend((0..l).map(|li| ((li * 2 + p) * k + ki) * r));
                            g.b_koff.clear();
                            g.b_koff.extend((0..l).map(|li| li * l));
                            g.noff.clear();
                            g.noff.extend(0..l);
                            gemm::matmul_gather_into(&mut sc.tmat, r, l, l, &site.data, &sc.rho, g);
                        });
                        for p_out in 0..2 {
                            let w = match op {
                                None if p_out == p => C64::ONE,
                                None => continue,
                                Some(m) => m[(p_out, p)],
                            };
                            if w == C64::ZERO {
                                continue;
                            }
                            // rho' += T (w * conj(M_{p_out,ki})): the
                            // operator element rides the conjugated bra
                            // slice; the Kraus index matches the ket side.
                            sc.conj_slice.clear();
                            sc.conj_slice.extend((0..l * r).map(|t| {
                                site.data[((t / r * 2 + p_out) * k + ki) * r + t % r].conj() * w
                            }));
                            gemm::matmul_acc_into(
                                &mut sc.rho_next,
                                r,
                                l,
                                r,
                                &sc.tmat,
                                &sc.conj_slice,
                            );
                        }
                    }
                }
                std::mem::swap(&mut sc.rho, &mut sc.rho_next);
                dim = r;
            }
            debug_assert_eq!(dim, 1);
            sc.rho[0]
        })
    }

    /// `Tr(rho |bits><bits|)` by the diagonal transfer sweep: each
    /// site's physical legs are pinned to the candidate's bit (routed
    /// through the qubit-to-site permutation), the Kraus legs traced.
    /// `O(n kappa chi^3)` per candidate.
    fn diagonal_probability(&self, bits: BitString) -> f64 {
        assert_eq!(bits.len(), self.n);
        SCRATCH.with(|cell| {
            let sc = &mut *cell.borrow_mut();
            sc.rho.clear();
            sc.rho.push(C64::ONE);
            let mut dim = 1usize;
            for (i, site) in self.sites.iter().enumerate() {
                let (l, k, r) = (site.l, site.k, site.r);
                debug_assert_eq!(l, dim);
                let p = bits.get(self.qubit_of_site[i]) as usize;
                sc.rho_next.clear();
                sc.rho_next.resize(r * r, C64::ZERO);
                for ki in 0..k {
                    sc.tmat.clear();
                    sc.tmat.resize(r * l, C64::ZERO);
                    gemm::with_scratch(|g| {
                        g.moff.clear();
                        g.moff.extend(0..r);
                        g.a_koff.clear();
                        g.a_koff
                            .extend((0..l).map(|li| ((li * 2 + p) * k + ki) * r));
                        g.b_koff.clear();
                        g.b_koff.extend((0..l).map(|li| li * l));
                        g.noff.clear();
                        g.noff.extend(0..l);
                        gemm::matmul_gather_into(&mut sc.tmat, r, l, l, &site.data, &sc.rho, g);
                    });
                    sc.conj_slice.clear();
                    sc.conj_slice.extend(
                        (0..l * r)
                            .map(|t| site.data[((t / r * 2 + p) * k + ki) * r + t % r].conj()),
                    );
                    gemm::matmul_acc_into(&mut sc.rho_next, r, l, r, &sc.tmat, &sc.conj_slice);
                }
                std::mem::swap(&mut sc.rho, &mut sc.rho_next);
                dim = r;
            }
            debug_assert_eq!(dim, 1);
            sc.rho[0].re.max(0.0)
        })
    }

    /// Exact `Tr(rho P)` via the operator-woven doubled transfer sweep,
    /// with each Pauli factor routed to its current site through the
    /// tracked qubit-to-site permutation.
    pub fn pauli_expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check_qubits(&[q])?;
        }
        let mut site_ops: Vec<Option<Matrix>> = vec![None; self.sites.len()];
        for (q, op) in observable.iter() {
            site_ops[self.site_of_qubit[q]] = Some(op.matrix());
        }
        Ok(self.transfer_sweep(&site_ops).re)
    }
}

impl BglsState for PurifiedMps {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        match qubits.len() {
            1 => {
                self.apply_1q_matrix(&u, qubits[0]);
                Ok(())
            }
            2 => {
                if qubits[0] == qubits[1] {
                    return Err(SimError::Invalid("duplicate qubit".into()));
                }
                self.apply_2q_matrix(&u, qubits[0], qubits[1]);
                Ok(())
            }
            k => Err(SimError::Unsupported(format!(
                "{k}-qubit gates on the purified MPS (decompose first)"
            ))),
        }
    }

    fn probability(&self, bits: BitString) -> f64 {
        self.diagonal_probability(bits)
    }

    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        // One diagonal sweep per candidate — the same floating-point
        // operations as the scalar path, so the batch is bit-identical
        // to standalone `probability` calls by construction.
        candidates
            .iter()
            .map(|&c| self.diagonal_probability(c))
            .collect()
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        _rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        self.apply_channel_exact(channel, qubits).map(|_| 0)
    }

    /// The purified chain absorbs the whole channel exactly, so the
    /// "branching" is the single certain branch `[1.0]` — a forest node
    /// on this backend never forks at a channel (mirrors the density
    /// matrix).
    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() > 2 {
            return Err(SimError::Unsupported(format!(
                "{}-qubit channels on the purified MPS (decompose first)",
                qubits.len()
            )));
        }
        let _ = channel;
        Ok(vec![1.0])
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        if branch != 0 {
            return Err(SimError::Invalid(format!(
                "deterministic channel has a single branch, got {branch}"
            )));
        }
        self.apply_channel_exact(channel, qubits)
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubits(&[qubit])?;
        let mut p = Matrix::zeros(2, 2);
        let idx = value as usize;
        p[(idx, idx)] = C64::ONE;
        self.apply_1q_matrix(&p, qubit);
        let tr = self.trace();
        if tr <= 1e-300 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        self.scale_first_site(1.0 / tr.sqrt());
        Ok(())
    }

    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        self.pauli_expectation(observable)
    }

    fn channels_are_deterministic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgls_statevector::DensityMatrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(n: usize, x: u64) -> BitString {
        BitString::from_u64(n, x)
    }

    #[test]
    fn zero_state_is_normalized() {
        let st = PurifiedMps::zero(3, PurifiedOptions::exact());
        assert!((st.probability(b(3, 0)) - 1.0).abs() < 1e-12);
        assert!((st.trace() - 1.0).abs() < 1e-12);
        assert_eq!(st.max_kraus_dimension(), 1);
    }

    #[test]
    fn ghz_probabilities_and_swap_routing() {
        let mut st = PurifiedMps::zero(4, PurifiedOptions::exact());
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 3]).unwrap(); // swap-routed
        st.apply_gate(&Gate::Cnot, &[3, 1]).unwrap();
        assert!((st.probability(b(4, 0b0000)) - 0.5).abs() < 1e-10);
        assert!((st.probability(b(4, 0b1011)) - 0.5).abs() < 1e-10);
        assert!(st.probability(b(4, 0b0001)) < 1e-12);
        assert!((st.trace() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn single_qubit_channel_matches_density_matrix() {
        let mut st = PurifiedMps::zero(1, PurifiedOptions::exact());
        let mut dm = DensityMatrix::zero(1);
        let mut rng = StdRng::seed_from_u64(1);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        dm.apply_gate(&Gate::H, &[0]).unwrap();
        let ch = Channel::amplitude_damping(0.3).unwrap();
        st.apply_kraus(&ch, &[0], &mut rng).unwrap();
        dm.apply_kraus(&ch, &[0], &mut rng).unwrap();
        for x in 0..2 {
            assert!((st.probability(b(1, x)) - dm.probability(b(1, x))).abs() < 1e-12);
        }
        // the channel decoheres: the X expectation shrinks identically
        let x: PauliString = "X0".parse().unwrap();
        assert!((st.pauli_expectation(&x).unwrap() - dm.expectation(&x).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn depolarized_ghz_matches_density() {
        let n = 4;
        let mut pm = PurifiedMps::zero(n, PurifiedOptions::exact());
        let mut dm = DensityMatrix::zero(n);
        let mut rng = StdRng::seed_from_u64(0);
        let both_g = |g: &Gate, qs: &[usize], pm: &mut PurifiedMps, dm: &mut DensityMatrix| {
            pm.apply_gate(g, qs).unwrap();
            dm.apply_gate(g, qs).unwrap();
        };
        both_g(&Gate::H, &[0], &mut pm, &mut dm);
        for i in 1..n {
            both_g(&Gate::Cnot, &[i - 1, i], &mut pm, &mut dm);
        }
        let ch = Channel::depolarizing(0.2).unwrap();
        for q in 0..n {
            pm.apply_kraus(&ch, &[q], &mut rng).unwrap();
            dm.apply_kraus(&ch, &[q], &mut rng).unwrap();
        }
        for x in 0..1u64 << n {
            let a = pm.probability(b(n, x));
            let e = dm.probability(b(n, x));
            assert!((a - e).abs() < 1e-10, "P({x:04b}): {a} vs {e}");
        }
        for s in ["Z0 Z1 Z2 Z3", "X0 X1 X2 X3", "Z1", "Y0 Y3"] {
            let p: PauliString = s.parse().unwrap();
            let a = pm.pauli_expectation(&p).unwrap();
            let e = dm.expectation(&p).unwrap();
            assert!((a - e).abs() < 1e-10, "{s}: {a} vs {e}");
        }
        // Kraus legs were grown by 4 per channel, then rank-compressed
        // back under 2 * l * r
        assert!(pm.max_kraus_dimension() <= 8);
    }

    #[test]
    fn two_qubit_channel_matches_density() {
        let n = 3;
        let mut pm = PurifiedMps::zero(n, PurifiedOptions::exact());
        let mut dm = DensityMatrix::zero(n);
        let mut rng = StdRng::seed_from_u64(0);
        for (g, qs) in [
            (Gate::H, vec![0]),
            (Gate::Cnot, vec![0, 1]),
            (Gate::T, vec![1]),
            (Gate::Ry(0.7.into()), vec![2]),
        ] {
            pm.apply_gate(&g, &qs).unwrap();
            dm.apply_gate(&g, &qs).unwrap();
        }
        let ch2 = Channel::depolarizing2(0.15).unwrap();
        // both orientations, including a swap-routed non-adjacent pair
        pm.apply_kraus(&ch2, &[0, 1], &mut rng).unwrap();
        dm.apply_kraus(&ch2, &[0, 1], &mut rng).unwrap();
        pm.apply_kraus(&ch2, &[2, 0], &mut rng).unwrap();
        dm.apply_kraus(&ch2, &[2, 0], &mut rng).unwrap();
        for x in 0..1u64 << n {
            let a = pm.probability(b(n, x));
            let e = dm.probability(b(n, x));
            assert!((a - e).abs() < 1e-10, "P({x:03b}): {a} vs {e}");
        }
        for s in ["Z0", "X1 Z2", "Y0 X1 Z2"] {
            let p: PauliString = s.parse().unwrap();
            let a = pm.pauli_expectation(&p).unwrap();
            let e = dm.expectation(&p).unwrap();
            assert!((a - e).abs() < 1e-10, "{s}: {a} vs {e}");
        }
    }

    #[test]
    fn project_conditions_the_mixed_state() {
        let mut st = PurifiedMps::zero(2, PurifiedOptions::exact());
        let mut rng = StdRng::seed_from_u64(0);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        st.apply_kraus(&Channel::depolarizing(0.1).unwrap(), &[0], &mut rng)
            .unwrap();
        st.project(0, true).unwrap();
        assert!((st.trace() - 1.0).abs() < 1e-10);
        // conditioned on qubit 0 = 1, qubit 1 is overwhelmingly 1
        let p11 = st.probability(b(2, 0b11));
        let p01 = st.probability(b(2, 0b01));
        assert!((p11 + p01 - 1.0).abs() < 1e-10);
        assert!(p11 > 0.9, "{p11}");
        // zero-probability projection errors without poisoning the state
        let mut zero = PurifiedMps::zero(1, PurifiedOptions::exact());
        assert!(matches!(
            zero.project(0, true),
            Err(SimError::ZeroProbabilityEvent)
        ));
    }

    #[test]
    fn deterministic_branch_contract_mirrors_density() {
        let st = PurifiedMps::zero(2, PurifiedOptions::exact());
        let ch = Channel::bit_flip(0.25).unwrap();
        assert!(st.channels_are_deterministic());
        assert_eq!(st.kraus_branch_probabilities(&ch, &[0]).unwrap(), vec![1.0]);
        let mut st = st;
        assert!(matches!(
            st.apply_kraus_branch(&ch, 1, &[0]),
            Err(SimError::Invalid(_))
        ));
        st.apply_kraus_branch(&ch, 0, &[0]).unwrap();
        assert!((st.probability(b(2, 0b00)) - 0.75).abs() < 1e-12);
        assert!((st.probability(b(2, 0b01)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bond_cap_truncates_and_renormalizes() {
        let mut st = PurifiedMps::zero(4, PurifiedOptions::with_max_bond(1));
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        assert_eq!(st.max_bond_dimension(), 1);
        assert!(st.truncation_weight() > 0.1);
        assert!((st.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kraus_cap_truncates_the_purification_leg() {
        let opts = PurifiedOptions::exact().with_max_kraus(1);
        let mut st = PurifiedMps::zero(1, opts);
        let mut rng = StdRng::seed_from_u64(0);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_kraus(&Channel::depolarizing(0.5).unwrap(), &[0], &mut rng)
            .unwrap();
        assert_eq!(st.max_kraus_dimension(), 1);
        assert!(st.truncation_weight() > 0.0);
        // truncation renormalizes so the state is still a unit-trace
        // (approximate) mixed state
        assert!((st.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_wide_operations_with_typed_errors() {
        let mut st = PurifiedMps::zero(3, PurifiedOptions::exact());
        assert!(matches!(
            st.apply_gate(&Gate::Ccx, &[0, 1, 2]),
            Err(SimError::Unsupported(_))
        ));
        assert!(st.pauli_expectation(&"Z7".parse().unwrap()).is_err());
    }

    #[test]
    fn batched_probabilities_are_bit_identical_to_scalar() {
        let mut st = PurifiedMps::zero(5, PurifiedOptions::exact());
        let mut rng = StdRng::seed_from_u64(3);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 3]).unwrap();
        st.apply_gate(&Gate::T, &[3]).unwrap();
        st.apply_kraus(&Channel::depolarizing(0.2).unwrap(), &[1], &mut rng)
            .unwrap();
        st.apply_gate(&Gate::ISwap, &[1, 4]).unwrap();
        let base = BitString::from_u64(5, 0b10110);
        let cands = base.candidates(&[0, 2, 4]);
        let batched = st.probabilities_batch(&cands);
        for (c, p) in cands.iter().zip(&batched) {
            assert_eq!(p.to_bits(), st.probability(*c).to_bits(), "{c}");
        }
    }

    #[test]
    fn identity_expectation_is_the_trace() {
        let mut st = PurifiedMps::zero(3, PurifiedOptions::exact());
        let mut rng = StdRng::seed_from_u64(0);
        st.apply_gate(&Gate::H, &[1]).unwrap();
        st.apply_kraus(&Channel::phase_flip(0.3).unwrap(), &[1], &mut rng)
            .unwrap();
        let id = PauliString::identity();
        assert!((st.pauli_expectation(&id).unwrap() - 1.0).abs() < 1e-10);
    }
}

//! The lazy tensor-network state — the `cirq.contrib.quimb.MPSState`
//! substitute (paper Sec. 4.3.2).
//!
//! One tensor per qubit. Single-qubit gates contract into the physical
//! leg; each two-qubit gate inserts a new bond between the two tensors
//! whose dimension is the gate's operator-Schmidt rank (2 for CNOT/CZ,
//! up to 4 generally). Nothing is ever truncated or canonicalized —
//! entanglement accumulates as bonds, and the cost of computing a
//! bitstring amplitude is the cost of contracting the sliced network
//! (`mps_bitstring_probability` in the paper):
//!
//! ```text
//! for each qubit i:  T_i <- isel(T_i, physical_i = b_i)
//! amplitude = contract(all sliced tensors)
//! ```

use crate::schmidt::operator_schmidt;
use bgls_circuit::{Channel, Gate, PauliString};
use bgls_core::{AmplitudeState, BglsState, BitString, SimError};
use bgls_linalg::{contract_network, BondId, Matrix, Tensor, C64};
use rand::{Rng, RngCore};

/// Per-qubit lazy tensor network state.
#[derive(Clone, Debug)]
pub struct LazyNetworkState {
    /// One tensor per qubit; the physical leg of qubit `q` carries label
    /// `q as BondId`.
    tensors: Vec<Tensor>,
    next_bond: BondId,
    n: usize,
}

impl LazyNetworkState {
    /// The all-zeros product state on `n` qubits.
    pub fn zero(n: usize) -> Self {
        let tensors = (0..n)
            .map(|q| Tensor::new(vec![q as BondId], vec![2], vec![C64::ONE, C64::ZERO]))
            .collect();
        LazyNetworkState {
            tensors,
            next_bond: n as BondId,
            n,
        }
    }

    fn fresh_bond(&mut self) -> BondId {
        let b = self.next_bond;
        self.next_bond += 1;
        b
    }

    /// Number of bonds currently attached to qubit `q`'s tensor.
    pub fn bond_count(&self, q: usize) -> usize {
        self.tensors[q].rank() - 1
    }

    /// Total entries across all tensors — the memory footprint that grows
    /// with accumulated entanglement.
    pub fn total_tensor_size(&self) -> usize {
        self.tensors.iter().map(Tensor::size).sum()
    }

    /// Applies a `2x2` matrix to qubit `q`'s physical leg.
    fn apply_1q_matrix(&mut self, m: &Matrix, q: usize) {
        let tmp = self.fresh_bond();
        let g = Tensor::new(vec![tmp, q as BondId], vec![2, 2], m.data().to_vec());
        let mut t = self.tensors[q].contract(&g);
        // contract consumed the physical label; the fresh label replaces it
        t.relabel(tmp, q as BondId);
        self.tensors[q] = t;
    }

    /// Applies a two-qubit gate by inserting a Schmidt bond between the
    /// tensors of `qa` (most significant gate bit) and `qb`.
    fn apply_2q_matrix(&mut self, u: &Matrix, qa: usize, qb: usize) {
        let terms = operator_schmidt(u, 1e-12);
        let rank = terms.len();
        let bond = self.fresh_bond();
        let tmp_a = self.fresh_bond();
        let tmp_b = self.fresh_bond();
        // Stack A_k into tensor [tmp_a(new phys), qa(old phys), bond(k)].
        let mut a_data = Vec::with_capacity(rank * 4);
        for new in 0..2 {
            for old in 0..2 {
                for t in &terms {
                    a_data.push(t.a[(new, old)]);
                }
            }
        }
        let ga = Tensor::new(vec![tmp_a, qa as BondId, bond], vec![2, 2, rank], a_data);
        let mut b_data = Vec::with_capacity(rank * 4);
        for new in 0..2 {
            for old in 0..2 {
                for t in &terms {
                    b_data.push(t.b[(new, old)]);
                }
            }
        }
        let gb = Tensor::new(vec![tmp_b, qb as BondId, bond], vec![2, 2, rank], b_data);
        let mut ta = self.tensors[qa].contract(&ga);
        ta.relabel(tmp_a, qa as BondId);
        self.tensors[qa] = ta;
        let mut tb = self.tensors[qb].contract(&gb);
        tb.relabel(tmp_b, qb as BondId);
        self.tensors[qb] = tb;
    }

    /// The paper's `mps_bitstring_probability`: slice every physical leg
    /// to the bit value, then fully contract the remaining network.
    pub fn amplitude_of(&self, bits: BitString) -> C64 {
        assert_eq!(bits.len(), self.n);
        let sliced: Vec<Tensor> = self
            .tensors
            .iter()
            .enumerate()
            .map(|(q, t)| t.isel(q as BondId, bits.get(q) as usize))
            .collect();
        contract_network(sliced)
    }

    /// Dense ket for verification (exponential).
    pub fn ket(&self) -> Vec<C64> {
        assert!(self.n <= 16, "ket() limited to 16 qubits");
        (0..1u64 << self.n)
            .map(|x| self.amplitude_of(BitString::from_u64(self.n, x)))
            .collect()
    }

    /// Squared norm `<psi|psi>` by contracting the doubled network: every
    /// tensor paired with its conjugate, sharing physical legs (summed
    /// over) while internal bonds of the conjugate copy are relabeled out
    /// of the way. Cost is contraction-bounded like any probability
    /// query; non-unitary operations (Kraus branches, projections) use it
    /// to renormalize.
    pub fn norm_sqr(&self) -> f64 {
        let offset = self.next_bond;
        let mut net: Vec<Tensor> = Vec::with_capacity(2 * self.n);
        for t in &self.tensors {
            net.push(t.clone());
            let labels: Vec<BondId> = t
                .labels()
                .iter()
                .map(|&l| if l >= self.n as BondId { l + offset } else { l })
                .collect();
            let data: Vec<C64> = t.data().iter().map(|z| z.conj()).collect();
            net.push(Tensor::new(labels, t.shape().to_vec(), data));
        }
        contract_network(net).re
    }

    /// Rescales the whole state by `k` (after non-unitary operations).
    fn rescale(&mut self, k: f64) {
        self.tensors[0] = self.tensors[0].scale(C64::real(k));
    }

    /// Exact Pauli expectation `<psi|P|psi>` by contracting the doubled
    /// network with operator tensors inserted: like
    /// [`LazyNetworkState::norm_sqr`], every tensor is paired with its
    /// conjugate, but on each supported qubit the bra copy's physical
    /// leg is relabeled and a 2x2 Pauli tensor bridges the bra and ket
    /// legs (off-support legs stay shared/summed). Cost is
    /// contraction-bounded like any probability query. Deterministic: a
    /// pure function of the state.
    pub fn pauli_expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        if let Some(q) = observable.max_qubit() {
            self.check_qubits(&[q])?;
        }
        let offset = self.next_bond;
        let mut net: Vec<Tensor> = Vec::with_capacity(2 * self.n + observable.weight());
        for (q, t) in self.tensors.iter().enumerate() {
            net.push(t.clone());
            let op = observable.op_on(q);
            let labels: Vec<BondId> = t
                .labels()
                .iter()
                .map(|&l| {
                    if l >= self.n as BondId || (l == q as BondId && op.is_some()) {
                        // internal bonds always split; the physical leg
                        // splits only where an operator sits between the
                        // bra and ket copies
                        l + offset
                    } else {
                        l
                    }
                })
                .collect();
            let data: Vec<C64> = t.data().iter().map(|z| z.conj()).collect();
            net.push(Tensor::new(labels, t.shape().to_vec(), data));
            if let Some(op) = op {
                // O[p_bra, p_ket] bridging the split physical leg
                let m = op.matrix();
                net.push(Tensor::new(
                    vec![q as BondId + offset, q as BondId],
                    vec![2, 2],
                    m.data().to_vec(),
                ));
            }
        }
        Ok(contract_network(net).re)
    }
}

impl BglsState for LazyNetworkState {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        match qubits.len() {
            1 => {
                self.apply_1q_matrix(&u, qubits[0]);
                Ok(())
            }
            2 => {
                if qubits[0] == qubits[1] {
                    return Err(SimError::Invalid("duplicate qubit".into()));
                }
                self.apply_2q_matrix(&u, qubits[0], qubits[1]);
                Ok(())
            }
            k => Err(SimError::Unsupported(format!(
                "{k}-qubit gates on the lazy tensor network (decompose first)"
            ))),
        }
    }

    fn probability(&self, bits: BitString) -> f64 {
        self.amplitude_of(bits).norm_sqr()
    }

    /// Batched form sharing the slicing stage: tensors of qubits on which
    /// every candidate agrees are sliced once and reused, so only the
    /// varying qubits (the gate support, for the sampler's candidate
    /// sets) are re-sliced per candidate. The per-candidate contraction
    /// consumes the same sliced tensors in the same order as
    /// [`LazyNetworkState::amplitude_of`], so results are bit-identical
    /// to scalar calls.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        let Some(first) = candidates.first() else {
            return Vec::new();
        };
        assert_eq!(first.len(), self.n);
        let shared: Vec<Option<Tensor>> = (0..self.n)
            .map(|q| {
                let b0 = first.get(q);
                candidates
                    .iter()
                    .all(|c| c.get(q) == b0)
                    .then(|| self.tensors[q].isel(q as BondId, b0 as usize))
            })
            .collect();
        candidates
            .iter()
            .map(|c| {
                assert_eq!(c.len(), self.n);
                let sliced: Vec<Tensor> = shared
                    .iter()
                    .enumerate()
                    .map(|(q, t)| match t {
                        Some(t) => t.clone(),
                        None => self.tensors[q].isel(q as BondId, c.get(q) as usize),
                    })
                    .collect();
                contract_network(sliced).norm_sqr()
            })
            .collect()
    }

    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        self.pauli_expectation(observable)
    }

    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on the lazy tensor network".into(),
            ));
        }
        Ok(channel
            .kraus()
            .iter()
            .map(|k| {
                let mut cand = self.clone();
                cand.apply_1q_matrix(k, qubits[0]);
                cand.norm_sqr()
            })
            .collect())
    }

    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on the lazy tensor network".into(),
            ));
        }
        let k = channel
            .kraus()
            .get(branch)
            .ok_or_else(|| SimError::Invalid(format!("Kraus branch {branch} out of range")))?;
        // apply on a candidate so a zero-weight branch leaves the state
        // untouched instead of poisoned
        let mut cand = self.clone();
        cand.apply_1q_matrix(k, qubits[0]);
        let norm = cand.norm_sqr();
        if norm <= 0.0 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        cand.rescale(1.0 / norm.sqrt());
        *self = cand;
        Ok(())
    }

    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        self.check_qubits(qubits)?;
        if qubits.len() != 1 {
            return Err(SimError::Unsupported(
                "multi-qubit channels on the lazy tensor network".into(),
            ));
        }
        // Quantum-trajectory branch selection: P(i) = |K_i |psi>|^2.
        let mut r: f64 = rng.gen::<f64>();
        let last = channel.kraus().len() - 1;
        for (i, k) in channel.kraus().iter().enumerate() {
            let mut cand = self.clone();
            cand.apply_1q_matrix(k, qubits[0]);
            let norm = cand.norm_sqr();
            if r < norm || i == last {
                if norm <= 0.0 {
                    return Err(SimError::ZeroProbabilityEvent);
                }
                cand.rescale(1.0 / norm.sqrt());
                *self = cand;
                return Ok(i);
            }
            r -= norm;
        }
        unreachable!("last branch always taken")
    }

    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        self.check_qubits(&[qubit])?;
        let mut p = Matrix::zeros(2, 2);
        let idx = value as usize;
        p[(idx, idx)] = C64::ONE;
        self.apply_1q_matrix(&p, qubit);
        let norm = self.norm_sqr();
        if norm <= 1e-300 {
            return Err(SimError::ZeroProbabilityEvent);
        }
        self.rescale(1.0 / norm.sqrt());
        Ok(())
    }
}

impl AmplitudeState for LazyNetworkState {
    fn amplitude(&self, bits: BitString) -> C64 {
        self.amplitude_of(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_amplitudes() {
        let st = LazyNetworkState::zero(3);
        assert!((st.probability(BitString::zeros(3)) - 1.0).abs() < 1e-12);
        assert!(st.probability(BitString::from_u64(3, 0b001)) < 1e-15);
    }

    #[test]
    fn single_qubit_gates_work() {
        let mut st = LazyNetworkState::zero(2);
        st.apply_gate(&Gate::X, &[1]).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 0.5).abs() < 1e-12);
        assert!((st.probability(BitString::from_u64(2, 0b11)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_via_bond_insertion() {
        let mut st = LazyNetworkState::zero(3);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        st.apply_gate(&Gate::Cnot, &[1, 2]).unwrap();
        assert!((st.probability(BitString::from_u64(3, 0b000)) - 0.5).abs() < 1e-12);
        assert!((st.probability(BitString::from_u64(3, 0b111)) - 0.5).abs() < 1e-12);
        assert!(st.probability(BitString::from_u64(3, 0b101)) < 1e-15);
        // each CNOT added one rank-2 bond
        assert_eq!(st.bond_count(0), 1);
        assert_eq!(st.bond_count(1), 2);
        assert_eq!(st.bond_count(2), 1);
    }

    #[test]
    fn bond_accumulation_grows_tensor_size() {
        let mut st = LazyNetworkState::zero(2);
        let initial = st.total_tensor_size();
        for _ in 0..4 {
            st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        }
        assert!(st.total_tensor_size() > initial * 4);
    }

    #[test]
    fn three_qubit_gate_unsupported() {
        let mut st = LazyNetworkState::zero(3);
        assert!(matches!(
            st.apply_gate(&Gate::Ccx, &[0, 1, 2]),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn batched_probabilities_are_bit_identical_to_scalar() {
        let mut st = LazyNetworkState::zero(4);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::ISwap, vec![1, 3]),
            (Gate::Rzz(0.4.into()), vec![2, 3]),
        ] {
            st.apply_gate(&g, &qs).unwrap();
        }
        let base = BitString::from_u64(4, 0b0110);
        for cands in [base.candidates(&[1, 3]), base.candidates(&[0])] {
            let batched = st.probabilities_batch(&cands);
            for (c, p) in cands.iter().zip(&batched) {
                assert_eq!(p.to_bits(), st.probability(*c).to_bits(), "{c}");
            }
        }
        assert!(st.probabilities_batch(&[]).is_empty());
    }

    #[test]
    fn pauli_expectation_matches_statevector() {
        use bgls_core::BglsState as _;
        use bgls_statevector::StateVector;
        let gates: [(Gate, Vec<usize>); 6] = [
            (Gate::H, vec![0]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::ISwap, vec![1, 3]),
            (Gate::Rzz(0.4.into()), vec![2, 3]),
            (Gate::Ry(0.9.into()), vec![0]),
        ];
        let mut st = LazyNetworkState::zero(4);
        let mut sv = StateVector::zero(4);
        for (g, qs) in gates {
            st.apply_gate(&g, &qs).unwrap();
            sv.apply_gate(&g, &qs).unwrap();
        }
        for s in ["I", "Z0", "X2", "Y1 Z3", "X0 Y1 Z2 X3"] {
            let p: PauliString = s.parse().unwrap();
            let a = st.pauli_expectation(&p).unwrap();
            let b = sv.expectation(&p).unwrap();
            assert!((a - b).abs() < 1e-10, "{s}: lazy {a} vs sv {b}");
        }
        assert!(st.pauli_expectation(&"Z6".parse().unwrap()).is_err());
    }

    #[test]
    fn doubled_network_norm_matches_ket_norm() {
        let mut st = LazyNetworkState::zero(3);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::Cnot, vec![0, 1]),
            (Gate::T, vec![2]),
            (Gate::ISwap, vec![1, 2]),
        ] {
            st.apply_gate(&g, &qs).unwrap();
        }
        let from_ket: f64 = st.ket().iter().map(|a| a.norm_sqr()).sum();
        assert!((st.norm_sqr() - from_ket).abs() < 1e-10);
        assert!((st.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kraus_branches_and_application_work() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut st = LazyNetworkState::zero(2);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        let ch = Channel::amplitude_damping(0.6).unwrap();
        let probs = st.kraus_branch_probabilities(&ch, &[1]).unwrap();
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!((probs[1] - 0.3).abs() < 1e-10, "decay branch {}", probs[1]);
        // forcing the decay branch collapses qubit 1 to |0>
        let mut decayed = st.clone();
        decayed.apply_kraus_branch(&ch, 1, &[1]).unwrap();
        assert!(
            (decayed.probability(BitString::from_u64(2, 0b01)) - 1.0).abs() < 1e-10,
            "amplitude damping maps the |11> component onto |01>"
        );
        // sampled application selects some branch and renormalizes
        let mut rng = StdRng::seed_from_u64(5);
        let branch = st.apply_kraus(&ch, &[1], &mut rng).unwrap();
        assert!(branch < 2);
        assert!((st.norm_sqr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn projection_conditions_the_network() {
        let mut st = LazyNetworkState::zero(2);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        st.project(0, true).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b11)) - 1.0).abs() < 1e-10);
        // projecting onto the now-impossible outcome errors
        assert!(matches!(
            st.project(0, false),
            Err(SimError::ZeroProbabilityEvent)
        ));
    }

    #[test]
    fn norm_preserved_through_random_gates() {
        let mut st = LazyNetworkState::zero(3);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::ISwap, vec![1, 2]),
            (Gate::Rzz(0.4.into()), vec![0, 1]),
            (Gate::SqrtX, vec![2]),
        ] {
            st.apply_gate(&g, &qs).unwrap();
        }
        let total: f64 = st.ket().iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-9, "norm {total}");
    }
}

//! The lazy tensor-network state — the `cirq.contrib.quimb.MPSState`
//! substitute (paper Sec. 4.3.2).
//!
//! One tensor per qubit. Single-qubit gates contract into the physical
//! leg; each two-qubit gate inserts a new bond between the two tensors
//! whose dimension is the gate's operator-Schmidt rank (2 for CNOT/CZ,
//! up to 4 generally). Nothing is ever truncated or canonicalized —
//! entanglement accumulates as bonds, and the cost of computing a
//! bitstring amplitude is the cost of contracting the sliced network
//! (`mps_bitstring_probability` in the paper):
//!
//! ```text
//! for each qubit i:  T_i <- isel(T_i, physical_i = b_i)
//! amplitude = contract(all sliced tensors)
//! ```

use crate::schmidt::operator_schmidt;
use bgls_circuit::Gate;
use bgls_core::{AmplitudeState, BglsState, BitString, SimError};
use bgls_linalg::{contract_network, BondId, Matrix, Tensor, C64};

/// Per-qubit lazy tensor network state.
#[derive(Clone, Debug)]
pub struct LazyNetworkState {
    /// One tensor per qubit; the physical leg of qubit `q` carries label
    /// `q as BondId`.
    tensors: Vec<Tensor>,
    next_bond: BondId,
    n: usize,
}

impl LazyNetworkState {
    /// The all-zeros product state on `n` qubits.
    pub fn zero(n: usize) -> Self {
        let tensors = (0..n)
            .map(|q| Tensor::new(vec![q as BondId], vec![2], vec![C64::ONE, C64::ZERO]))
            .collect();
        LazyNetworkState {
            tensors,
            next_bond: n as BondId,
            n,
        }
    }

    fn fresh_bond(&mut self) -> BondId {
        let b = self.next_bond;
        self.next_bond += 1;
        b
    }

    /// Number of bonds currently attached to qubit `q`'s tensor.
    pub fn bond_count(&self, q: usize) -> usize {
        self.tensors[q].rank() - 1
    }

    /// Total entries across all tensors — the memory footprint that grows
    /// with accumulated entanglement.
    pub fn total_tensor_size(&self) -> usize {
        self.tensors.iter().map(Tensor::size).sum()
    }

    /// Applies a `2x2` matrix to qubit `q`'s physical leg.
    fn apply_1q_matrix(&mut self, m: &Matrix, q: usize) {
        let tmp = self.fresh_bond();
        let g = Tensor::new(vec![tmp, q as BondId], vec![2, 2], m.data().to_vec());
        let mut t = self.tensors[q].contract(&g);
        // contract consumed the physical label; the fresh label replaces it
        t.relabel(tmp, q as BondId);
        self.tensors[q] = t;
    }

    /// Applies a two-qubit gate by inserting a Schmidt bond between the
    /// tensors of `qa` (most significant gate bit) and `qb`.
    fn apply_2q_matrix(&mut self, u: &Matrix, qa: usize, qb: usize) {
        let terms = operator_schmidt(u, 1e-12);
        let rank = terms.len();
        let bond = self.fresh_bond();
        let tmp_a = self.fresh_bond();
        let tmp_b = self.fresh_bond();
        // Stack A_k into tensor [tmp_a(new phys), qa(old phys), bond(k)].
        let mut a_data = Vec::with_capacity(rank * 4);
        for new in 0..2 {
            for old in 0..2 {
                for t in &terms {
                    a_data.push(t.a[(new, old)]);
                }
            }
        }
        let ga = Tensor::new(vec![tmp_a, qa as BondId, bond], vec![2, 2, rank], a_data);
        let mut b_data = Vec::with_capacity(rank * 4);
        for new in 0..2 {
            for old in 0..2 {
                for t in &terms {
                    b_data.push(t.b[(new, old)]);
                }
            }
        }
        let gb = Tensor::new(vec![tmp_b, qb as BondId, bond], vec![2, 2, rank], b_data);
        let mut ta = self.tensors[qa].contract(&ga);
        ta.relabel(tmp_a, qa as BondId);
        self.tensors[qa] = ta;
        let mut tb = self.tensors[qb].contract(&gb);
        tb.relabel(tmp_b, qb as BondId);
        self.tensors[qb] = tb;
    }

    /// The paper's `mps_bitstring_probability`: slice every physical leg
    /// to the bit value, then fully contract the remaining network.
    pub fn amplitude_of(&self, bits: BitString) -> C64 {
        assert_eq!(bits.len(), self.n);
        let sliced: Vec<Tensor> = self
            .tensors
            .iter()
            .enumerate()
            .map(|(q, t)| t.isel(q as BondId, bits.get(q) as usize))
            .collect();
        contract_network(sliced)
    }

    /// Dense ket for verification (exponential).
    pub fn ket(&self) -> Vec<C64> {
        assert!(self.n <= 16, "ket() limited to 16 qubits");
        (0..1u64 << self.n)
            .map(|x| self.amplitude_of(BitString::from_u64(self.n, x)))
            .collect()
    }
}

impl BglsState for LazyNetworkState {
    fn num_qubits(&self) -> usize {
        self.n
    }

    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
        self.check_qubits(qubits)?;
        let u = gate.unitary()?;
        match qubits.len() {
            1 => {
                self.apply_1q_matrix(&u, qubits[0]);
                Ok(())
            }
            2 => {
                if qubits[0] == qubits[1] {
                    return Err(SimError::Invalid("duplicate qubit".into()));
                }
                self.apply_2q_matrix(&u, qubits[0], qubits[1]);
                Ok(())
            }
            k => Err(SimError::Unsupported(format!(
                "{k}-qubit gates on the lazy tensor network (decompose first)"
            ))),
        }
    }

    fn probability(&self, bits: BitString) -> f64 {
        self.amplitude_of(bits).norm_sqr()
    }

    /// Batched form sharing the slicing stage: tensors of qubits on which
    /// every candidate agrees are sliced once and reused, so only the
    /// varying qubits (the gate support, for the sampler's candidate
    /// sets) are re-sliced per candidate. The per-candidate contraction
    /// consumes the same sliced tensors in the same order as
    /// [`LazyNetworkState::amplitude_of`], so results are bit-identical
    /// to scalar calls.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        let Some(first) = candidates.first() else {
            return Vec::new();
        };
        assert_eq!(first.len(), self.n);
        let shared: Vec<Option<Tensor>> = (0..self.n)
            .map(|q| {
                let b0 = first.get(q);
                candidates
                    .iter()
                    .all(|c| c.get(q) == b0)
                    .then(|| self.tensors[q].isel(q as BondId, b0 as usize))
            })
            .collect();
        candidates
            .iter()
            .map(|c| {
                assert_eq!(c.len(), self.n);
                let sliced: Vec<Tensor> = shared
                    .iter()
                    .enumerate()
                    .map(|(q, t)| match t {
                        Some(t) => t.clone(),
                        None => self.tensors[q].isel(q as BondId, c.get(q) as usize),
                    })
                    .collect();
                contract_network(sliced).norm_sqr()
            })
            .collect()
    }
}

impl AmplitudeState for LazyNetworkState {
    fn amplitude(&self, bits: BitString) -> C64 {
        self.amplitude_of(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_amplitudes() {
        let st = LazyNetworkState::zero(3);
        assert!((st.probability(BitString::zeros(3)) - 1.0).abs() < 1e-12);
        assert!(st.probability(BitString::from_u64(3, 0b001)) < 1e-15);
    }

    #[test]
    fn single_qubit_gates_work() {
        let mut st = LazyNetworkState::zero(2);
        st.apply_gate(&Gate::X, &[1]).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 0.5).abs() < 1e-12);
        assert!((st.probability(BitString::from_u64(2, 0b11)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_state_via_bond_insertion() {
        let mut st = LazyNetworkState::zero(3);
        st.apply_gate(&Gate::H, &[0]).unwrap();
        st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        st.apply_gate(&Gate::Cnot, &[1, 2]).unwrap();
        assert!((st.probability(BitString::from_u64(3, 0b000)) - 0.5).abs() < 1e-12);
        assert!((st.probability(BitString::from_u64(3, 0b111)) - 0.5).abs() < 1e-12);
        assert!(st.probability(BitString::from_u64(3, 0b101)) < 1e-15);
        // each CNOT added one rank-2 bond
        assert_eq!(st.bond_count(0), 1);
        assert_eq!(st.bond_count(1), 2);
        assert_eq!(st.bond_count(2), 1);
    }

    #[test]
    fn bond_accumulation_grows_tensor_size() {
        let mut st = LazyNetworkState::zero(2);
        let initial = st.total_tensor_size();
        for _ in 0..4 {
            st.apply_gate(&Gate::Cnot, &[0, 1]).unwrap();
        }
        assert!(st.total_tensor_size() > initial * 4);
    }

    #[test]
    fn three_qubit_gate_unsupported() {
        let mut st = LazyNetworkState::zero(3);
        assert!(matches!(
            st.apply_gate(&Gate::Ccx, &[0, 1, 2]),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn batched_probabilities_are_bit_identical_to_scalar() {
        let mut st = LazyNetworkState::zero(4);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::ISwap, vec![1, 3]),
            (Gate::Rzz(0.4.into()), vec![2, 3]),
        ] {
            st.apply_gate(&g, &qs).unwrap();
        }
        let base = BitString::from_u64(4, 0b0110);
        for cands in [base.candidates(&[1, 3]), base.candidates(&[0])] {
            let batched = st.probabilities_batch(&cands);
            for (c, p) in cands.iter().zip(&batched) {
                assert_eq!(p.to_bits(), st.probability(*c).to_bits(), "{c}");
            }
        }
        assert!(st.probabilities_batch(&[]).is_empty());
    }

    #[test]
    fn norm_preserved_through_random_gates() {
        let mut st = LazyNetworkState::zero(3);
        for (g, qs) in [
            (Gate::H, vec![0usize]),
            (Gate::T, vec![1]),
            (Gate::Cnot, vec![0, 2]),
            (Gate::ISwap, vec![1, 2]),
            (Gate::Rzz(0.4.into()), vec![0, 1]),
            (Gate::SqrtX, vec![2]),
        ] {
            st.apply_gate(&g, &qs).unwrap();
        }
        let total: f64 = st.ket().iter().map(|a| a.norm_sqr()).sum();
        assert!((total - 1.0).abs() < 1e-9, "norm {total}");
    }
}

//! Cross-validation of both tensor-network backends against the dense
//! state-vector simulator on random circuits.

use bgls_circuit::{generate_random_circuit, Gate, RandomCircuitParams};
use bgls_core::{BglsState, BitString};
use bgls_mps::{ChainMps, LazyNetworkState, MpsOptions};
use bgls_statevector::StateVector;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mixed_gate_pool() -> Vec<Gate> {
    vec![
        Gate::H,
        Gate::S,
        Gate::T,
        Gate::X,
        Gate::SqrtX,
        Gate::Rz(0.37.into()),
        Gate::Ry(1.1.into()),
        Gate::Cnot,
        Gate::Cz,
        Gate::ISwap,
        Gate::Swap,
        Gate::Rzz(0.61.into()),
        Gate::CPhase(0.8.into()),
    ]
}

fn run_on<S: BglsState>(state: &mut S, circuit: &bgls_circuit::Circuit) {
    for op in circuit.all_operations() {
        let g = op.as_gate().expect("gates only");
        let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
        state
            .apply_gate(g, &qs)
            .unwrap_or_else(|e| panic!("{} failed: {e}", g.name()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact (untruncated) chain MPS reproduces every dense probability,
    /// including through swap routing of long-range gates.
    #[test]
    fn chain_mps_matches_dense(seed in 0u64..10_000, n in 2usize..6, moments in 1usize..14) {
        let params = RandomCircuitParams {
            qubits: n,
            moments,
            op_density: 0.8,
            gate_set: mixed_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);

        let mut mps = ChainMps::zero(n, MpsOptions::exact());
        let mut sv = StateVector::zero(n);
        run_on(&mut mps, &circuit);
        run_on(&mut sv, &circuit);

        for x in 0..1u64 << n {
            let bits = BitString::from_u64(n, x);
            let pm = mps.probability(bits);
            let ps = sv.probability(bits);
            prop_assert!((pm - ps).abs() < 1e-8, "x={x}: mps {pm} vs dense {ps}");
        }
        prop_assert!(mps.truncation_weight() < 1e-16);
    }

    /// The lazy tensor network reproduces every dense probability.
    #[test]
    fn lazy_network_matches_dense(seed in 0u64..10_000, n in 2usize..6, moments in 1usize..10) {
        let params = RandomCircuitParams {
            qubits: n,
            moments,
            op_density: 0.7,
            gate_set: mixed_gate_pool(),
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);

        let mut lazy = LazyNetworkState::zero(n);
        let mut sv = StateVector::zero(n);
        run_on(&mut lazy, &circuit);
        run_on(&mut sv, &circuit);

        for x in 0..1u64 << n {
            let bits = BitString::from_u64(n, x);
            let pl = lazy.probability(bits);
            let ps = sv.probability(bits);
            prop_assert!((pl - ps).abs() < 1e-8, "x={x}: lazy {pl} vs dense {ps}");
        }
    }

    /// Truncated chain MPS keeps unit norm (rescaled) and bounded bonds.
    #[test]
    fn truncated_chain_respects_chi(seed in 0u64..10_000, n in 3usize..7) {
        let params = RandomCircuitParams {
            qubits: n,
            moments: 12,
            op_density: 1.0,
            gate_set: vec![Gate::H, Gate::T, Gate::Cnot],
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let circuit = generate_random_circuit(&params, &mut rng);
        let chi = 2;
        let mut mps = ChainMps::zero(n, MpsOptions::with_max_bond(chi));
        run_on(&mut mps, &circuit);
        prop_assert!(mps.max_bond_dimension() <= chi);
        prop_assert!((mps.norm_sqr() - 1.0).abs() < 1e-6);
    }
}

#[test]
fn bgls_sampling_on_both_backends_matches_ideal() {
    use bgls_core::Simulator;
    let mut c = bgls_circuit::Circuit::new();
    use bgls_circuit::{Operation, Qubit};
    for op in [
        Operation::gate(Gate::H, vec![Qubit(0)]).unwrap(),
        Operation::gate(Gate::T, vec![Qubit(0)]).unwrap(),
        Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(2)]).unwrap(),
        Operation::gate(Gate::Ry(0.9.into()), vec![Qubit(1)]).unwrap(),
        Operation::gate(Gate::Cz, vec![Qubit(1), Qubit(2)]).unwrap(),
        Operation::gate(Gate::H, vec![Qubit(1)]).unwrap(),
    ] {
        c.push(op);
    }
    let ideal = StateVector::from_circuit(&c, 3)
        .unwrap()
        .born_distribution();
    let reps = 30_000u64;

    for (name, samples) in [
        (
            "chain",
            Simulator::new(ChainMps::zero(3, MpsOptions::exact()))
                .with_seed(1)
                .sample_final_bitstrings(&c, reps)
                .unwrap(),
        ),
        (
            "lazy",
            Simulator::new(LazyNetworkState::zero(3))
                .with_seed(2)
                .sample_final_bitstrings(&c, reps)
                .unwrap(),
        ),
    ] {
        let mut counts = [0u64; 8];
        for s in samples {
            counts[s.as_u64() as usize] += 1;
        }
        for (x, &cnt) in counts.iter().enumerate() {
            let f = cnt as f64 / reps as f64;
            assert!(
                (f - ideal[x]).abs() < 0.02,
                "{name} outcome {x}: {f} vs {}",
                ideal[x]
            );
        }
    }
}

#[test]
fn ghz_random_cnot_sequence_grows_lazy_network() {
    // the Fig. 6 workload shape: GHZ with randomly sequenced CNOTs
    let mut lazy = LazyNetworkState::zero(8);
    lazy.apply_gate(&Gate::H, &[0]).unwrap();
    let order = [
        (0usize, 3usize),
        (3, 6),
        (0, 1),
        (6, 7),
        (1, 2),
        (3, 4),
        (4, 5),
    ];
    for (a, b) in order {
        lazy.apply_gate(&Gate::Cnot, &[a, b]).unwrap();
    }
    let p0 = lazy.probability(BitString::zeros(8));
    let p1 = lazy.probability(BitString::from_u64(8, 0xFF));
    assert!((p0 - 0.5).abs() < 1e-9);
    assert!((p1 - 0.5).abs() < 1e-9);
    assert!(lazy.total_tensor_size() > 8 * 2);
}

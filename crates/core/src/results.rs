//! Run results: measurement histograms per measurement key
//! ([`Histogram`], [`RunResult`]) and shot-based observable estimates
//! ([`ExpectationEstimate`]).
//!
//! These are the simulator's output types: `Simulator::run` produces a
//! [`RunResult`] (one [`Histogram`] per measurement key), and
//! `Simulator::estimate_expectation` produces an
//! [`ExpectationEstimate`] (a sampled observable value with its
//! standard error).

use crate::bitstring::BitString;
use bgls_linalg::FxHashMap;
use std::fmt;

/// Histogram of measured bitstrings for one measurement key.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    width: usize,
    counts: FxHashMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram over `width`-bit outcomes.
    pub fn new(width: usize) -> Self {
        Histogram {
            width,
            counts: FxHashMap::default(),
            total: 0,
        }
    }

    /// Outcome width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Adds `count` observations of `outcome`.
    pub fn record(&mut self, outcome: BitString, count: u64) {
        debug_assert_eq!(outcome.len(), self.width);
        *self.counts.entry(outcome.as_u64()).or_insert(0) += count;
        self.total += count;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for a specific outcome.
    pub fn count(&self, outcome: BitString) -> u64 {
        self.counts.get(&outcome.as_u64()).copied().unwrap_or(0)
    }

    /// Count for an outcome given as a raw value.
    pub fn count_value(&self, outcome: u64) -> u64 {
        self.counts.get(&outcome).copied().unwrap_or(0)
    }

    /// Iterates `(outcome, count)` pairs in ascending outcome order.
    pub fn iter_sorted(&self) -> Vec<(BitString, u64)> {
        let mut v: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_unstable();
        v.into_iter()
            .map(|(k, c)| (BitString::from_u64(self.width, k), c))
            .collect()
    }

    /// The most frequent outcome, if any observations exist.
    pub fn most_common(&self) -> Option<(BitString, u64)> {
        self.counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&k, &c)| (BitString::from_u64(self.width, k), c))
    }

    /// Empirical probability of an outcome.
    pub fn frequency(&self, outcome: BitString) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(outcome) as f64 / self.total as f64
        }
    }

    /// The empirical distribution as a dense vector of length `2^width`
    /// (width must be small enough to allocate).
    pub fn to_distribution(&self) -> Vec<f64> {
        assert!(self.width <= 24, "distribution too wide to densify");
        let mut p = vec![0.0; 1usize << self.width];
        if self.total > 0 {
            for (&k, &c) in &self.counts {
                p[k as usize] = c as f64 / self.total as f64;
            }
        }
        p
    }

    /// Number of distinct outcomes observed.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (b, c) in self.iter_sorted() {
            writeln!(f, "{b}: {c}")?;
        }
        Ok(())
    }
}

/// Result of `Simulator::estimate_expectation`: a shot-based estimate of
/// a Hermitian observable's expectation value.
///
/// The observable's non-identity terms are partitioned into
/// qubit-wise-commuting groups, each group measured in one sampling run
/// of `shots_per_group` repetitions after a basis-rotation layer, and
/// each sample scored with the group's signed parity sum. `value` is the
/// sum of the group means plus the observable's identity constant;
/// `std_error` combines the groups' standard errors of the mean in
/// quadrature (groups are sampled independently), so the error shrinks
/// as `1/sqrt(shots_per_group)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpectationEstimate {
    /// The estimated expectation value.
    pub value: f64,
    /// Standard error of the estimate (quadrature over groups).
    pub std_error: f64,
    /// Samples drawn per qubit-wise-commuting group.
    pub shots_per_group: u64,
    /// Number of qubit-wise-commuting groups measured.
    pub num_groups: usize,
}

/// Result of [`crate::Simulator::run`]: one histogram per measurement key.
#[derive(Clone, Debug, Default)]
pub struct RunResult {
    repetitions: u64,
    records: FxHashMap<String, Histogram>,
}

impl RunResult {
    /// An empty result for `repetitions` runs.
    pub fn new(repetitions: u64) -> Self {
        RunResult {
            repetitions,
            records: FxHashMap::default(),
        }
    }

    /// Number of repetitions requested.
    pub fn repetitions(&self) -> u64 {
        self.repetitions
    }

    /// Returns the result with the reported repetition count replaced.
    ///
    /// [`RunResult::merge`] sums the per-chunk counts, so parallel
    /// reducers that fold many single-repetition results set the true
    /// total once at the end instead of rebuilding every histogram.
    pub fn with_repetitions(mut self, repetitions: u64) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Records an outcome under `key`.
    pub fn record(&mut self, key: &str, outcome: BitString, count: u64) {
        self.records
            .entry(key.to_string())
            .or_insert_with(|| Histogram::new(outcome.len()))
            .record(outcome, count);
    }

    /// Histogram for a measurement key.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.records.get(key)
    }

    /// All measurement keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        let mut ks: Vec<&str> = self.records.keys().map(String::as_str).collect();
        ks.sort_unstable();
        ks
    }

    /// Merges another result into this one (summing histograms).
    pub fn merge(&mut self, other: RunResult) {
        self.repetitions += other.repetitions;
        for (key, hist) in other.records {
            match self.records.get_mut(&key) {
                Some(mine) => {
                    for (b, c) in hist.iter_sorted() {
                        mine.record(b, c);
                    }
                }
                None => {
                    self.records.insert(key, hist);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_counts() {
        let mut h = Histogram::new(2);
        h.record(BitString::from_u64(2, 0b00), 7);
        h.record(BitString::from_u64(2, 0b11), 3);
        h.record(BitString::from_u64(2, 0b00), 1);
        assert_eq!(h.total(), 11);
        assert_eq!(h.count(BitString::from_u64(2, 0b00)), 8);
        assert_eq!(h.count(BitString::from_u64(2, 0b01)), 0);
        assert_eq!(h.support_size(), 2);
        assert_eq!(h.most_common().unwrap().1, 8);
    }

    #[test]
    fn distribution_normalizes() {
        let mut h = Histogram::new(2);
        h.record(BitString::from_u64(2, 0), 1);
        h.record(BitString::from_u64(2, 3), 3);
        let p = h.to_distribution();
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[3] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iter_sorted_is_ascending() {
        let mut h = Histogram::new(3);
        for v in [5u64, 1, 3] {
            h.record(BitString::from_u64(3, v), 1);
        }
        let keys: Vec<u64> = h.iter_sorted().iter().map(|(b, _)| b.as_u64()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
    }

    #[test]
    fn run_result_merge_sums() {
        let mut a = RunResult::new(5);
        a.record("z", BitString::from_u64(1, 0), 5);
        let mut b = RunResult::new(5);
        b.record("z", BitString::from_u64(1, 0), 2);
        b.record("z", BitString::from_u64(1, 1), 3);
        b.record("y", BitString::from_u64(1, 1), 5);
        a.merge(b);
        assert_eq!(a.repetitions(), 10);
        assert_eq!(a.histogram("z").unwrap().total(), 10);
        assert_eq!(a.histogram("z").unwrap().count_value(0), 7);
        assert_eq!(a.keys(), vec!["y", "z"]);
    }

    #[test]
    fn with_repetitions_overrides_count_only() {
        let mut r = RunResult::new(3);
        r.record("z", BitString::from_u64(1, 1), 3);
        let r = r.with_repetitions(10);
        assert_eq!(r.repetitions(), 10);
        assert_eq!(r.histogram("z").unwrap().total(), 3);
    }

    #[test]
    fn empty_histogram_frequency_is_zero() {
        let h = Histogram::new(1);
        assert_eq!(h.frequency(BitString::zeros(1)), 0.0);
    }
}

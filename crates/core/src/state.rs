//! State-backend traits.
//!
//! The BGLS simulator is representation-agnostic (paper Sec. 3.1): any type
//! that can (1) apply an operation and (2) compute a bitstring probability
//! can be sampled. [`BglsState`] captures exactly those two capabilities;
//! the optional traits add what specific features need (projection for
//! mid-circuit measurement, marginals for the qubit-by-qubit baseline).

use crate::bitstring::BitString;
use crate::error::SimError;
use bgls_circuit::{Channel, Gate, PauliString};
use bgls_linalg::C64;
use rand::RngCore;

/// A quantum state usable with the gate-by-gate sampler.
///
/// Implementations: dense state vector, density matrix
/// (`bgls-statevector`), CH-form stabilizer state (`bgls-stabilizer`),
/// chain MPS and lazy tensor network (`bgls-mps`).
pub trait BglsState: Clone {
    /// Number of qubits.
    fn num_qubits(&self) -> usize;

    /// Applies a unitary gate to the listed qubits (gate-matrix order:
    /// first listed qubit = most significant gate-index bit).
    fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError>;

    /// Probability of measuring `bits` in the computational basis:
    /// `P(b) = |<b|psi>|^2` (paper's `compute_probability`).
    fn probability(&self, bits: BitString) -> f64;

    /// Probabilities of a whole candidate set at once — the batched form
    /// of [`BglsState::probability`] driving the sampler's hot loop.
    ///
    /// The default implementation loops over [`BglsState::probability`];
    /// backends override it to amortize work shared between candidates
    /// (index arithmetic on dense states, environment contraction on
    /// tensor networks).
    ///
    /// **Determinism contract:** implementations must return, for every
    /// candidate, a value bit-identical to what a standalone
    /// `probability` call would return. Shared work is allowed only when
    /// it performs the same floating-point operations in the same order
    /// as the scalar path, so that seeded sampling results do not depend
    /// on whether the batched or scalar path computed them.
    fn probabilities_batch(&self, candidates: &[BitString]) -> Vec<f64> {
        candidates.iter().map(|&c| self.probability(c)).collect()
    }

    /// Applies one stochastic Kraus branch of `channel` (quantum
    /// trajectories, paper Sec. 3.2.1): branch `i` is chosen with
    /// probability `|K_i |psi>|^2` and the state renormalized.
    /// Returns the chosen branch index.
    ///
    /// Backends without channel support return
    /// [`SimError::Unsupported`] (the default).
    fn apply_kraus(
        &mut self,
        channel: &Channel,
        qubits: &[usize],
        rng: &mut dyn RngCore,
    ) -> Result<usize, SimError> {
        let _ = (channel, qubits, rng);
        Err(SimError::Unsupported("Kraus channels".into()))
    }

    /// Probabilities of every Kraus branch of `channel` on the current
    /// state: `p_i = |K_i |psi>|^2` (pure states) or
    /// `Tr(K_i rho K_i^dagger)` (mixed states). This is the branch-point
    /// query of the trajectory-forest engine: the simulator splits a
    /// node's multiplicities multinomially across these probabilities
    /// instead of sampling one branch per repetition.
    ///
    /// **Determinism contract:** the returned vector must be a pure
    /// function of the state and channel — same values bit for bit on
    /// every call, independent of thread count or call order — and must
    /// list one entry per Kraus operator, in [`Channel::kraus`] order,
    /// summing to 1 within rounding. Backends that apply channels
    /// deterministically (density matrices) return the single branch
    /// `[1.0]`, meaning "the whole channel, applied exactly".
    ///
    /// Backends without channel support return
    /// [`SimError::Unsupported`] (the default).
    fn kraus_branch_probabilities(
        &self,
        channel: &Channel,
        qubits: &[usize],
    ) -> Result<Vec<f64>, SimError> {
        let _ = (channel, qubits);
        Err(SimError::Unsupported("Kraus branch probabilities".into()))
    }

    /// Applies one *chosen* Kraus branch of `channel` — `K_branch`
    /// followed by renormalization — with no randomness drawn. Together
    /// with [`BglsState::kraus_branch_probabilities`] this decomposes
    /// [`BglsState::apply_kraus`] into its query and commit halves so
    /// the trajectory forest can fork every nonempty branch of a node.
    ///
    /// **Determinism contract:** the post-branch state must be exactly
    /// the state [`BglsState::apply_kraus`] would leave behind had its
    /// internal draw selected `branch` — the forest and replay paths
    /// then walk identical per-branch states. Deterministic-channel
    /// backends accept only `branch == 0` and apply the whole channel.
    /// Returns [`SimError::ZeroProbabilityEvent`] when the branch has
    /// zero weight on this state, leaving the state unchanged (errors
    /// must not poison the state).
    fn apply_kraus_branch(
        &mut self,
        channel: &Channel,
        branch: usize,
        qubits: &[usize],
    ) -> Result<(), SimError> {
        let _ = (channel, branch, qubits);
        Err(SimError::Unsupported("Kraus branch application".into()))
    }

    /// Projects `qubit` onto `value` and renormalizes (mid-circuit
    /// measurement collapse). Backends without projection support return
    /// [`SimError::Unsupported`] (the default).
    fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
        let _ = (qubit, value);
        Err(SimError::Unsupported("projective collapse".into()))
    }

    /// Exact expectation value `<psi|P|psi>` (pure states) or `Tr(rho P)`
    /// (mixed states) of a Hermitian Pauli string on the current state.
    ///
    /// Every exact backend implements this natively: amplitude inner
    /// product on the dense state vector, a diagonal trace walk on the
    /// density matrix, `U_C`-conjugation on the CH-form stabilizer
    /// state, a transfer-matrix sweep on the chain MPS, and a
    /// doubled-network contraction on the lazy tensor network.
    ///
    /// **Contract:** the state is assumed normalized (the expectation is
    /// *not* divided by the norm), the result is a pure function of the
    /// state (deterministic, thread-count independent), and qubits
    /// beyond [`BglsState::num_qubits`] are rejected with
    /// [`SimError::QubitOutOfRange`]. The identity string returns the
    /// squared norm, i.e. `1.0` on a normalized state.
    ///
    /// Backends without expectation support return
    /// [`SimError::Unsupported`] (the default).
    fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
        let _ = observable;
        Err(SimError::Unsupported("Pauli expectation".into()))
    }

    /// True when [`BglsState::apply_kraus`] applies the *whole* channel
    /// deterministically rather than sampling one branch (density
    /// matrices). Such states keep the sample-parallelized path even for
    /// noisy circuits.
    fn channels_are_deterministic(&self) -> bool {
        false
    }

    /// Validates qubit indices against the state size.
    fn check_qubits(&self, qubits: &[usize]) -> Result<(), SimError> {
        let n = self.num_qubits();
        for &q in qubits {
            if q >= n {
                return Err(SimError::QubitOutOfRange {
                    index: q,
                    num_qubits: n,
                });
            }
        }
        Ok(())
    }
}

/// States that expose complex amplitudes `<b|psi>` (every pure-state
/// backend; density matrices only expose probabilities).
pub trait AmplitudeState: BglsState {
    /// The amplitude `<bits|psi>`.
    fn amplitude(&self, bits: BitString) -> C64;
}

/// States that can compute marginal probabilities of partial assignments —
/// what the conventional qubit-by-qubit sampler needs (paper Sec. 2).
pub trait MarginalState: BglsState {
    /// `P(q_{i_1} = v_1, ..., q_{i_k} = v_k)` summed over all unassigned
    /// qubits.
    fn marginal_probability(&self, assignment: &[(usize, bool)]) -> f64;
}

#[cfg(test)]
pub(crate) mod testing {
    //! A tiny reference state-vector backend used by the core crate's own
    //! tests, so `bgls-core` stays independent of `bgls-statevector`.

    use super::*;
    use bgls_circuit::embed_unitary;
    use bgls_circuit::Qubit;

    /// Naive dense state for <= 10 qubits; applies gates by building the
    /// full embedded unitary. Slow but obviously correct.
    #[derive(Clone, Debug)]
    pub struct RefState {
        pub amps: Vec<C64>,
        pub n: usize,
    }

    impl RefState {
        pub fn zero(n: usize) -> Self {
            let mut amps = vec![C64::ZERO; 1 << n];
            amps[0] = C64::ONE;
            RefState { amps, n }
        }
    }

    impl BglsState for RefState {
        fn num_qubits(&self) -> usize {
            self.n
        }

        fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) -> Result<(), SimError> {
            self.check_qubits(qubits)?;
            let u = gate.unitary()?;
            let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
            let full = embed_unitary(&u, &qs, self.n);
            self.amps = full.matvec(&self.amps);
            Ok(())
        }

        fn probability(&self, bits: BitString) -> f64 {
            self.amps[bits.as_u64() as usize].norm_sqr()
        }

        fn apply_kraus(
            &mut self,
            channel: &Channel,
            qubits: &[usize],
            rng: &mut dyn RngCore,
        ) -> Result<usize, SimError> {
            use rand::Rng;
            self.check_qubits(qubits)?;
            let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
            let mut r: f64 = rng.gen::<f64>();
            let last = channel.kraus().len() - 1;
            for (i, k) in channel.kraus().iter().enumerate() {
                let full = embed_unitary_nonunitary(k, &qs, self.n);
                let cand = full.matvec(&self.amps);
                let norm: f64 = cand.iter().map(|z| z.norm_sqr()).sum();
                if r < norm || i == last {
                    let scale = 1.0 / norm.sqrt();
                    self.amps = cand.into_iter().map(|z| z * scale).collect();
                    return Ok(i);
                }
                r -= norm;
            }
            unreachable!("loop always returns at the last branch")
        }

        fn kraus_branch_probabilities(
            &self,
            channel: &Channel,
            qubits: &[usize],
        ) -> Result<Vec<f64>, SimError> {
            self.check_qubits(qubits)?;
            let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
            Ok(channel
                .kraus()
                .iter()
                .map(|k| {
                    let full = embed_unitary_nonunitary(k, &qs, self.n);
                    full.matvec(&self.amps)
                        .iter()
                        .map(|z| z.norm_sqr())
                        .sum::<f64>()
                })
                .collect())
        }

        fn apply_kraus_branch(
            &mut self,
            channel: &Channel,
            branch: usize,
            qubits: &[usize],
        ) -> Result<(), SimError> {
            self.check_qubits(qubits)?;
            let qs: Vec<Qubit> = qubits.iter().map(|&q| Qubit(q as u32)).collect();
            let k = &channel.kraus()[branch];
            let full = embed_unitary_nonunitary(k, &qs, self.n);
            let cand = full.matvec(&self.amps);
            let norm: f64 = cand.iter().map(|z| z.norm_sqr()).sum();
            if norm <= 0.0 {
                return Err(SimError::ZeroProbabilityEvent);
            }
            let scale = 1.0 / norm.sqrt();
            self.amps = cand.into_iter().map(|z| z * scale).collect();
            Ok(())
        }

        fn expectation(&self, observable: &PauliString) -> Result<f64, SimError> {
            if let Some(q) = observable.max_qubit() {
                self.check_qubits(&[q])?;
            }
            // <psi|P|psi> with P = i^{ny} X^x Z^z: P|b> = i^{ny}
            // (-1)^{|b & z|} |b ^ x>, so the expectation is one pass over
            // the amplitudes.
            let (x, z, ny) = observable.dense_masks();
            let mut acc = C64::ZERO;
            for (b, &amp) in self.amps.iter().enumerate() {
                let term = self.amps[b ^ x as usize].conj() * amp;
                if (b as u64 & z).count_ones() % 2 == 1 {
                    acc -= term;
                } else {
                    acc += term;
                }
            }
            Ok((acc * C64::i_pow(ny as i64)).re)
        }

        fn project(&mut self, qubit: usize, value: bool) -> Result<(), SimError> {
            let mut norm = 0.0;
            for (i, a) in self.amps.iter_mut().enumerate() {
                if ((i >> qubit) & 1 == 1) != value {
                    *a = C64::ZERO;
                } else {
                    norm += a.norm_sqr();
                }
            }
            if norm == 0.0 {
                return Err(SimError::ZeroProbabilityEvent);
            }
            let s = 1.0 / norm.sqrt();
            for a in &mut self.amps {
                *a *= s;
            }
            Ok(())
        }
    }

    impl AmplitudeState for RefState {
        fn amplitude(&self, bits: BitString) -> C64 {
            self.amps[bits.as_u64() as usize]
        }
    }

    impl MarginalState for RefState {
        fn marginal_probability(&self, assignment: &[(usize, bool)]) -> f64 {
            self.amps
                .iter()
                .enumerate()
                .filter(|(i, _)| assignment.iter().all(|&(q, v)| ((i >> q) & 1 == 1) == v))
                .map(|(_, a)| a.norm_sqr())
                .sum()
        }
    }

    /// `embed_unitary` works for any matrix; alias for clarity when
    /// embedding non-unitary Kraus operators.
    fn embed_unitary_nonunitary(
        m: &bgls_linalg::Matrix,
        qubits: &[Qubit],
        n: usize,
    ) -> bgls_linalg::Matrix {
        embed_unitary(m, qubits, n)
    }
}

//! Measurement bitstrings.
//!
//! The gate-by-gate algorithm walks the circuit holding a concrete
//! bitstring `b = b_0 b_1 ... b_{n-1}` that is resampled over each gate's
//! support (paper Sec. 2). Bitstrings are the hot key of the
//! sample-parallelization multiplicity map, so they are a `Copy` `u64`
//! (limiting circuits to 64 qubits, ample for every experiment in the
//! paper: dense states cap out near 20 qubits and the widest stabilizer
//! sweep uses 64).

use std::fmt;

/// A fixed-width bitstring over at most 64 qubits. Bit `i` is qubit `i`'s
/// measured value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitString {
    bits: u64,
    len: u8,
}

impl BitString {
    /// Maximum supported width.
    pub const MAX_QUBITS: usize = 64;

    /// The all-zeros string on `len` qubits.
    pub fn zeros(len: usize) -> Self {
        assert!(
            len <= Self::MAX_QUBITS,
            "BitString supports at most 64 qubits, got {len}"
        );
        BitString {
            bits: 0,
            len: len as u8,
        }
    }

    /// Builds from the low `len` bits of `value` (bit `i` = qubit `i`).
    pub fn from_u64(len: usize, value: u64) -> Self {
        let mut b = Self::zeros(len);
        b.bits = if len >= 64 {
            value
        } else {
            value & ((1u64 << len) - 1)
        };
        b
    }

    /// Builds from per-qubit boolean values.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut b = Self::zeros(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            b.set(i, bit);
        }
        b
    }

    /// Number of qubits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True for the width-0 string.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw bits (bit `i` = qubit `i`).
    #[inline]
    pub fn as_u64(&self) -> u64 {
        self.bits
    }

    /// Qubit `i`'s value.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len());
        (self.bits >> i) & 1 == 1
    }

    /// Sets qubit `i`'s value.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len());
        if value {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Copy with qubit `i` set to `value`.
    #[inline]
    pub fn with_bit(mut self, i: usize, value: bool) -> Self {
        self.set(i, value);
        self
    }

    /// Number of 1 bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// Replaces the bits at `support` positions with the bits of `value`:
    /// bit `j` of `value` lands on qubit `support[j]`. This generates the
    /// candidate bitstrings of the gate-by-gate step.
    #[inline]
    pub fn with_support_value(&self, support: &[usize], value: u64) -> Self {
        let mut out = *self;
        for (j, &q) in support.iter().enumerate() {
            out.set(q, (value >> j) & 1 == 1);
        }
        out
    }

    /// Reads the bits at `support` positions into a compact value
    /// (inverse of [`BitString::with_support_value`]).
    #[inline]
    pub fn support_value(&self, support: &[usize]) -> u64 {
        let mut v = 0u64;
        for (j, &q) in support.iter().enumerate() {
            v |= (self.get(q) as u64) << j;
        }
        v
    }

    /// All `2^k` candidate bitstrings obtained by varying this string over
    /// `support` (k = support length, which must be < 64).
    pub fn candidates(&self, support: &[usize]) -> Vec<BitString> {
        let k = support.len();
        assert!(k < 64, "candidate enumeration over {k} qubits");
        (0..(1u64 << k))
            .map(|v| self.with_support_value(support, v))
            .collect()
    }

    /// Restricts to the listed qubits, producing a compact bitstring of
    /// width `qubits.len()` (bit `j` = value of `qubits[j]`). Used to
    /// record measurement outcomes in key order.
    pub fn restrict(&self, qubits: &[usize]) -> BitString {
        BitString::from_u64(qubits.len(), self.support_value(qubits))
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for BitString {
    /// Displays as `b_0 b_1 ... b_{n-1}` (qubit 0 first, matching the
    /// paper's `b0 b1 ... bn` notation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            write!(f, "{}", self.get(i) as u8)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_basic_bits() {
        let mut b = BitString::zeros(5);
        assert_eq!(b.len(), 5);
        assert_eq!(b.as_u64(), 0);
        b.set(3, true);
        assert!(b.get(3));
        assert!(!b.get(2));
        assert_eq!(b.as_u64(), 0b01000);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn from_u64_masks_to_width() {
        let b = BitString::from_u64(3, 0b11111);
        assert_eq!(b.as_u64(), 0b111);
        let full = BitString::from_u64(64, u64::MAX);
        assert_eq!(full.count_ones(), 64);
    }

    #[test]
    fn support_substitution() {
        let b = BitString::from_u64(4, 0b1010);
        // vary qubits 1 and 3 (value bit0 -> qubit1, bit1 -> qubit3)
        let c = b.with_support_value(&[1, 3], 0b01);
        assert_eq!(c.as_u64(), 0b0010);
        let c = b.with_support_value(&[1, 3], 0b10);
        assert_eq!(c.as_u64(), 0b1000);
        assert_eq!(b.support_value(&[1, 3]), 0b11);
    }

    #[test]
    fn candidates_enumerate_support() {
        let b = BitString::from_u64(3, 0b101);
        let cands = b.candidates(&[0, 2]);
        assert_eq!(cands.len(), 4);
        // all have qubit 1 = 0
        assert!(cands.iter().all(|c| !c.get(1)));
        // and cover all four (q0, q2) combinations
        let values: std::collections::HashSet<u64> = cands.iter().map(|c| c.as_u64()).collect();
        assert_eq!(values, [0b000, 0b001, 0b100, 0b101].into_iter().collect());
    }

    #[test]
    fn restrict_orders_by_listed_qubits() {
        let b = BitString::from_u64(4, 0b0110); // q1=1, q2=1
        let r = b.restrict(&[2, 0]);
        assert_eq!(r.len(), 2);
        // bit0 of r = q2 = 1, bit1 of r = q0 = 0
        assert_eq!(r.as_u64(), 0b01);
    }

    #[test]
    fn display_is_qubit_zero_first() {
        let b = BitString::from_u64(4, 0b0011);
        assert_eq!(format!("{b}"), "1100");
    }

    #[test]
    #[should_panic(expected = "at most 64 qubits")]
    fn too_wide_rejected() {
        let _ = BitString::zeros(65);
    }

    #[test]
    fn with_bit_is_pure() {
        let b = BitString::zeros(2);
        let c = b.with_bit(1, true);
        assert_eq!(b.as_u64(), 0);
        assert_eq!(c.as_u64(), 0b10);
    }
}

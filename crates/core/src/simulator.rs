//! The BGLS gate-by-gate sampling simulator (paper Secs. 2–3).
//!
//! The simulator walks the circuit one operation at a time keeping concrete
//! bitstrings that are resampled over each gate's support from bitstring
//! probabilities — never marginals. Three ingredients configure it, exactly
//! mirroring the Python package's constructor: an initial state, an
//! `apply_op` hook, and a `compute_probability` hook.
//!
//! Three execution paths:
//! * **sample-parallelized** (Sec. 3.2.3): for unitary circuits with
//!   terminal measurements the state evolves once and all repetitions ride
//!   along in a `bitstring -> multiplicity` map, split multinomially at
//!   each gate. Runtime saturates at large repetition counts (Fig. 2).
//! * **trajectory forest**: circuits with stochastic channels or
//!   mid-circuit measurements keep the multiplicity-map economics by
//!   maintaining a frontier of `(state, multiplicity-map)` nodes.
//!   Deterministic segments advance each node once; at a stochastic
//!   operation every node splits its multiplicities multinomially across
//!   the branch outcomes and forks one child state per nonempty branch.
//!   Total state evolutions drop from `O(reps x gates)` to
//!   `O(distinct branch histories x gates)`.
//! * **trajectories** (Sec. 3.2.1): stochastic apply hooks
//!   (sum-over-Cliffords), custom hook constructors, or a forest frontier
//!   that outgrew [`SimulatorOptions::max_forest_nodes`] re-run the
//!   circuit per repetition, optionally across Rayon threads.

use crate::bitstring::BitString;
use crate::error::SimError;
use crate::results::{ExpectationEstimate, RunResult};
use crate::state::BglsState;
use bgls_circuit::{Channel, Circuit, Gate, OpKind, Operation, PauliString, PauliSum, Qubit};
use bgls_linalg::{FxHashMap, C64};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Binomial, Distribution};
use rayon::prelude::*;
use std::sync::Arc;

/// Hook applying an operation to a state (the paper's `apply_op`).
/// Receives an RNG so stochastic hooks (trajectories, sum-over-Cliffords)
/// can branch.
pub type ApplyFn<S> =
    Arc<dyn Fn(&mut S, &Operation, &mut dyn RngCore) -> Result<(), SimError> + Send + Sync>;

/// Hook computing a bitstring probability (the paper's
/// `compute_probability`).
pub type ProbFn<S> = Arc<dyn Fn(&S, BitString) -> f64 + Send + Sync>;

/// Fallible-op hook consulted before every operation application (see
/// [`Simulator::with_fallible_ops`]). Receives the 1-based application
/// ordinal and the operation about to run; returning `Err` aborts the
/// run with that error. The hook must be deterministic in its inputs —
/// the fault-injection harness relies on a re-armed simulator replaying
/// the same abort at the same ordinal.
pub type OpFaultFn = Arc<dyn Fn(u64, &Operation) -> Result<(), SimError> + Send + Sync>;

/// Hook computing a whole candidate set's probabilities at once — the
/// batched companion of [`ProbFn`], wired to
/// [`crate::BglsState::probabilities_batch`] by [`Simulator::new`].
/// Custom hooks must honor the same determinism contract: each returned
/// value bit-identical to the scalar hook's answer for that candidate.
pub type BatchProbFn<S> = Arc<dyn Fn(&S, &[BitString]) -> Vec<f64> + Send + Sync>;

/// Tuning knobs for [`Simulator`].
#[derive(Clone, Debug)]
pub struct SimulatorOptions {
    /// RNG seed; `None` draws from entropy.
    pub seed: Option<u64>,
    /// Enable the multiplicity-map sample parallelization when the circuit
    /// allows it (default `true`).
    pub parallelize_samples: bool,
    /// Skip the bitstring-update step for diagonal gates, whose candidate
    /// distribution is provably unchanged. Off by default to mirror the
    /// paper; exposed for the ablation bench.
    pub skip_diagonal_updates: bool,
    /// Use Rayon to spread trajectory repetitions — and trajectory-forest
    /// frontier nodes — across threads (default `true`). Both paths draw
    /// every sample from its own seed-derived RNG stream, so results are
    /// bit-identical whether this is on or off.
    pub parallel_trajectories: bool,
    /// Run noisy / mid-circuit-measurement circuits through the
    /// trajectory-forest engine instead of per-repetition replay
    /// (default `true`). The forest samples the same distribution as
    /// replay but evolves each distinct branch history once, so seeded
    /// samples differ between the two engines (the streams are keyed
    /// differently) while every histogram stays distributionally
    /// identical.
    pub trajectory_forest: bool,
    /// Frontier budget for the trajectory forest (default `256`). When a
    /// stochastic operation would grow the frontier beyond this many
    /// nodes, the run abandons the forest *before* materializing the
    /// oversized frontier and falls back to per-trajectory replay, which
    /// has flat memory use. The budget bounds forest memory to roughly
    /// `2 x max_forest_nodes` live states.
    pub max_forest_nodes: usize,
    /// Run [`Simulator::run_sweep`] resolvers across Rayon threads
    /// (default `false`). Every resolver's run derives its own seed
    /// stream from [`SimulatorOptions::seed`] exactly as the sequential
    /// loop does, so per-resolver results are bit-identical either way.
    pub parallel_sweep: bool,
    /// Evaluate candidate probabilities through the batched hook when one
    /// is installed (default `true`). `false` forces the scalar
    /// per-candidate hook — same samples, useful for benchmarking the
    /// batched path against its baseline.
    pub batch_probabilities: bool,
    /// Spread the multiplicity-map redistribution across Rayon threads
    /// when the map is large (default `true`). Every map entry draws from
    /// its own RNG stream derived from the step seed, so results are
    /// bit-identical whether this is on or off.
    pub parallel_redistribution: bool,
    /// Run [`bgls_circuit::fuse`] on circuits before sampling them
    /// (default `false`): merges runs of adjacent single-qubit gates so
    /// the sampler updates its bitstring once per run. Preserves the
    /// sampling distribution exactly but changes the gate sequence, so
    /// seeded samples differ from unfused runs (except when fusion leaves
    /// the operation count unchanged). Requires a backend that accepts
    /// [`bgls_circuit::Gate::U1`] matrices (stabilizer states accept only
    /// Clifford ones).
    pub fuse_gates: bool,
    /// Run the full multi-pass optimizer pipeline
    /// ([`bgls_circuit::optimize`]) on circuits before sampling them
    /// (default `None` = off). When set, this supersedes `fuse_gates`:
    /// the configured pipeline (cancellation, commutation reordering,
    /// lightcone pruning, 1q/2q run fusion, optional diagonal-run
    /// extraction) runs instead of the plain single-qubit fusion.
    /// Preserves the sampling distribution and every expectation value
    /// exactly but changes the executed gate sequence, so seeded samples
    /// differ from raw runs. Matrix-producing configurations require a
    /// backend that accepts [`bgls_circuit::Gate::U1`]/`U2` matrices —
    /// use [`bgls_circuit::OptimizeConfig::stabilizer_safe`] for
    /// stabilizer backends.
    pub optimize: Option<bgls_circuit::OptimizeConfig>,
}

impl Default for SimulatorOptions {
    fn default() -> Self {
        SimulatorOptions {
            seed: None,
            parallelize_samples: true,
            skip_diagonal_updates: false,
            parallel_trajectories: true,
            trajectory_forest: true,
            max_forest_nodes: 256,
            parallel_sweep: false,
            batch_probabilities: true,
            parallel_redistribution: true,
            fuse_gates: false,
            optimize: None,
        }
    }
}

/// The gate-by-gate sampling simulator.
pub struct Simulator<S: BglsState> {
    initial_state: S,
    apply_op: ApplyFn<S>,
    compute_probability: ProbFn<S>,
    /// Batched candidate-probability hook; `None` falls back to looping
    /// `compute_probability` (the case for [`Simulator::with_hooks`],
    /// whose custom scalar hook must stay authoritative).
    compute_probabilities_batch: Option<BatchProbFn<S>>,
    /// Custom apply hooks may be stochastic (e.g. sum-over-Cliffords), in
    /// which case each sample must re-run the circuit.
    stochastic_apply: bool,
    /// True when the hooks are the [`Simulator::new`] defaults, i.e.
    /// channel application goes through [`BglsState::apply_kraus`]. The
    /// trajectory forest forks channels via the state's branch methods,
    /// which is only faithful to the default hook; custom-hook
    /// simulators keep the replay path.
    default_hooks: bool,
    options: SimulatorOptions,
}

impl<S: BglsState> Clone for Simulator<S> {
    fn clone(&self) -> Self {
        Simulator {
            initial_state: self.initial_state.clone(),
            apply_op: self.apply_op.clone(),
            compute_probability: self.compute_probability.clone(),
            compute_probabilities_batch: self.compute_probabilities_batch.clone(),
            stochastic_apply: self.stochastic_apply,
            default_hooks: self.default_hooks,
            options: self.options.clone(),
        }
    }
}

impl<S: BglsState + Send + Sync + 'static> Simulator<S> {
    /// Decorates the apply hook with a fallible-op gate: before each
    /// operation application, `fault` is consulted with a 1-based
    /// application ordinal and may abort the run by returning `Err`
    /// (typically [`SimError::Faulted`]).
    ///
    /// The decoration is transparent when the hook returns `Ok`: engine
    /// selection, RNG streams, and the `default_hooks` classification
    /// are unchanged, so a hook that never fires leaves every sampled
    /// bit identical to the undecorated simulator. Ordinals count apply
    /// invocations across this simulator and its clones (the counter is
    /// shared — arm a fresh simulator per run for per-run ordinals).
    /// Forest channel forks and projective collapses go through state
    /// branch methods, not the apply hook, and are therefore not gated.
    pub fn with_fallible_ops(mut self, fault: OpFaultFn) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        let inner = Arc::clone(&self.apply_op);
        let counter = Arc::new(AtomicU64::new(0));
        self.apply_op = Arc::new(
            move |state: &mut S, op: &Operation, rng: &mut dyn RngCore| {
                let ordinal = counter.fetch_add(1, Ordering::Relaxed) + 1;
                fault(ordinal, op)?;
                inner(state, op, rng)
            },
        );
        self
    }
}

impl<S: BglsState + Send + Sync> Simulator<S> {
    /// Builds a simulator with the default hooks: `apply_op` dispatches to
    /// [`BglsState::apply_gate`] / [`BglsState::apply_kraus`], and
    /// `compute_probability` to [`BglsState::probability`].
    pub fn new(initial_state: S) -> Self {
        let apply: ApplyFn<S> = Arc::new(|state, op, rng| match &op.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_gate(g, &qs)
            }
            OpKind::Channel(c) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_kraus(c, &qs, rng).map(|_| ())
            }
            OpKind::Measure { .. } => Ok(()), // handled by the sampler
        });
        let prob: ProbFn<S> = Arc::new(|state, bits| state.probability(bits));
        let batch: BatchProbFn<S> =
            Arc::new(|state, candidates| state.probabilities_batch(candidates));
        Simulator {
            initial_state,
            apply_op: apply,
            compute_probability: prob,
            compute_probabilities_batch: Some(batch),
            stochastic_apply: false,
            default_hooks: true,
            options: SimulatorOptions::default(),
        }
    }

    /// Builds a simulator from explicit hooks — the paper's three-argument
    /// constructor. `stochastic_apply` must be `true` when the hook draws
    /// randomness (disables sample parallelization so each repetition
    /// explores its own branch).
    ///
    /// No batched probability hook is installed (the custom scalar hook
    /// stays authoritative for every candidate); add one with
    /// [`Simulator::with_batch_hook`] when a batched evaluation exists.
    pub fn with_hooks(
        initial_state: S,
        apply_op: ApplyFn<S>,
        compute_probability: ProbFn<S>,
        stochastic_apply: bool,
    ) -> Self {
        Simulator {
            initial_state,
            apply_op,
            compute_probability,
            compute_probabilities_batch: None,
            stochastic_apply,
            default_hooks: false,
            options: SimulatorOptions::default(),
        }
    }

    /// Installs a batched candidate-probability hook. The hook must
    /// return, per candidate, exactly what the scalar hook would — see
    /// [`BatchProbFn`].
    pub fn with_batch_hook(mut self, hook: BatchProbFn<S>) -> Self {
        self.compute_probabilities_batch = Some(hook);
        self
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: SimulatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.options.seed = Some(seed);
        self
    }

    /// The configured initial state.
    pub fn initial_state(&self) -> &S {
        &self.initial_state
    }

    fn make_rng(&self) -> StdRng {
        match self.options.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        }
    }

    fn check_runnable(&self, circuit: &Circuit) -> Result<(), SimError> {
        if let Some(op) = circuit.all_operations().find(|op| op.is_parameterized()) {
            // Surface the symbol name for a actionable error.
            if let Some(g) = op.as_gate() {
                g.unitary()?;
            }
        }
        if circuit.num_qubits() > self.initial_state.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                index: circuit.num_qubits() - 1,
                num_qubits: self.initial_state.num_qubits(),
            });
        }
        Ok(())
    }

    /// True when this circuit can use the single-evolution multiplicity-map
    /// path.
    fn can_parallelize(&self, circuit: &Circuit) -> bool {
        self.options.parallelize_samples
            && !self.stochastic_apply
            && (!circuit.has_channels() || self.initial_state.channels_are_deterministic())
            && circuit.measurements_are_terminal()
    }

    /// True when the trajectory-forest engine may attempt this run
    /// (checked only after [`Simulator::can_parallelize`] declined).
    /// Forest channel forking calls the state's Kraus branch methods
    /// directly, so it requires the default hooks; stochastic custom
    /// hooks always replay.
    fn can_forest(&self) -> bool {
        self.options.trajectory_forest
            && self.options.parallelize_samples
            && self.default_hooks
            && !self.stochastic_apply
    }

    /// Runs the circuit for `repetitions` and returns measurement
    /// histograms, Cirq-style. The circuit must contain at least one
    /// measurement.
    ///
    /// Determinism: with a fixed seed the returned histograms are
    /// bit-identical regardless of `batch_probabilities`,
    /// `parallel_redistribution`, and (on the forest and trajectory
    /// paths) `parallel_trajectories`. Switching the *engine* —
    /// `trajectory_forest` on/off, or a forest run falling back on
    /// budget exhaustion — keys the RNG streams differently, so it
    /// preserves the distribution but not the individual seeded samples;
    /// `fuse_gates` likewise changes the executed gate sequence.
    pub fn run(&self, circuit: &Circuit, repetitions: u64) -> Result<RunResult, SimError> {
        if !circuit.has_measurements() {
            return Err(SimError::NoMeasurements);
        }
        self.check_runnable(circuit)?;
        if repetitions == 0 {
            return Ok(RunResult::new(0));
        }
        let circuit = self.prepared(circuit);
        if self.can_parallelize(&circuit) {
            return self.run_parallel_samples(&circuit, repetitions);
        }
        if self.can_forest() {
            match self.run_forest(&circuit, repetitions) {
                // frontier outgrew max_forest_nodes: replay instead
                Ok(None) => {}
                // backend lacks branch/projection capability for some
                // operation: the replay path is the arbiter of whether
                // the circuit is runnable at all
                Err(SimError::Unsupported(_)) => {}
                other => return other.map(|r| r.expect("forest result")),
            }
        }
        self.run_trajectories(&circuit, repetitions)
    }

    /// Applies the opportunistic circuit transformations selected by the
    /// options: the full optimizer pipeline when `optimize` is set,
    /// otherwise single-qubit gate fusion when `fuse_gates` is set.
    fn prepared<'a>(&self, circuit: &'a Circuit) -> std::borrow::Cow<'a, Circuit> {
        if let Some(config) = &self.options.optimize {
            std::borrow::Cow::Owned(bgls_circuit::optimize(circuit, config).0)
        } else if self.options.fuse_gates {
            std::borrow::Cow::Owned(bgls_circuit::fuse(circuit))
        } else {
            std::borrow::Cow::Borrowed(circuit)
        }
    }

    /// Evolves the initial state through the circuit once (measurements
    /// skipped) and returns the final state — handy for computing ideal
    /// distributions or inspecting backends. Fails for circuits whose
    /// non-unitary operations the backend cannot apply.
    pub fn final_state(&self, circuit: &Circuit) -> Result<S, SimError> {
        self.check_runnable(circuit)?;
        let mut rng = self.make_rng();
        let mut state = self.initial_state.clone();
        for op in circuit.all_operations() {
            if op.is_measurement() {
                continue;
            }
            (self.apply_op)(&mut state, op, &mut rng)?;
        }
        Ok(state)
    }

    /// Runs a parameterized circuit once per resolver (the Cirq
    /// `run_sweep` equivalent, used by the QAOA grid search of Sec. 4.4).
    /// Returns one [`RunResult`] per resolver, in order.
    ///
    /// Seeding: one base seed is fixed per sweep call —
    /// [`SimulatorOptions::seed`], or a single entropy draw when the seed
    /// is `None` — and resolver `i` runs with the derived seed
    /// [`stream_seed`]`(base, i)`. Entry `i` is therefore exactly the
    /// result of a standalone [`Simulator::run`] of the resolved circuit
    /// under that derived seed: resolvers never share RNG state, distinct
    /// grid points get statistically independent streams even when they
    /// resolve to the same circuit, and with
    /// [`SimulatorOptions::parallel_sweep`] the Rayon fan-out is
    /// bit-identical to the sequential loop. With `seed: None` the sweep
    /// is *internally* deterministic (serial vs parallel agree within the
    /// call) but two sweep calls draw different bases.
    pub fn run_sweep(
        &self,
        circuit: &Circuit,
        resolvers: &[bgls_circuit::ParamResolver],
        repetitions: u64,
    ) -> Result<Vec<RunResult>, SimError> {
        let base = self.sample_base_seed();
        let run_one = |(i, r): (usize, &bgls_circuit::ParamResolver)| {
            let mut sim = self.clone();
            sim.options.seed = Some(stream_seed(base, i as u64));
            sim.run(&circuit.resolve(r), repetitions)
        };
        if self.options.parallel_sweep && resolvers.len() > 1 {
            let indexed: Vec<(usize, &bgls_circuit::ParamResolver)> =
                resolvers.iter().enumerate().collect();
            indexed.par_iter().map(|&entry| run_one(entry)).collect()
        } else {
            resolvers.iter().enumerate().map(run_one).collect()
        }
    }

    /// Runs a batch of already-resolved circuits in one fan-out, each
    /// with its own seed (`None` draws entropy for that entry). This is
    /// the serving-layer companion of [`Simulator::run_sweep`]: a batcher
    /// that merges compatible requests needs every entry's result to be a
    /// pure function of `(circuit, seed, repetitions)` — independent of
    /// which other requests happen to share the batch — so each entry
    /// runs under exactly its own seed rather than a position-derived
    /// stream. Entry `i` is bit-identical to
    /// `self.clone()` with `options.seed = jobs[i].1` running
    /// `jobs[i].0` standalone, whether or not
    /// [`SimulatorOptions::parallel_sweep`] spreads the batch across
    /// Rayon threads.
    pub fn run_batch(
        &self,
        jobs: &[(Circuit, Option<u64>)],
        repetitions: u64,
    ) -> Result<Vec<RunResult>, SimError> {
        let run_one = |(circuit, seed): &(Circuit, Option<u64>)| {
            let mut sim = self.clone();
            sim.options.seed = *seed;
            sim.run(circuit, repetitions)
        };
        if self.options.parallel_sweep && jobs.len() > 1 {
            jobs.par_iter().map(run_one).collect()
        } else {
            jobs.iter().map(run_one).collect()
        }
    }

    /// Samples `repetitions` bitstrings from the circuit's *final* state
    /// (measurement operations are ignored). This is the raw gate-by-gate
    /// sampler used by the overlap experiments of Figs. 4–5.
    pub fn sample_final_bitstrings(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<Vec<BitString>, SimError> {
        self.check_runnable(circuit)?;
        let stripped = self.prepared(&circuit.without_measurements()).into_owned();
        let n = self.initial_state.num_qubits();
        if self.can_parallelize(&stripped) {
            let mut rng = self.make_rng();
            let map = self.evolve_multiplicity_map(&stripped, repetitions, &mut rng)?;
            let mut out = Vec::with_capacity(repetitions as usize);
            let mut entries: Vec<(BitString, u64)> = map.into_iter().collect();
            entries.sort_unstable();
            for (b, m) in entries {
                out.extend(std::iter::repeat_n(b, m as usize));
            }
            Ok(out)
        } else {
            let seed = self.sample_base_seed();
            let supports = op_supports(&stripped);
            let run_chunk = |reps: std::ops::Range<u64>| -> Result<Vec<BitString>, SimError> {
                let mut scratch = self.initial_state.clone();
                let mut out = Vec::with_capacity((reps.end - reps.start) as usize);
                for rep in reps {
                    let mut rng = rep_rng(seed, rep);
                    out.push(self.trajectory_once(
                        &stripped,
                        &supports,
                        &mut scratch,
                        n,
                        &mut rng,
                    )?);
                }
                Ok(out)
            };
            match rep_chunks(repetitions, self.options.parallel_trajectories) {
                Some(chunks) => {
                    let parts: Result<Vec<Vec<BitString>>, SimError> =
                        chunks.into_par_iter().map(run_chunk).collect();
                    Ok(parts?.into_iter().flatten().collect())
                }
                None => run_chunk(0..repetitions),
            }
        }
    }

    fn sample_base_seed(&self) -> u64 {
        self.options
            .seed
            .unwrap_or_else(|| StdRng::from_entropy().gen())
    }

    // ---- expectation engine -------------------------------------------

    /// Validates an observable's qubit support against the state width.
    fn check_observable(&self, observable: &PauliSum) -> Result<(), SimError> {
        if let Some(q) = observable.max_qubit() {
            let n = self.initial_state.num_qubits();
            if q >= n {
                return Err(SimError::QubitOutOfRange {
                    index: q,
                    num_qubits: n,
                });
            }
        }
        Ok(())
    }

    /// Exact expectation value of `observable` on the circuit's output
    /// state: `Re <psi| O |psi>` (or `Re Tr(rho O)` on mixed-state
    /// backends), with no sampling involved.
    ///
    /// The state is evolved **once** and every term of the sum is
    /// evaluated on it through [`BglsState::expectation`] — the
    /// per-backend exact implementations (amplitude inner product,
    /// density-matrix trace, stabilizer conjugation, MPS transfer
    /// matrix, doubled-network contraction). For a Hermitian observable
    /// the imaginary part vanishes exactly, so the returned real part is
    /// the full answer.
    ///
    /// Like the trajectory forest, the walk is branch-aware: stochastic
    /// Kraus channels fork a weighted frontier over
    /// [`BglsState::kraus_branch_probabilities`] (exact branch weights,
    /// no multinomial sampling), interior measurements fork over the
    /// outcome distribution with projective collapse, and the final
    /// value is the weight-averaged expectation over the frontier —
    /// exact for the channel's mixed output state. A measurement whose
    /// qubits see no later non-measurement operation is a pure readout
    /// and is ignored (matching [`Simulator::final_state`]), judged
    /// per measurement — an unrelated mid-circuit measurement elsewhere
    /// does not change a readout's semantics. The frontier is bounded by
    /// [`SimulatorOptions::max_forest_nodes`]; exceeding it is an error
    /// (there is no sampling fallback on the exact path). Deterministic:
    /// no randomness is consumed, so the result is a pure function of
    /// circuit, observable, and backend.
    ///
    /// Custom stochastic apply hooks (e.g. sum-over-Cliffords) cannot be
    /// branch-enumerated and return [`SimError::Unsupported`]; so do
    /// stochastic channels under a custom (non-default) apply hook.
    pub fn expectation_value(
        &self,
        circuit: &Circuit,
        observable: &PauliSum,
    ) -> Result<f64, SimError> {
        self.check_observable(observable)?;
        self.check_runnable(circuit)?;
        let circuit = self.prepared(circuit);
        let nodes = self.expectation_frontier(&circuit)?;
        let mut acc = C64::ZERO;
        for (w, state) in &nodes {
            for (c, p) in observable.terms() {
                acc += *c * C64::real(*w * state.expectation(p)?);
            }
        }
        Ok(acc.re)
    }

    /// Exact expectation values of `observable` for a parameterized
    /// circuit under each resolver, in order — the expectation-engine
    /// analogue of [`Simulator::run_sweep`], and the scoring loop of
    /// variational workflows (QAOA energy landscapes).
    ///
    /// With [`SimulatorOptions::parallel_sweep`] the resolvers fan out
    /// across Rayon threads; the exact walk consumes no randomness, so
    /// each entry is a pure function of its resolved circuit and the
    /// sweep is bit-identical serial vs parallel regardless of the seed
    /// (including `seed: None` — unlike [`Simulator::run_sweep`], no
    /// entropy is ever drawn).
    pub fn expectation_sweep(
        &self,
        circuit: &Circuit,
        resolvers: &[bgls_circuit::ParamResolver],
        observable: &PauliSum,
    ) -> Result<Vec<f64>, SimError> {
        if self.options.parallel_sweep && resolvers.len() > 1 {
            resolvers
                .par_iter()
                .map(|r| self.expectation_value(&circuit.resolve(r), observable))
                .collect()
        } else {
            resolvers
                .iter()
                .map(|r| self.expectation_value(&circuit.resolve(r), observable))
                .collect()
        }
    }

    /// Walks the circuit maintaining a frontier of `(weight, state)`
    /// nodes whose weights are *exact* branch probabilities (no
    /// sampling): gates advance every node, stochastic channels fork
    /// nodes across their Kraus branches, and interior measurements fork
    /// nodes across outcome values with projective collapse. Weights sum
    /// to 1 within rounding.
    fn expectation_frontier(&self, circuit: &Circuit) -> Result<Vec<(f64, S)>, SimError> {
        if self.stochastic_apply {
            return Err(SimError::Unsupported(
                "exact expectation with a stochastic apply hook (use \
                 estimate_expectation)"
                    .into(),
            ));
        }
        let deterministic_channels = self.initial_state.channels_are_deterministic();
        if circuit.has_channels() && !deterministic_channels && !self.default_hooks {
            return Err(SimError::Unsupported(
                "exact expectation of stochastic channels under custom hooks".into(),
            ));
        }
        let budget = self.options.max_forest_nodes;
        let over_budget = || {
            SimError::BudgetExhausted(format!(
                "expectation frontier exceeded max_forest_nodes ({budget}); \
                 raise the budget or use estimate_expectation"
            ))
        };
        let ops: Vec<&Operation> = circuit.all_operations().collect();
        // A measurement is a pure readout — ignored, matching
        // `final_state` / `sample_final_bitstrings` — unless a later
        // non-measurement operation acts on one of its qubits, in which
        // case that qubit's collapse is physical and the node forks.
        // Per-measurement, per-qubit: an unrelated mid-circuit
        // measurement elsewhere must not change a readout's semantics.
        let is_readout = |t: usize, support: &[Qubit]| -> bool {
            !ops[t + 1..].iter().any(|later| {
                !later.is_measurement() && later.support().iter().any(|q| support.contains(q))
            })
        };
        // Hook-compatible RNG: gates and deterministic channels draw
        // nothing from it, and the stochastic cases never reach the hook.
        let mut rng = self.make_rng();
        let mut nodes: Vec<(f64, S)> = vec![(1.0, self.initial_state.clone())];
        for (t, op) in ops.iter().copied().enumerate() {
            match &op.kind {
                OpKind::Measure { .. } if is_readout(t, op.support()) => {}
                OpKind::Measure { .. } => {
                    // Interior measurement: the post-measurement ensemble
                    // is the proper mixture over outcomes, one collapsed
                    // node per outcome with its Born weight.
                    for q in op.support().iter().map(|q| q.index()) {
                        let z_q = PauliString::z(q);
                        let mut next = Vec::with_capacity(nodes.len() * 2);
                        for (w, state) in nodes {
                            let p_one = ((1.0 - state.expectation(&z_q)?) / 2.0).clamp(0.0, 1.0);
                            for (value, pv) in [(false, 1.0 - p_one), (true, p_one)] {
                                if pv <= 0.0 {
                                    continue;
                                }
                                let mut child = state.clone();
                                child.project(q, value)?;
                                next.push((w * pv, child));
                            }
                            if next.len() > budget {
                                return Err(over_budget());
                            }
                        }
                        nodes = next;
                    }
                }
                OpKind::Channel(ch) if !deterministic_channels => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    let mut next = Vec::with_capacity(nodes.len());
                    for (w, state) in nodes {
                        let probs = state.kraus_branch_probabilities(ch, &qs)?;
                        for (branch, &pv) in probs.iter().enumerate() {
                            if pv <= 0.0 {
                                continue;
                            }
                            let mut child = state.clone();
                            child.apply_kraus_branch(ch, branch, &qs)?;
                            next.push((w * pv, child));
                        }
                        if next.len() > budget {
                            return Err(over_budget());
                        }
                    }
                    nodes = next;
                }
                _ => {
                    for (_, state) in &mut nodes {
                        (self.apply_op)(state, op, &mut rng)?;
                    }
                }
            }
        }
        Ok(nodes)
    }

    /// Shot-based estimate of a Hermitian observable on the circuit's
    /// output distribution: the observable's non-identity terms are
    /// partitioned into qubit-wise-commuting groups
    /// ([`PauliSum::qubit_wise_commuting_groups`]), each group's shared
    /// basis rotation ([`PauliSum::diagonalizing_rotations`]) is
    /// appended to the circuit, and **one** sampling run of
    /// `shots_per_group` repetitions scores every term in the group as a
    /// signed bitstring parity. Identity terms contribute exactly.
    ///
    /// Returns the estimate with its standard error
    /// ([`ExpectationEstimate`]); the error shrinks as
    /// `1/sqrt(shots_per_group)`. Sampling rides the full gate-by-gate
    /// hot path (multiplicity maps, batched probabilities), so the
    /// estimator works on every backend and terminally-measured circuit
    /// the sampler handles — including stochastic-hook simulators the
    /// exact path rejects; circuits with *mid-circuit* measurements are
    /// rejected (their collapse cannot be reproduced after measurement
    /// stripping — use [`Simulator::expectation_value`], which forks
    /// them exactly). Each group derives its own seed stream from the
    /// configured seed, so estimates are reproducible and groups are
    /// statistically independent.
    pub fn estimate_expectation(
        &self,
        circuit: &Circuit,
        observable: &PauliSum,
        shots_per_group: u64,
    ) -> Result<ExpectationEstimate, SimError> {
        if shots_per_group < 2 {
            return Err(SimError::Invalid(
                "estimate_expectation needs at least 2 shots per group".into(),
            ));
        }
        if !observable.is_hermitian(1e-9) {
            return Err(SimError::Invalid(
                "estimate_expectation requires a Hermitian observable \
                 (real coefficients)"
                    .into(),
            ));
        }
        if !circuit.measurements_are_terminal() {
            // Stripping an interior measurement would silently drop its
            // dephasing/collapse effect on the final state; the exact
            // path (expectation_value) forks it instead.
            return Err(SimError::Unsupported(
                "shot estimation of circuits with mid-circuit measurements \
                 (use expectation_value)"
                    .into(),
            ));
        }
        self.check_observable(observable)?;
        let mut value = 0.0;
        let mut measured = PauliSum::new();
        for (c, p) in observable.terms() {
            if p.is_identity() {
                value += c.re;
            } else {
                measured.add_term(*c, p.clone());
            }
        }
        let groups = measured.qubit_wise_commuting_groups();
        let base = circuit.without_measurements();
        let seed0 = self.sample_base_seed();
        let mut variance = 0.0;
        for (i, group) in groups.iter().enumerate() {
            let mut rotated = base.clone();
            for op in group.diagonalizing_rotations()? {
                rotated.push(op);
            }
            let mut sim = self.clone();
            sim.options.seed = Some(stream_seed(seed0, i as u64));
            let samples = sim.sample_final_bitstrings(&rotated, shots_per_group)?;
            // Per-sample group energy: every term's signed parity at
            // once, so within-group covariance is captured exactly.
            // Support masks are pure per-term data — hoisted out of the
            // per-sample loop.
            let term_masks = group.parity_terms();
            let mut mean = 0.0;
            let mut m2 = 0.0;
            for (k, b) in samples.iter().enumerate() {
                let y = bgls_circuit::score_parity_terms(&term_masks, b.as_u64());
                // Welford running mean/variance
                let delta = y - mean;
                mean += delta / (k + 1) as f64;
                m2 += delta * (y - mean);
            }
            let shots = samples.len() as f64;
            value += mean;
            // m2 is mathematically non-negative, but clamp against
            // floating-point cancellation so std_error can never be NaN.
            variance += m2.max(0.0) / (shots * (shots - 1.0));
        }
        Ok(ExpectationEstimate {
            value,
            std_error: variance.sqrt(),
            shots_per_group,
            num_groups: groups.len(),
        })
    }

    // ---- sample-parallelized path -------------------------------------

    fn run_parallel_samples(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<RunResult, SimError> {
        let mut rng = self.make_rng();
        let mut result = RunResult::new(repetitions);
        let mut state = self.initial_state.clone();
        let n = self.initial_state.num_qubits();
        let mut map: FxHashMap<BitString, u64> = FxHashMap::default();
        map.insert(BitString::zeros(n), repetitions);

        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Measure { key } => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    for (b, m) in &map {
                        result.record(key, b.restrict(&qs), *m);
                    }
                }
                _ => {
                    self.step_multiplicity_map(&mut state, op, &mut map, &mut rng)?;
                }
            }
        }
        Ok(result)
    }

    /// Evolves the multiplicity map over all non-measurement operations and
    /// returns the final map.
    fn evolve_multiplicity_map(
        &self,
        circuit: &Circuit,
        repetitions: u64,
        rng: &mut StdRng,
    ) -> Result<FxHashMap<BitString, u64>, SimError> {
        let n = self.initial_state.num_qubits();
        let mut state = self.initial_state.clone();
        let mut map: FxHashMap<BitString, u64> = FxHashMap::default();
        map.insert(BitString::zeros(n), repetitions);
        for op in circuit.all_operations() {
            if op.is_measurement() {
                continue;
            }
            self.step_multiplicity_map(&mut state, op, &mut map, rng)?;
        }
        Ok(map)
    }

    /// Evaluates the candidate probabilities through the batched hook
    /// when installed and enabled, else through the scalar hook. Both
    /// paths return bit-identical values (the [`BatchProbFn`] contract),
    /// so the choice never changes seeded samples.
    fn candidate_probs(&self, state: &S, candidates: &[BitString]) -> Vec<f64> {
        match &self.compute_probabilities_batch {
            Some(batch) if self.options.batch_probabilities => batch(state, candidates),
            _ => candidates
                .iter()
                .map(|&c| (self.compute_probability)(state, c))
                .collect(),
        }
    }

    /// One gate-by-gate step on the whole multiplicity map: apply the
    /// operation once, then redistribute every unique bitstring's
    /// multiplicity across its candidates.
    ///
    /// One `u64` is drawn from the step RNG per operation; each map entry
    /// then splits its multiplicity with its own SplitMix stream keyed by
    /// `(step seed, entry bitstring)`, so the redistribution is
    /// independent of entry order and thread count — the batched,
    /// scalar, Rayon, and sequential variants all produce bit-identical
    /// maps.
    fn step_multiplicity_map(
        &self,
        state: &mut S,
        op: &Operation,
        map: &mut FxHashMap<BitString, u64>,
        rng: &mut StdRng,
    ) -> Result<(), SimError> {
        (self.apply_op)(state, op, rng)?;
        if self.skip_update(op) {
            return Ok(());
        }
        let support: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
        let step_seed: u64 = rng.gen();
        *map = self.redistribute(state, &support, step_seed, map)?;
        Ok(())
    }

    /// Redistributes every map entry's multiplicity across its candidate
    /// set — through the batched hook when installed and enabled, else
    /// the scalar loop. Both variants are bit-identical (see
    /// [`Simulator::step_multiplicity_map`]).
    fn redistribute(
        &self,
        state: &S,
        support: &[usize],
        step_seed: u64,
        map: &FxHashMap<BitString, u64>,
    ) -> Result<FxHashMap<BitString, u64>, SimError> {
        let batch_hook = match &self.compute_probabilities_batch {
            Some(hook) if self.options.batch_probabilities => Some(hook),
            _ => None,
        };
        match batch_hook {
            Some(hook) => self.step_map_batched(state, support, step_seed, map, hook),
            None => self.step_map_scalar(state, support, step_seed, map),
        }
    }

    /// True when this redistribution should fan out across Rayon threads.
    fn redistribute_in_parallel(&self, n_entries: usize) -> bool {
        const PARALLEL_ENTRY_THRESHOLD: usize = 64;
        self.options.parallel_redistribution
            && rayon::current_num_threads() > 1
            && n_entries >= PARALLEL_ENTRY_THRESHOLD
    }

    /// Scalar redistribution: the paper's per-candidate
    /// `compute_probability` loop, one hook call per candidate per entry.
    fn step_map_scalar(
        &self,
        state: &S,
        support: &[usize],
        step_seed: u64,
        map: &FxHashMap<BitString, u64>,
    ) -> Result<FxHashMap<BitString, u64>, SimError> {
        let csize = 1usize << support.len();
        let split_chunk = |entries: &[(BitString, u64)],
                           sink: &mut dyn FnMut(BitString, u64)|
         -> Result<(), SimError> {
            let mut probs = Vec::with_capacity(csize);
            let mut counts = vec![0u64; csize];
            for &(b, m) in entries {
                let mut entry_rng = rep_rng(step_seed, b.as_u64());
                let candidates = b.candidates(support);
                probs.clear();
                probs.extend(
                    candidates
                        .iter()
                        .map(|c| (self.compute_probability)(state, *c)),
                );
                multinomial_split_into(m, &probs, &mut entry_rng, &mut counts)?;
                for (c, &cnt) in candidates.iter().zip(&counts) {
                    if cnt > 0 {
                        sink(*c, cnt);
                    }
                }
            }
            Ok(())
        };

        let entries: Vec<(BitString, u64)> = map.iter().map(|(&b, &m)| (b, m)).collect();
        let parallel = self.redistribute_in_parallel(entries.len());
        let mut next: FxHashMap<BitString, u64> = FxHashMap::default();
        next.reserve(entries.len());
        run_split(&entries, &split_chunk, parallel, &mut |c, cnt| {
            *next.entry(c).or_insert(0) += cnt;
        })?;
        Ok(next)
    }

    /// Batched redistribution: gathers the candidate sets of a whole run
    /// of map entries into one buffer, evaluates them with a single
    /// batched-hook call, then splits each entry against its probability
    /// slice. Amortizes candidate-index arithmetic (one offset table per
    /// operation instead of per entry) and eliminates every per-entry
    /// allocation of the scalar loop. Candidate order per entry matches
    /// [`BitString::candidates`], so the chained-binomial splits consume
    /// their per-entry RNG streams exactly as the scalar path does.
    fn step_map_batched(
        &self,
        state: &S,
        support: &[usize],
        step_seed: u64,
        map: &FxHashMap<BitString, u64>,
        hook: &BatchProbFn<S>,
    ) -> Result<FxHashMap<BitString, u64>, SimError> {
        let width = self.initial_state.num_qubits();
        let csize = 1usize << support.len();
        // offsets[v] scatters candidate index v onto the support qubits;
        // candidate v of entry b is (b & !mask) | offsets[v], in
        // BitString::candidates order.
        let mask: u64 = support.iter().fold(0u64, |acc, &q| acc | (1u64 << q));
        let offsets: Vec<u64> = (0..csize as u64)
            .map(|v| {
                support
                    .iter()
                    .enumerate()
                    .fold(0u64, |acc, (j, &q)| acc | (((v >> j) & 1) << q))
            })
            .collect();

        // Gather + evaluate + split one run of entries; nonzero candidate
        // counts are emitted through `sink`.
        let split_chunk = |entries: &[(BitString, u64)],
                           sink: &mut dyn FnMut(BitString, u64)|
         -> Result<(), SimError> {
            let mut candidates = Vec::with_capacity(entries.len() * csize);
            for (b, _) in entries {
                let base = b.as_u64() & !mask;
                candidates.extend(
                    offsets
                        .iter()
                        .map(|&o| BitString::from_u64(width, base | o)),
                );
            }
            let probs = hook(state, &candidates);
            debug_assert_eq!(probs.len(), candidates.len());
            let mut counts = vec![0u64; csize];
            for (i, (b, m)) in entries.iter().enumerate() {
                let mut entry_rng = rep_rng(step_seed, b.as_u64());
                multinomial_split_into(
                    *m,
                    &probs[i * csize..(i + 1) * csize],
                    &mut entry_rng,
                    &mut counts,
                )?;
                for (j, &cnt) in counts.iter().enumerate() {
                    if cnt > 0 {
                        sink(candidates[i * csize + j], cnt);
                    }
                }
            }
            Ok(())
        };

        let entries: Vec<(BitString, u64)> = map.iter().map(|(&b, &m)| (b, m)).collect();
        let go_parallel = self.redistribute_in_parallel(entries.len());

        // Candidates of different entries frequently coincide; when the
        // candidate volume is a sizable fraction of the value space,
        // accumulate into a dense per-value array (one add per candidate)
        // and hash each surviving value once, instead of one hashmap
        // probe per candidate. Sparse maps (e.g. a GHZ-like evolution on
        // a wide state) stay on the hashmap path — zeroing and scanning
        // 2^width slots per operation would dwarf their handful of
        // entries.
        const DENSE_WIDTH_LIMIT: usize = 20;
        let use_dense = width <= DENSE_WIDTH_LIMIT
            && (1usize << width) <= entries.len().saturating_mul(csize).saturating_mul(4);
        if use_dense {
            let mut dense = vec![0u64; 1usize << width];
            run_split(&entries, &split_chunk, go_parallel, &mut |c, cnt| {
                dense[c.as_u64() as usize] += cnt;
            })?;
            let populated = dense.iter().filter(|&&cnt| cnt > 0).count();
            let mut next: FxHashMap<BitString, u64> = FxHashMap::default();
            next.reserve(populated);
            for (v, &cnt) in dense.iter().enumerate() {
                if cnt > 0 {
                    next.insert(BitString::from_u64(width, v as u64), cnt);
                }
            }
            return Ok(next);
        }

        let mut next: FxHashMap<BitString, u64> = FxHashMap::default();
        next.reserve(entries.len());
        run_split(&entries, &split_chunk, go_parallel, &mut |c, cnt| {
            *next.entry(c).or_insert(0) += cnt;
        })?;
        Ok(next)
    }

    fn skip_update(&self, op: &Operation) -> bool {
        self.options.skip_diagonal_updates && op.as_gate().map(Gate::is_diagonal).unwrap_or(false)
    }

    // ---- trajectory-forest path ----------------------------------------

    /// Runs the circuit through the trajectory-forest engine: a frontier
    /// of `(state, multiplicity-map)` nodes sharing every deterministic
    /// prefix of their branch histories. Returns `Ok(None)` when the
    /// frontier outgrew [`SimulatorOptions::max_forest_nodes`] (the
    /// caller replays instead).
    ///
    /// Determinism: every node carries a SplitMix stream key derived from
    /// the base seed and its branch history ([`stream_seed`]); all
    /// randomness — redistribution step seeds, branch multinomials —
    /// is a pure function of `(stream, op index)`, so histograms are
    /// bit-identical across thread counts and across the batched /
    /// scalar probability paths.
    fn run_forest(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<Option<RunResult>, SimError> {
        let n = self.initial_state.num_qubits();
        let terminal = circuit.measurements_are_terminal();
        let op_count = circuit.all_operations().count() as u64;
        let seed = self.sample_base_seed();
        let mut result = RunResult::new(repetitions);
        let mut root_map: FxHashMap<BitString, u64> = FxHashMap::default();
        root_map.insert(BitString::zeros(n), repetitions);
        let mut nodes = vec![ForestNode {
            state: self.initial_state.clone(),
            map: root_map,
            stream: seed,
        }];
        for (t, op) in circuit.all_operations().enumerate() {
            let t = t as u64;
            match &op.kind {
                OpKind::Measure { key } => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    for node in &nodes {
                        for (b, m) in &node.map {
                            result.record(key, b.restrict(&qs), *m);
                        }
                    }
                    // No operation consumes the post-measurement state
                    // after the final op, so only interior measurements
                    // fork.
                    if !terminal && t + 1 < op_count {
                        match self.forest_collapse(nodes, &qs, t)? {
                            Some(next) => nodes = next,
                            None => return Ok(None),
                        }
                    }
                }
                OpKind::Channel(ch) if !self.initial_state.channels_are_deterministic() => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    match self.forest_branch(nodes, ch, &qs, t)? {
                        Some(next) => nodes = next,
                        None => return Ok(None),
                    }
                }
                _ => {
                    nodes = self.forest_step(nodes, op, t)?;
                }
            }
        }
        Ok(Some(result))
    }

    /// True when a frontier sweep should fan out across Rayon threads.
    fn forest_in_parallel(&self, n_items: usize) -> bool {
        self.options.parallel_trajectories && n_items > 1 && rayon::current_num_threads() > 1
    }

    /// Maps a fallible function over frontier items, across Rayon threads
    /// when enabled. Everything mapped here derives its randomness from
    /// per-item stream keys, so the sweep order never affects results.
    fn forest_map<T, U, F>(&self, items: Vec<T>, f: F) -> Result<Vec<U>, SimError>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> Result<U, SimError> + Sync,
    {
        if self.forest_in_parallel(items.len()) {
            items.into_par_iter().map(&f).collect()
        } else {
            items.into_iter().map(&f).collect()
        }
    }

    /// Deterministic forest advance: apply the operation to every node
    /// once and redistribute its map, exactly as the single-state
    /// sample-parallelized path does — but with the step seed derived
    /// from the node's stream instead of a shared sequential RNG.
    fn forest_step(
        &self,
        mut nodes: Vec<ForestNode<S>>,
        op: &Operation,
        t: u64,
    ) -> Result<Vec<ForestNode<S>>, SimError> {
        let advance = |node: &mut ForestNode<S>| -> Result<(), SimError> {
            // Hook-compatible RNG; the default hook draws nothing for
            // gates, and deterministic channels ignore it.
            let mut rng = rep_rng(node.stream, t);
            (self.apply_op)(&mut node.state, op, &mut rng)?;
            if self.skip_update(op) {
                return Ok(());
            }
            let support: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
            node.map = self.redistribute(
                &node.state,
                &support,
                stream_seed(node.stream, t),
                &node.map,
            )?;
            Ok(())
        };
        if self.forest_in_parallel(nodes.len()) {
            let results: Result<Vec<()>, SimError> = nodes.par_iter_mut().map(&advance).collect();
            results?;
        } else {
            for node in &mut nodes {
                advance(node)?;
            }
        }
        Ok(nodes)
    }

    /// Stochastic-channel branch point: every node splits each map
    /// entry's multiplicity multinomially across the channel's Kraus
    /// branch probabilities (per-entry RNG streams, mirroring the
    /// redistribution step) and forks one child state per nonempty
    /// branch. Zero-multiplicity branches are pruned, so low-noise
    /// circuits keep the frontier near one node.
    ///
    /// Two phases so the [`SimulatorOptions::max_forest_nodes`] budget is
    /// checked *before* any child state is materialized: first the branch
    /// weights and multiplicity splits (no state clones), then — only if
    /// the prospective frontier fits — the per-branch states. Returns
    /// `Ok(None)` on budget exhaustion.
    fn forest_branch(
        &self,
        nodes: Vec<ForestNode<S>>,
        channel: &Channel,
        support: &[usize],
        t: u64,
    ) -> Result<Option<Vec<ForestNode<S>>>, SimError> {
        struct Plan<S> {
            state: S,
            branch_seed: u64,
            branch_maps: Vec<FxHashMap<BitString, u64>>,
        }
        let plans: Vec<Plan<S>> = self.forest_map(nodes, |node| {
            let probs = node.state.kraus_branch_probabilities(channel, support)?;
            let branch_seed = stream_seed(node.stream, t);
            let mut branch_maps: Vec<FxHashMap<BitString, u64>> =
                vec![FxHashMap::default(); probs.len()];
            let mut counts = Vec::new();
            for (&b, &m) in &node.map {
                let mut entry_rng = rep_rng(branch_seed, b.as_u64());
                multinomial_split_into(m, &probs, &mut entry_rng, &mut counts)?;
                for (j, &cnt) in counts.iter().enumerate() {
                    if cnt > 0 {
                        branch_maps[j].insert(b, cnt);
                    }
                }
            }
            Ok(Plan {
                state: node.state,
                branch_seed,
                branch_maps,
            })
        })?;
        let children_total: usize = plans
            .iter()
            .map(|p| p.branch_maps.iter().filter(|m| !m.is_empty()).count())
            .sum();
        if children_total > self.options.max_forest_nodes {
            return Ok(None);
        }
        let parts = self.forest_map(plans, |plan| {
            let occupied = plan.branch_maps.iter().filter(|m| !m.is_empty()).count();
            let mut parent = Some(plan.state);
            let mut remaining = occupied;
            let mut children = Vec::with_capacity(occupied);
            for (j, map) in plan.branch_maps.into_iter().enumerate() {
                if map.is_empty() {
                    continue;
                }
                remaining -= 1;
                let mut state = if remaining == 0 {
                    // the last child takes the parent state without a copy
                    parent.take().expect("parent state")
                } else {
                    parent.as_ref().expect("parent state").clone()
                };
                state.apply_kraus_branch(channel, j, support)?;
                let stream = stream_seed(plan.branch_seed, 1 + j as u64);
                // the BGLS bitstring update after the channel application
                let map = self.redistribute(&state, support, stream_seed(stream, t), &map)?;
                children.push(ForestNode { state, map, stream });
            }
            Ok(children)
        })?;
        Ok(Some(parts.into_iter().flatten().collect()))
    }

    /// Mid-circuit-measurement fork: a node's entries are grouped by
    /// measured outcome and each group gets a child whose state is
    /// projected onto that outcome — keeping later operations exactly
    /// correlated with what this node's repetitions already recorded.
    /// Like [`Simulator::forest_branch`], the budget is checked against
    /// the grouped outcome counts before any state is cloned; returns
    /// `Ok(None)` on budget exhaustion.
    fn forest_collapse(
        &self,
        nodes: Vec<ForestNode<S>>,
        support: &[usize],
        t: u64,
    ) -> Result<Option<Vec<ForestNode<S>>>, SimError> {
        struct Plan<S> {
            state: S,
            fork_seed: u64,
            outcomes: Vec<(u64, FxHashMap<BitString, u64>)>,
        }
        let plans: Vec<Plan<S>> = self.forest_map(nodes, |node| {
            let mut groups: FxHashMap<u64, FxHashMap<BitString, u64>> = FxHashMap::default();
            for (&b, &m) in &node.map {
                groups
                    .entry(b.support_value(support))
                    .or_default()
                    .insert(b, m);
            }
            let mut outcomes: Vec<(u64, FxHashMap<BitString, u64>)> = groups.into_iter().collect();
            outcomes.sort_unstable_by_key(|&(v, _)| v);
            Ok(Plan {
                fork_seed: stream_seed(node.stream, t),
                state: node.state,
                outcomes,
            })
        })?;
        let children_total: usize = plans.iter().map(|p| p.outcomes.len()).sum();
        if children_total > self.options.max_forest_nodes {
            return Ok(None);
        }
        let parts = self.forest_map(plans, |plan| {
            let total = plan.outcomes.len();
            let mut parent = Some(plan.state);
            let mut children = Vec::with_capacity(total);
            for (i, (v, map)) in plan.outcomes.into_iter().enumerate() {
                let mut state = if i + 1 == total {
                    parent.take().expect("parent state")
                } else {
                    parent.as_ref().expect("parent state").clone()
                };
                for (j, &q) in support.iter().enumerate() {
                    state.project(q, (v >> j) & 1 == 1)?;
                }
                children.push(ForestNode {
                    state,
                    map,
                    stream: stream_seed(plan.fork_seed, 1 + v),
                });
            }
            Ok(children)
        })?;
        Ok(Some(parts.into_iter().flatten().collect()))
    }

    // ---- trajectory path ----------------------------------------------

    fn run_trajectories(&self, circuit: &Circuit, repetitions: u64) -> Result<RunResult, SimError> {
        let n = self.initial_state.num_qubits();
        let terminal = circuit.measurements_are_terminal();
        let seed = self.sample_base_seed();
        let supports = op_supports(circuit);

        // One scratch state per chunk: trajectories reuse its buffers via
        // `clone_from` instead of allocating a fresh state every rep.
        let run_chunk = |reps: std::ops::Range<u64>| -> Result<RunResult, SimError> {
            let mut result = RunResult::new(0);
            let mut scratch = self.initial_state.clone();
            for rep in reps {
                let mut rng = rep_rng(seed, rep);
                let mut recorder = |key: &str, outcome: BitString| {
                    result.record(key, outcome, 1);
                };
                self.trajectory_once_with_measure(
                    circuit,
                    &supports,
                    &mut scratch,
                    n,
                    &mut rng,
                    terminal,
                    &mut recorder,
                )?;
            }
            Ok(result)
        };

        match rep_chunks(repetitions, self.options.parallel_trajectories) {
            Some(chunks) => chunks
                .into_par_iter()
                .map(run_chunk)
                .try_reduce(
                    || RunResult::new(0),
                    |mut a, b| {
                        a.merge(b);
                        Ok(a)
                    },
                )
                // merge() sums the per-chunk counts; report the true total
                .map(|r| r.with_repetitions(repetitions)),
            None => run_chunk(0..repetitions).map(|r| r.with_repetitions(repetitions)),
        }
    }

    /// Walks the circuit once into `state` (measurements skipped),
    /// returning the final bitstring. `state` is overwritten via
    /// `clone_from`, so callers can reuse one scratch state across
    /// repetitions.
    fn trajectory_once(
        &self,
        circuit: &Circuit,
        supports: &[Vec<usize>],
        state: &mut S,
        n: usize,
        rng: &mut StdRng,
    ) -> Result<BitString, SimError> {
        state.clone_from(&self.initial_state);
        let mut b = BitString::zeros(n);
        for (op, support) in circuit.all_operations().zip(supports) {
            if op.is_measurement() {
                continue;
            }
            (self.apply_op)(state, op, rng)?;
            if !self.skip_update(op) {
                b = self.resample(state, b, support, rng)?;
            }
        }
        Ok(b)
    }

    /// Full trajectory including measurement recording and (when needed)
    /// collapse. `state` is a reusable scratch buffer like in
    /// [`Simulator::trajectory_once`].
    #[allow(clippy::too_many_arguments)]
    fn trajectory_once_with_measure(
        &self,
        circuit: &Circuit,
        supports: &[Vec<usize>],
        state: &mut S,
        n: usize,
        rng: &mut StdRng,
        terminal: bool,
        record: &mut dyn FnMut(&str, BitString),
    ) -> Result<(), SimError> {
        state.clone_from(&self.initial_state);
        let mut b = BitString::zeros(n);
        for (op, support) in circuit.all_operations().zip(supports) {
            match &op.kind {
                OpKind::Measure { key } => {
                    record(key, b.restrict(support));
                    if !terminal {
                        // Collapse so later gates see the post-measurement
                        // state of this trajectory.
                        for &q in support {
                            state.project(q, b.get(q))?;
                        }
                    }
                }
                _ => {
                    (self.apply_op)(state, op, rng)?;
                    if !self.skip_update(op) {
                        b = self.resample(state, b, support, rng)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The core gate-by-gate update: resample the bitstring over the
    /// operation's support from the current state's candidate
    /// probabilities.
    fn resample(
        &self,
        state: &S,
        b: BitString,
        support: &[usize],
        rng: &mut StdRng,
    ) -> Result<BitString, SimError> {
        let candidates = b.candidates(support);
        let probs = self.candidate_probs(state, &candidates);
        let idx = categorical(&probs, rng)?;
        Ok(candidates[idx])
    }
}

/// One frontier node of the trajectory forest: a concrete state shared by
/// every repetition whose branch history matches `stream`, plus the
/// multiplicity map of those repetitions' bitstrings.
struct ForestNode<S> {
    state: S,
    map: FxHashMap<BitString, u64>,
    /// SplitMix stream key encoding this node's branch history; all of
    /// the node's randomness derives from `(stream, op index)`.
    stream: u64,
}

/// Runs a redistribution splitter over `entries` and feeds every nonzero
/// `(candidate, count)` emission into `sink` — in parallel Rayon chunks
/// when `parallel`, in one sequential pass otherwise. The per-entry RNG
/// streams make the chunking invisible in the results, so the merge
/// order never matters and both modes accumulate identical totals.
fn run_split<F>(
    entries: &[(BitString, u64)],
    split_chunk: &F,
    parallel: bool,
    sink: &mut dyn FnMut(BitString, u64),
) -> Result<(), SimError>
where
    F: Fn(&[(BitString, u64)], &mut dyn FnMut(BitString, u64)) -> Result<(), SimError> + Sync,
{
    if !parallel {
        return split_chunk(entries, sink);
    }
    let chunk_len = entries.len().div_ceil(rayon::current_num_threads()).max(1);
    let pieces: Result<Vec<Vec<(BitString, u64)>>, SimError> = entries
        .par_chunks(chunk_len)
        .map(|chunk| {
            let mut out = Vec::with_capacity(chunk.len());
            split_chunk(chunk, &mut |c, cnt| out.push((c, cnt)))?;
            Ok(out)
        })
        .collect();
    for piece in pieces? {
        for (c, cnt) in piece {
            sink(c, cnt);
        }
    }
    Ok(())
}

/// Derives a child stream key from a parent key and an index —
/// SplitMix-style separation. Distinct indices always yield distinct
/// streams (the multiplier is odd, hence invertible mod 2^64), and the
/// mix is a pure function, so keys can be chained into a *tree* of
/// streams: the trajectory forest keys every node by its branch history
/// this way, making results independent of scheduling and thread count.
///
/// Public because callers that fan work out themselves (sweep batchers,
/// the serving layer, shot-group estimators) use it to give each child
/// job an independent, reproducible stream: [`Simulator::run_sweep`]
/// seeds resolver `i` with `stream_seed(base, i)`, and
/// [`Simulator::estimate_expectation`] does the same per
/// qubit-wise-commuting group.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG over a [`stream_seed`] stream. Used per repetition on the
/// trajectory path, per map entry on the redistribution path, and per
/// `(node, operation)` on the forest path.
fn rep_rng(seed: u64, rep: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(seed, rep))
}

/// Splits `0..repetitions` into one contiguous range per Rayon thread
/// (replay-path chunking: each chunk reuses one scratch state). Returns
/// `None` when the work should stay sequential. Per-repetition RNG
/// streams are keyed by the absolute repetition index, so the chunking
/// never changes results.
fn rep_chunks(repetitions: u64, parallel: bool) -> Option<Vec<std::ops::Range<u64>>> {
    let threads = rayon::current_num_threads() as u64;
    if !parallel || repetitions <= 1 || threads <= 1 {
        return None;
    }
    let chunk_len = repetitions.div_ceil(threads).max(1);
    let mut chunks = Vec::with_capacity(threads as usize);
    let mut start = 0;
    while start < repetitions {
        let end = (start + chunk_len).min(repetitions);
        chunks.push(start..end);
        start = end;
    }
    Some(chunks)
}

/// Each operation's support as state indices, in
/// [`Circuit::all_operations`] order — precomputed once per circuit so
/// the replay loops stop rebuilding a `Vec<usize>` per operation per
/// repetition.
fn op_supports(circuit: &Circuit) -> Vec<Vec<usize>> {
    circuit
        .all_operations()
        .map(|op| op.support().iter().map(|q| q.index()).collect())
        .collect()
}

/// Validates a weight slice for the samplers below: every entry must be
/// finite and non-negative (`NaN`/negative/`inf` weights are a caller
/// bug, reported as [`SimError::Invalid`]), and the total must be a
/// positive finite number (an all-zero distribution is the
/// impossible-event case, [`SimError::ZeroProbabilityEvent`]). Returns
/// the total.
#[inline]
fn checked_weight_total(weights: &[f64]) -> Result<f64, SimError> {
    let mut total = 0.0;
    for &w in weights {
        // `!is_finite` catches NaN and the infinities in one test.
        if !w.is_finite() || w < 0.0 {
            return Err(SimError::Invalid(format!(
                "invalid probability weight {w} (weights must be finite and non-negative)"
            )));
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(SimError::ZeroProbabilityEvent);
    }
    if total.is_infinite() {
        return Err(SimError::Invalid(
            "probability weights overflow to an infinite total".into(),
        ));
    }
    Ok(total)
}

/// Draws an index from unnormalized non-negative weights.
pub fn categorical(weights: &[f64], rng: &mut impl Rng) -> Result<usize, SimError> {
    let total = checked_weight_total(weights)?;
    let mut r = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return Ok(i);
        }
        r -= w;
    }
    // floating point slack: return the last positive-weight index
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .ok_or(SimError::ZeroProbabilityEvent)
}

/// Splits `m` trials across categories with the given unnormalized weights,
/// exactly equivalent in distribution to `m` independent categorical draws
/// (chained binomials). This is the multiplicity-map redistribution step.
pub fn multinomial_split(
    m: u64,
    weights: &[f64],
    rng: &mut impl Rng,
) -> Result<Vec<u64>, SimError> {
    let mut counts = Vec::new();
    multinomial_split_into(m, weights, rng, &mut counts)?;
    Ok(counts)
}

/// Allocation-free form of [`multinomial_split`]: writes the counts into
/// `counts` (cleared and resized to `weights.len()`). Identical RNG
/// consumption and results.
fn multinomial_split_into(
    m: u64,
    weights: &[f64],
    rng: &mut impl Rng,
    counts: &mut Vec<u64>,
) -> Result<(), SimError> {
    let total = checked_weight_total(weights)?;
    counts.clear();
    counts.resize(weights.len(), 0);
    if m <= 4 {
        // Small multiplicities — the bulk of a saturated map — split
        // faster as literal independent categorical draws (the exact
        // definition of the multinomial) than through the chained
        // binomial machinery.
        for _ in 0..m {
            counts[categorical(weights, rng)?] += 1;
        }
        return Ok(());
    }
    let mut remaining = m;
    let mut mass_left = total;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if i == weights.len() - 1 {
            counts[i] = remaining;
            break;
        }
        let p = (w / mass_left).clamp(0.0, 1.0);
        let draw = if p >= 1.0 {
            remaining
        } else if p <= 0.0 {
            0
        } else {
            Binomial::new(remaining, p)
                .map_err(|_| SimError::ZeroProbabilityEvent)?
                .sample(rng)
        };
        counts[i] = draw;
        remaining -= draw;
        mass_left -= w;
        if mass_left <= 0.0 {
            // numerical underflow: dump the rest in this bin
            counts[i] += remaining;
            remaining = 0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::testing::RefState;
    use bgls_circuit::{Channel, Gate, Operation, Qubit};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        for i in 1..n {
            c.push(
                Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).unwrap(),
            );
        }
        c.push(Operation::measure(Qubit::range(n), "z").unwrap());
        c
    }

    #[test]
    fn run_requires_measurement() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1));
        assert!(matches!(sim.run(&c, 10), Err(SimError::NoMeasurements)));
    }

    #[test]
    fn ghz_samples_only_all_zero_or_all_one() {
        let sim = Simulator::new(RefState::zero(3)).with_seed(7);
        let result = sim.run(&ghz(3), 1000).unwrap();
        let h = result.histogram("z").unwrap();
        assert_eq!(h.total(), 1000);
        let zeros = h.count_value(0b000);
        let ones = h.count_value(0b111);
        assert_eq!(zeros + ones, 1000, "only GHZ outcomes allowed");
        // both branches occur with ~50%: loose 5-sigma bound
        assert!(zeros > 380 && zeros < 620, "zeros = {zeros}");
    }

    #[test]
    fn trajectory_path_matches_parallel_path_distribution() {
        let c = ghz(2);
        let par = Simulator::new(RefState::zero(2)).with_seed(1);
        let mut opts = SimulatorOptions {
            parallelize_samples: false,
            seed: Some(2),
            ..Default::default()
        };
        opts.parallel_trajectories = false;
        let traj = Simulator::new(RefState::zero(2)).with_options(opts);
        let hp = par.run(&c, 2000).unwrap();
        let ht = traj.run(&c, 2000).unwrap();
        let fp = hp
            .histogram("z")
            .unwrap()
            .frequency(BitString::from_u64(2, 0));
        let ft = ht
            .histogram("z")
            .unwrap()
            .frequency(BitString::from_u64(2, 0));
        assert!((fp - 0.5).abs() < 0.05, "parallel freq {fp}");
        assert!((ft - 0.5).abs() < 0.05, "trajectory freq {ft}");
    }

    #[test]
    fn deterministic_with_seed() {
        let c = ghz(3);
        let r1 = Simulator::new(RefState::zero(3))
            .with_seed(99)
            .run(&c, 100)
            .unwrap();
        let r2 = Simulator::new(RefState::zero(3))
            .with_seed(99)
            .run(&c, 100)
            .unwrap();
        assert_eq!(
            r1.histogram("z").unwrap().count_value(0),
            r2.histogram("z").unwrap().count_value(0)
        );
    }

    #[test]
    fn x_gates_give_deterministic_bitstring() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::X, vec![Qubit(2)]).unwrap());
        c.push(Operation::measure(Qubit::range(3), "m").unwrap());
        let sim = Simulator::new(RefState::zero(3)).with_seed(3);
        let h = sim.run(&c, 50).unwrap();
        assert_eq!(h.histogram("m").unwrap().count_value(0b101), 50);
    }

    #[test]
    fn sample_final_bitstrings_without_measurement() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1)).with_seed(5);
        let samples = sim.sample_final_bitstrings(&c, 500).unwrap();
        assert_eq!(samples.len(), 500);
        let ones = samples.iter().filter(|b| b.get(0)).count();
        assert!(ones > 180 && ones < 320, "ones = {ones}");
    }

    #[test]
    fn measurement_key_restricts_to_listed_qubits() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        // measure only qubit 1, key "one"
        c.push(Operation::measure(vec![Qubit(1)], "one").unwrap());
        let sim = Simulator::new(RefState::zero(2)).with_seed(1);
        let r = sim.run(&c, 10).unwrap();
        let h = r.histogram("one").unwrap();
        assert_eq!(h.width(), 1);
        assert_eq!(h.count_value(1), 10);
    }

    #[test]
    fn noisy_circuit_uses_trajectories_and_flips_sometimes() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.3).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(11),
            parallel_trajectories: false,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 2000).unwrap();
        let flips = r.histogram("m").unwrap().count_value(1);
        // expect ~600
        assert!(flips > 450 && flips < 750, "flips = {flips}");
    }

    #[test]
    fn parallel_trajectories_match_sequential_statistics() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.5).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(21),
            parallel_trajectories: true,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 4000).unwrap();
        assert_eq!(r.repetitions(), 4000);
        let h = r.histogram("m").unwrap();
        assert_eq!(h.total(), 4000);
        let ones = h.count_value(1);
        assert!(ones > 1800 && ones < 2200, "ones = {ones}");
    }

    #[test]
    fn mid_circuit_measurement_collapses_state() {
        // H(0); measure(0); CNOT(0 -> 1); measure(1): outcomes must agree.
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(1)], "b").unwrap());
        let opts = SimulatorOptions {
            seed: Some(8),
            parallel_trajectories: false,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(2)).with_options(opts);
        let r = sim.run(&c, 400).unwrap();
        let a1 = r.histogram("a").unwrap().count_value(1);
        let b1 = r.histogram("b").unwrap().count_value(1);
        assert_eq!(a1, b1, "mid-circuit collapse must correlate a and b");
        assert!(a1 > 140 && a1 < 260);
    }

    #[test]
    fn skip_diagonal_updates_preserves_distribution() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(17),
            skip_diagonal_updates: true,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 4000).unwrap();
        // P(0) = cos^2(pi/8) ~= 0.8536
        let f0 = r.histogram("m").unwrap().frequency(BitString::zeros(1));
        assert!((f0 - 0.8536).abs() < 0.03, "f0 = {f0}");
    }

    #[test]
    fn final_state_evolves_without_sampling() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        c.push(Operation::measure(Qubit::range(2), "z").unwrap());
        let sim = Simulator::new(RefState::zero(2)).with_seed(1);
        let st = sim.final_state(&c).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_sweep_resolves_each_point() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rx(Param::symbol("t")), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let resolvers = [
            ParamResolver::from_pairs([("t", 0.0)]),
            ParamResolver::from_pairs([("t", std::f64::consts::PI)]),
        ];
        let sim = Simulator::new(RefState::zero(1)).with_seed(2);
        let results = sim.run_sweep(&c, &resolvers, 100).unwrap();
        assert_eq!(results.len(), 2);
        // t = 0: always 0; t = pi: always 1
        assert_eq!(results[0].histogram("m").unwrap().count_value(0), 100);
        assert_eq!(results[1].histogram("m").unwrap().count_value(1), 100);
    }

    #[test]
    fn run_sweep_is_bit_identical_serial_vs_parallel() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Ry(Param::symbol("t")), vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(Qubit::range(2), "m").unwrap());
        let resolvers: Vec<ParamResolver> = (0..6)
            .map(|i| ParamResolver::from_pairs([("t", 0.3 + 0.2 * i as f64)]))
            .collect();
        let serial = Simulator::new(RefState::zero(2))
            .with_seed(11)
            .run_sweep(&c, &resolvers, 500)
            .unwrap();
        let mut opts = SimulatorOptions {
            seed: Some(11),
            parallel_sweep: true,
            ..Default::default()
        };
        let parallel = Simulator::new(RefState::zero(2))
            .with_options(opts.clone())
            .run_sweep(&c, &resolvers, 500)
            .unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.histogram("m"), p.histogram("m"));
        }
        // entry i must equal a standalone run under stream_seed(base, i)
        for (i, s) in serial.iter().enumerate() {
            opts.seed = Some(stream_seed(11, i as u64));
            let standalone = Simulator::new(RefState::zero(2))
                .with_options(opts.clone())
                .run(&c.resolve(&resolvers[i]), 500)
                .unwrap();
            assert_eq!(s.histogram("m"), standalone.histogram("m"), "entry {i}");
        }
    }

    #[test]
    fn run_sweep_gives_identical_resolvers_independent_streams() {
        use bgls_circuit::ParamResolver;
        // two identical grid points: same distribution, but they must not
        // replay the same RNG stream (that would correlate their samples)
        let resolvers = [ParamResolver::new(), ParamResolver::new()];
        let sim = Simulator::new(RefState::zero(3)).with_seed(5);
        let results = sim.run_sweep(&ghz(3), &resolvers, 400).unwrap();
        assert_ne!(stream_seed(5, 0), stream_seed(5, 1));
        for (i, r) in results.iter().enumerate() {
            let standalone = Simulator::new(RefState::zero(3))
                .with_seed(stream_seed(5, i as u64))
                .run(&ghz(3), 400)
                .unwrap();
            assert_eq!(
                r.histogram("z"),
                standalone.histogram("z"),
                "entry {i} must run under its own derived stream"
            );
        }
    }

    #[test]
    fn unseeded_run_sweep_is_internally_deterministic() {
        use bgls_circuit::ParamResolver;
        // seed: None draws one base per sweep call; within the call the
        // fan-out must still agree serial vs parallel -- which shows up
        // as both identical-resolver entries being *independent* yet the
        // whole sweep completing without shared-RNG interleaving. The
        // cross-call base differs, so only distributional properties can
        // be asserted here.
        let resolvers = [ParamResolver::new(), ParamResolver::new()];
        let sim = Simulator::new(RefState::zero(2));
        let results = sim.run_sweep(&ghz(2), &resolvers, 300).unwrap();
        for r in &results {
            let h = r.histogram("z").unwrap();
            assert_eq!(h.count_value(0b00) + h.count_value(0b11), 300);
        }
    }

    #[test]
    fn run_batch_entries_are_pure_functions_of_circuit_and_seed() {
        let c2 = ghz(2);
        let c3 = ghz(3);
        let sim = Simulator::new(RefState::zero(3)).with_seed(99);
        // the same (circuit, seed) entry must give bit-identical results
        // no matter what else shares the batch, and regardless of the
        // simulator's own seed
        let solo = sim.run_batch(&[(c3.clone(), Some(7))], 200).unwrap();
        let mixed = sim
            .run_batch(
                &[
                    (c2.clone(), Some(1)),
                    (c3.clone(), Some(7)),
                    (c3.clone(), Some(8)),
                ],
                200,
            )
            .unwrap();
        assert_eq!(solo[0].histogram("z"), mixed[1].histogram("z"));
        // and it matches a standalone seeded run
        let standalone = Simulator::new(RefState::zero(3))
            .with_seed(7)
            .run(&c3, 200)
            .unwrap();
        assert_eq!(solo[0].histogram("z"), standalone.histogram("z"));
        // parallel fan-out agrees bit-for-bit
        let par = Simulator::new(RefState::zero(3))
            .with_options(SimulatorOptions {
                parallel_sweep: true,
                ..Default::default()
            })
            .run_batch(
                &[
                    (c2.clone(), Some(1)),
                    (c3.clone(), Some(7)),
                    (c3.clone(), Some(8)),
                ],
                200,
            )
            .unwrap();
        for (a, b) in mixed.iter().zip(&par) {
            assert_eq!(a.histogram("z"), b.histogram("z"));
        }
    }

    #[test]
    fn run_sweep_fails_on_unbound_symbol() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rz(Param::symbol("x")), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let sim = Simulator::new(RefState::zero(1));
        let err = sim.run_sweep(&c, &[ParamResolver::new()], 5);
        assert!(matches!(err, Err(SimError::Circuit(_))));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0u32; 3];
        for _ in 0..30000 {
            counts[categorical(&[1.0, 2.0, 1.0], &mut rng).unwrap()] += 1;
        }
        assert!((counts[1] as f64 / 30000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_total_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            categorical(&[0.0, 0.0], &mut rng),
            Err(SimError::ZeroProbabilityEvent)
        ));
    }

    #[test]
    fn multinomial_split_conserves_total() {
        let mut rng = StdRng::seed_from_u64(0);
        for m in [0u64, 1, 17, 1000, 123456] {
            let counts = multinomial_split(m, &[0.1, 0.4, 0.3, 0.2], &mut rng).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), m);
        }
    }

    #[test]
    fn multinomial_split_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = multinomial_split(1_000_000, &[1.0, 3.0], &mut rng).unwrap();
        let f = counts[0] as f64 / 1e6;
        assert!((f - 0.25).abs() < 0.005, "f = {f}");
    }

    #[test]
    fn multinomial_with_zero_weight_bins() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = multinomial_split(1000, &[0.0, 1.0, 0.0], &mut rng).unwrap();
        assert_eq!(counts, vec![0, 1000, 0]);
    }

    #[test]
    fn run_zero_repetitions_is_empty() {
        let sim = Simulator::new(RefState::zero(2));
        let r = sim.run(&ghz(2), 0).unwrap();
        assert_eq!(r.repetitions(), 0);
    }

    #[test]
    fn circuit_wider_than_state_rejected() {
        let sim = Simulator::new(RefState::zero(1));
        assert!(matches!(
            sim.run(&ghz(3), 5),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    fn entangling_circuit(n: usize) -> Circuit {
        // H everywhere, a CNOT ladder, T's, then measure: spreads the
        // multiplicity map over many entries.
        let mut c = Circuit::new();
        for i in 0..n {
            c.push(Operation::gate(Gate::H, vec![Qubit(i as u32)]).unwrap());
        }
        for i in 1..n {
            c.push(
                Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).unwrap(),
            );
        }
        for i in 0..n {
            c.push(Operation::gate(Gate::T, vec![Qubit(i as u32)]).unwrap());
            c.push(Operation::gate(Gate::H, vec![Qubit(i as u32)]).unwrap());
        }
        c.push(Operation::measure(Qubit::range(n), "z").unwrap());
        c
    }

    #[test]
    fn parallel_and_serial_redistribution_are_bit_identical() {
        let c = entangling_circuit(5);
        let run = |parallel: bool| {
            let opts = SimulatorOptions {
                seed: Some(13),
                parallel_redistribution: parallel,
                ..Default::default()
            };
            Simulator::new(RefState::zero(5))
                .with_options(opts)
                .run(&c, 4000)
                .unwrap()
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a.histogram("z"), b.histogram("z"));
    }

    #[test]
    fn batch_and_scalar_probability_paths_are_bit_identical() {
        let c = entangling_circuit(4);
        let run = |batch: bool| {
            let opts = SimulatorOptions {
                seed: Some(29),
                batch_probabilities: batch,
                ..Default::default()
            };
            Simulator::new(RefState::zero(4))
                .with_options(opts)
                .run(&c, 3000)
                .unwrap()
        };
        assert_eq!(run(true).histogram("z"), run(false).histogram("z"));
    }

    #[test]
    fn custom_batch_hook_is_used() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BATCH_CALLS: AtomicUsize = AtomicUsize::new(0);
        let hook: BatchProbFn<RefState> = Arc::new(|s, cands| {
            BATCH_CALLS.fetch_add(1, Ordering::Relaxed);
            s.probabilities_batch(cands)
        });
        let sim = Simulator::new(RefState::zero(2))
            .with_batch_hook(hook)
            .with_seed(3);
        let _ = sim.run(&ghz(2), 20).unwrap();
        assert!(BATCH_CALLS.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn fuse_gates_is_bit_identical_when_op_count_is_unchanged() {
        // GHZ has no multi-gate single-qubit runs: fusion just rewraps H
        // as the identical U1 matrix, so RNG consumption and probabilities
        // match the unfused run exactly.
        let c = ghz(3);
        let run = |fuse: bool| {
            let opts = SimulatorOptions {
                seed: Some(41),
                fuse_gates: fuse,
                ..Default::default()
            };
            Simulator::new(RefState::zero(3))
                .with_options(opts)
                .run(&c, 2000)
                .unwrap()
        };
        assert_eq!(run(true).histogram("z"), run(false).histogram("z"));
    }

    #[test]
    fn fuse_gates_preserves_distribution_on_single_qubit_runs() {
        // H T H on one qubit fuses to a single U1; P(0) = cos^2(pi/8).
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(5),
            fuse_gates: true,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 4000).unwrap();
        let f0 = r.histogram("m").unwrap().frequency(BitString::zeros(1));
        assert!((f0 - 0.8536).abs() < 0.03, "f0 = {f0}");
        // determinism: the fused run reproduces under the same seed
        let again = Simulator::new(RefState::zero(1))
            .with_options(SimulatorOptions {
                seed: Some(5),
                fuse_gates: true,
                ..Default::default()
            })
            .run(&c, 4000)
            .unwrap();
        assert_eq!(r.histogram("m"), again.histogram("m"));
    }

    #[test]
    fn fuse_gates_applies_on_the_trajectory_path_too() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap()); // cancels
        c.push(Operation::channel(Channel::bit_flip(0.3).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(11),
            fuse_gates: true,
            parallel_trajectories: false,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 2000).unwrap();
        let flips = r.histogram("m").unwrap().count_value(1);
        assert!(flips > 450 && flips < 750, "flips = {flips}");
    }

    /// GHZ with sparse bit-flip noise plus a mid-circuit measurement —
    /// exercises every forest transition: deterministic steps, channel
    /// branch points, and a measurement fork.
    fn noisy_mid_circuit_circuit(n: usize, p: f64) -> Circuit {
        let mut c = ghz(n);
        c.push(Operation::channel(Channel::bit_flip(p).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "mid").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::channel(Channel::depolarizing(p).unwrap(), vec![Qubit(1)]).unwrap());
        c.push(Operation::measure(Qubit::range(n), "fin").unwrap());
        c
    }

    fn forest_opts(seed: u64) -> SimulatorOptions {
        SimulatorOptions {
            seed: Some(seed),
            ..Default::default()
        }
    }

    #[test]
    fn forest_engages_and_budget_fallback_replays() {
        let c = noisy_mid_circuit_circuit(3, 0.2);
        let run = |opts: SimulatorOptions| {
            Simulator::new(RefState::zero(3))
                .with_options(opts)
                .run(&c, 2000)
                .unwrap()
        };
        let forest = run(forest_opts(31));
        let replay = run(SimulatorOptions {
            trajectory_forest: false,
            ..forest_opts(31)
        });
        let exhausted = run(SimulatorOptions {
            max_forest_nodes: 0,
            ..forest_opts(31)
        });
        // a zero budget falls back to replay: bit-identical to the
        // replay engine under the same seed
        assert_eq!(exhausted.histogram("fin"), replay.histogram("fin"));
        assert_eq!(exhausted.histogram("mid"), replay.histogram("mid"));
        // the forest keys its streams differently, so with the same seed
        // an identical histogram would mean it silently replayed
        assert_ne!(
            forest.histogram("fin"),
            replay.histogram("fin"),
            "forest run reproduced the replay stream exactly — did it engage?"
        );
    }

    #[test]
    fn forest_parallel_and_serial_are_bit_identical() {
        let c = noisy_mid_circuit_circuit(4, 0.15);
        let run = |parallel: bool| {
            let opts = SimulatorOptions {
                parallel_trajectories: parallel,
                parallel_redistribution: parallel,
                ..forest_opts(32)
            };
            Simulator::new(RefState::zero(4))
                .with_options(opts)
                .run(&c, 3000)
                .unwrap()
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a.histogram("fin"), b.histogram("fin"));
        assert_eq!(a.histogram("mid"), b.histogram("mid"));
    }

    #[test]
    fn forest_batched_and_scalar_are_bit_identical() {
        let c = noisy_mid_circuit_circuit(4, 0.15);
        let run = |batch: bool| {
            let opts = SimulatorOptions {
                batch_probabilities: batch,
                ..forest_opts(33)
            };
            Simulator::new(RefState::zero(4))
                .with_options(opts)
                .run(&c, 3000)
                .unwrap()
        };
        let a = run(true);
        let b = run(false);
        assert_eq!(a.histogram("fin"), b.histogram("fin"));
        assert_eq!(a.histogram("mid"), b.histogram("mid"));
    }

    #[test]
    fn forest_mid_circuit_collapse_correlates_outcomes() {
        // H(0); measure(0); CNOT(0 -> 1); measure(1): outcomes must agree
        // exactly, repetition by repetition, through the forest's
        // measurement forks.
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(1)], "b").unwrap());
        let sim = Simulator::new(RefState::zero(2)).with_options(forest_opts(34));
        let r = sim.run(&c, 1000).unwrap();
        assert_eq!(
            r.histogram("a").unwrap().count_value(1),
            r.histogram("b").unwrap().count_value(1),
        );
    }

    #[test]
    fn forest_matches_replay_distribution_on_noisy_circuit() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.3).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let run = |forest: bool| {
            let opts = SimulatorOptions {
                trajectory_forest: forest,
                ..forest_opts(35)
            };
            Simulator::new(RefState::zero(1))
                .with_options(opts)
                .run(&c, 4000)
                .unwrap()
        };
        let ff = run(true).histogram("m").unwrap().count_value(1) as f64 / 4000.0;
        let fr = run(false).histogram("m").unwrap().count_value(1) as f64 / 4000.0;
        assert!((ff - 0.3).abs() < 0.035, "forest flip rate {ff}");
        assert!((fr - 0.3).abs() < 0.035, "replay flip rate {fr}");
    }

    #[test]
    fn forest_conserves_repetitions_under_heavy_branching() {
        // depolarizing noise on every qubit of an entangling circuit:
        // plenty of branch points, still exactly `reps` outcomes per key
        let c = entangling_circuit(4);
        let ops: Vec<Operation> = c.all_operations().cloned().collect();
        let mut noisy = Circuit::new();
        for op in ops {
            let is_measure = op.is_measurement();
            if is_measure {
                for q in 0..4u32 {
                    noisy.push(
                        Operation::channel(Channel::depolarizing(0.1).unwrap(), vec![Qubit(q)])
                            .unwrap(),
                    );
                }
            }
            noisy.push(op);
        }
        let sim = Simulator::new(RefState::zero(4)).with_options(forest_opts(36));
        let r = sim.run(&noisy, 5000).unwrap();
        assert_eq!(r.histogram("z").unwrap().total(), 5000);
    }

    #[test]
    fn custom_hooks_never_use_the_forest() {
        // with_hooks simulators keep the replay engine even for noisy
        // circuits: same seed, same histogram as an explicit replay run
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.4).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let apply: ApplyFn<RefState> = Arc::new(|s, op, rng| match &op.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                s.apply_gate(g, &qs)
            }
            OpKind::Channel(ch) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                s.apply_kraus(ch, &qs, rng).map(|_| ())
            }
            OpKind::Measure { .. } => Ok(()),
        });
        let prob: ProbFn<RefState> = Arc::new(|s, b| s.probability(b));
        let hooked = Simulator::with_hooks(RefState::zero(1), apply, prob, false)
            .with_options(forest_opts(37));
        let replay = Simulator::new(RefState::zero(1)).with_options(SimulatorOptions {
            trajectory_forest: false,
            ..forest_opts(37)
        });
        assert_eq!(
            hooked.run(&c, 500).unwrap().histogram("m"),
            replay.run(&c, 500).unwrap().histogram("m"),
        );
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_sequential() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rx(Param::symbol("t")), vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let resolvers: Vec<ParamResolver> = (0..6)
            .map(|i| ParamResolver::from_pairs([("t", 0.3 * i as f64)]))
            .collect();
        let run = |parallel: bool| {
            let opts = SimulatorOptions {
                parallel_sweep: parallel,
                ..forest_opts(38)
            };
            Simulator::new(RefState::zero(1))
                .with_options(opts)
                .run_sweep(&c, &resolvers, 600)
                .unwrap()
        };
        let par = run(true);
        let seq = run(false);
        assert_eq!(par.len(), seq.len());
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.histogram("m"), b.histogram("m"));
        }
    }

    #[test]
    fn custom_probability_hook_is_used() {
        // A hook that inverts probabilities would break GHZ correlations;
        // here we just count invocations to prove the hook wiring.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let state = RefState::zero(2);
        let apply: ApplyFn<RefState> = Arc::new(|s, op, rng| {
            let default = Simulator::new(s.clone());
            let _ = default; // the default hook body, inlined:
            match &op.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    s.apply_gate(g, &qs)
                }
                OpKind::Channel(c) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    s.apply_kraus(c, &qs, rng).map(|_| ())
                }
                OpKind::Measure { .. } => Ok(()),
            }
        });
        let prob: ProbFn<RefState> = Arc::new(|s, b| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            s.probability(b)
        });
        let sim = Simulator::with_hooks(state, apply, prob, false).with_seed(1);
        let _ = sim.run(&ghz(2), 10).unwrap();
        assert!(CALLS.load(Ordering::Relaxed) > 0);
    }

    // ---- expectation engine --------------------------------------------

    #[test]
    fn expectation_value_on_ghz_is_exact() {
        let sim = Simulator::new(RefState::zero(3));
        // terminal measurement in ghz() is ignored by the exact path
        let obs: PauliSum = "Z0 Z1 + X0 X1 X2 + 0.5 * Z0 + 2".parse().unwrap();
        let e = sim.expectation_value(&ghz(3), &obs).unwrap();
        assert!((e - 4.0).abs() < 1e-10, "GHZ energy {e}");
        // identity-only observable
        let c = sim
            .expectation_value(&ghz(3), &PauliSum::constant(C64::real(1.5)))
            .unwrap();
        assert!((c - 1.5).abs() < 1e-12);
        // out-of-range support is a typed error
        assert!(matches!(
            sim.expectation_value(&ghz(3), &"Z7".parse().unwrap()),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn expectation_value_forks_stochastic_channels_exactly() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.3).unwrap(), vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1));
        // <Z> = (1 - p) - p = 0.4, with exact branch weights (no sampling)
        let z = sim.expectation_value(&c, &"Z0".parse().unwrap()).unwrap();
        assert!((z - 0.4).abs() < 1e-12, "<Z> = {z}");
        // budget of 1 node cannot hold the two branches
        let tight = Simulator::new(RefState::zero(1)).with_options(SimulatorOptions {
            max_forest_nodes: 1,
            ..Default::default()
        });
        assert!(matches!(
            tight.expectation_value(&c, &"Z0".parse().unwrap()),
            Err(SimError::BudgetExhausted(_))
        ));
    }

    #[test]
    fn expectation_value_forks_interior_measurements() {
        // H, measure, H: the measured mixture dephases, so the final <Z>
        // is 0 (a pure H-H walk would give 1).
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1));
        let z = sim.expectation_value(&c, &"Z0".parse().unwrap()).unwrap();
        assert!(z.abs() < 1e-12, "dephased <Z> = {z}");
        let mut pure = Circuit::new();
        pure.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        pure.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let z = sim
            .expectation_value(&pure, &"Z0".parse().unwrap())
            .unwrap();
        assert!((z - 1.0).abs() < 1e-12);
    }

    #[test]
    fn readout_semantics_are_per_measurement() {
        // q0 carries a genuine mid-circuit measurement; q1's terminal
        // measurement is a readout and must stay ignored regardless —
        // <X1> is 1 with or without the unrelated q0 dephasing.
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m0").unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(1)], "m1").unwrap());
        let sim = Simulator::new(RefState::zero(2));
        let x1 = sim.expectation_value(&c, &"X1".parse().unwrap()).unwrap();
        assert!((x1 - 1.0).abs() < 1e-12, "readout dephased <X1> = {x1}");
        // while q0's interior measurement still dephases <X0>
        let z0 = sim.expectation_value(&c, &"Z0".parse().unwrap()).unwrap();
        assert!(z0.abs() < 1e-12, "interior measurement kept <Z0> = {z0}");
    }

    #[test]
    fn expectation_value_rejects_stochastic_hooks() {
        let apply: ApplyFn<RefState> = Arc::new(|_, _, _| Ok(()));
        let prob: ProbFn<RefState> = Arc::new(|s, b| s.probability(b));
        let sim = Simulator::with_hooks(RefState::zero(1), apply, prob, true);
        assert!(matches!(
            sim.expectation_value(&ghz(1), &"Z0".parse().unwrap()),
            Err(SimError::Unsupported(_))
        ));
    }

    #[test]
    fn expectation_sweep_matches_pointwise_values() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rx(Param::symbol("t")), vec![Qubit(0)]).unwrap());
        let obs: PauliSum = "Z0".parse().unwrap();
        let resolvers: Vec<ParamResolver> = [0.0, 0.5, 1.2, std::f64::consts::PI]
            .iter()
            .map(|&t| ParamResolver::from_pairs([("t", t)]))
            .collect();
        for parallel in [false, true] {
            let sim = Simulator::new(RefState::zero(1)).with_options(SimulatorOptions {
                parallel_sweep: parallel,
                ..Default::default()
            });
            let sweep = sim.expectation_sweep(&c, &resolvers, &obs).unwrap();
            // <Z> after Rx(t) is cos(t)
            for (r, (e, t)) in sweep
                .iter()
                .zip([0.0, 0.5, 1.2, std::f64::consts::PI])
                .enumerate()
            {
                let _ = r;
                assert!((e - t.cos()).abs() < 1e-10, "Rx({t}): {e}");
            }
        }
    }

    #[test]
    fn estimate_expectation_matches_exact_and_shrinks() {
        let obs: PauliSum = "Z0 Z1 + X0 X1 X2 + 0.5 * Z2 + 1".parse().unwrap();
        let sim = Simulator::new(RefState::zero(3)).with_seed(5);
        let exact = sim.expectation_value(&ghz(3), &obs).unwrap();
        let small = sim.estimate_expectation(&ghz(3), &obs, 200).unwrap();
        let big = sim.estimate_expectation(&ghz(3), &obs, 20_000).unwrap();
        // Z-terms and the X-string need different bases: 2 groups
        assert_eq!(small.num_groups, 2);
        assert_eq!(small.shots_per_group, 200);
        for est in [&small, &big] {
            assert!(
                (est.value - exact).abs() < 5.0 * est.std_error + 1e-9,
                "estimate {} vs exact {exact} (se {})",
                est.value,
                est.std_error
            );
        }
        // 100x the shots shrinks the standard error ~10x
        let ratio = small.std_error / big.std_error;
        assert!((ratio - 10.0).abs() < 3.0, "SE ratio {ratio}");
    }

    #[test]
    fn estimate_expectation_is_seed_deterministic() {
        let obs: PauliSum = "Z0 + X0 X1".parse().unwrap();
        let a = Simulator::new(RefState::zero(2))
            .with_seed(9)
            .estimate_expectation(&ghz(2), &obs, 500)
            .unwrap();
        let b = Simulator::new(RefState::zero(2))
            .with_seed(9)
            .estimate_expectation(&ghz(2), &obs, 500)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn estimate_expectation_rejects_mid_circuit_measurements() {
        // stripping the interior measurement would silently drop its
        // dephasing; the estimator must refuse rather than answer wrong
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1)).with_seed(1);
        assert!(matches!(
            sim.estimate_expectation(&c, &"Z0".parse().unwrap(), 100),
            Err(SimError::Unsupported(_))
        ));
        // the exact path handles the same circuit
        assert!(
            sim.expectation_value(&c, &"Z0".parse().unwrap())
                .unwrap()
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn estimate_expectation_rejects_bad_inputs() {
        let sim = Simulator::new(RefState::zero(1)).with_seed(1);
        let z: PauliSum = "Z0".parse().unwrap();
        assert!(matches!(
            sim.estimate_expectation(&ghz(1), &z, 1),
            Err(SimError::Invalid(_))
        ));
        // anti-Hermitian observable (imaginary coefficient) rejected
        let i_z = z.scaled(C64::I);
        assert!(matches!(
            sim.estimate_expectation(&ghz(1), &i_z, 100),
            Err(SimError::Invalid(_))
        ));
    }
}

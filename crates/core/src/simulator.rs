//! The BGLS gate-by-gate sampling simulator (paper Secs. 2–3).
//!
//! The simulator walks the circuit one operation at a time keeping concrete
//! bitstrings that are resampled over each gate's support from bitstring
//! probabilities — never marginals. Three ingredients configure it, exactly
//! mirroring the Python package's constructor: an initial state, an
//! `apply_op` hook, and a `compute_probability` hook.
//!
//! Two execution paths:
//! * **sample-parallelized** (Sec. 3.2.3): for unitary circuits with
//!   terminal measurements the state evolves once and all repetitions ride
//!   along in a `bitstring -> multiplicity` map, split multinomially at
//!   each gate. Runtime saturates at large repetition counts (Fig. 2).
//! * **trajectories** (Sec. 3.2.1): circuits with channels, mid-circuit
//!   measurements, or stochastic apply hooks (sum-over-Cliffords) re-run
//!   per repetition, optionally across Rayon threads.

use crate::bitstring::BitString;
use crate::error::SimError;
use crate::results::RunResult;
use crate::state::BglsState;
use bgls_circuit::{Circuit, Gate, OpKind, Operation};
use bgls_linalg::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Binomial, Distribution};
use rayon::prelude::*;
use std::sync::Arc;

/// Hook applying an operation to a state (the paper's `apply_op`).
/// Receives an RNG so stochastic hooks (trajectories, sum-over-Cliffords)
/// can branch.
pub type ApplyFn<S> =
    Arc<dyn Fn(&mut S, &Operation, &mut dyn RngCore) -> Result<(), SimError> + Send + Sync>;

/// Hook computing a bitstring probability (the paper's
/// `compute_probability`).
pub type ProbFn<S> = Arc<dyn Fn(&S, BitString) -> f64 + Send + Sync>;

/// Tuning knobs for [`Simulator`].
#[derive(Clone, Debug)]
pub struct SimulatorOptions {
    /// RNG seed; `None` draws from entropy.
    pub seed: Option<u64>,
    /// Enable the multiplicity-map sample parallelization when the circuit
    /// allows it (default `true`).
    pub parallelize_samples: bool,
    /// Skip the bitstring-update step for diagonal gates, whose candidate
    /// distribution is provably unchanged. Off by default to mirror the
    /// paper; exposed for the ablation bench.
    pub skip_diagonal_updates: bool,
    /// Use Rayon to spread trajectory repetitions across threads
    /// (default `true`).
    pub parallel_trajectories: bool,
}

impl Default for SimulatorOptions {
    fn default() -> Self {
        SimulatorOptions {
            seed: None,
            parallelize_samples: true,
            skip_diagonal_updates: false,
            parallel_trajectories: true,
        }
    }
}

/// The gate-by-gate sampling simulator.
pub struct Simulator<S: BglsState> {
    initial_state: S,
    apply_op: ApplyFn<S>,
    compute_probability: ProbFn<S>,
    /// Custom apply hooks may be stochastic (e.g. sum-over-Cliffords), in
    /// which case each sample must re-run the circuit.
    stochastic_apply: bool,
    options: SimulatorOptions,
}

impl<S: BglsState> Clone for Simulator<S> {
    fn clone(&self) -> Self {
        Simulator {
            initial_state: self.initial_state.clone(),
            apply_op: self.apply_op.clone(),
            compute_probability: self.compute_probability.clone(),
            stochastic_apply: self.stochastic_apply,
            options: self.options.clone(),
        }
    }
}

impl<S: BglsState + Send + Sync> Simulator<S> {
    /// Builds a simulator with the default hooks: `apply_op` dispatches to
    /// [`BglsState::apply_gate`] / [`BglsState::apply_kraus`], and
    /// `compute_probability` to [`BglsState::probability`].
    pub fn new(initial_state: S) -> Self {
        let apply: ApplyFn<S> = Arc::new(|state, op, rng| match &op.kind {
            OpKind::Gate(g) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_gate(g, &qs)
            }
            OpKind::Channel(c) => {
                let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                state.apply_kraus(c, &qs, rng).map(|_| ())
            }
            OpKind::Measure { .. } => Ok(()), // handled by the sampler
        });
        let prob: ProbFn<S> = Arc::new(|state, bits| state.probability(bits));
        Simulator {
            initial_state,
            apply_op: apply,
            compute_probability: prob,
            stochastic_apply: false,
            options: SimulatorOptions::default(),
        }
    }

    /// Builds a simulator from explicit hooks — the paper's three-argument
    /// constructor. `stochastic_apply` must be `true` when the hook draws
    /// randomness (disables sample parallelization so each repetition
    /// explores its own branch).
    pub fn with_hooks(
        initial_state: S,
        apply_op: ApplyFn<S>,
        compute_probability: ProbFn<S>,
        stochastic_apply: bool,
    ) -> Self {
        Simulator {
            initial_state,
            apply_op,
            compute_probability,
            stochastic_apply,
            options: SimulatorOptions::default(),
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: SimulatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.options.seed = Some(seed);
        self
    }

    /// The configured initial state.
    pub fn initial_state(&self) -> &S {
        &self.initial_state
    }

    fn make_rng(&self) -> StdRng {
        match self.options.seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        }
    }

    fn check_runnable(&self, circuit: &Circuit) -> Result<(), SimError> {
        if let Some(op) = circuit.all_operations().find(|op| op.is_parameterized()) {
            // Surface the symbol name for a actionable error.
            if let Some(g) = op.as_gate() {
                g.unitary()?;
            }
        }
        if circuit.num_qubits() > self.initial_state.num_qubits() {
            return Err(SimError::QubitOutOfRange {
                index: circuit.num_qubits() - 1,
                num_qubits: self.initial_state.num_qubits(),
            });
        }
        Ok(())
    }

    /// True when this circuit can use the single-evolution multiplicity-map
    /// path.
    fn can_parallelize(&self, circuit: &Circuit) -> bool {
        self.options.parallelize_samples
            && !self.stochastic_apply
            && (!circuit.has_channels() || self.initial_state.channels_are_deterministic())
            && circuit.measurements_are_terminal()
    }

    /// Runs the circuit for `repetitions` and returns measurement
    /// histograms, Cirq-style. The circuit must contain at least one
    /// measurement.
    pub fn run(&self, circuit: &Circuit, repetitions: u64) -> Result<RunResult, SimError> {
        if !circuit.has_measurements() {
            return Err(SimError::NoMeasurements);
        }
        self.check_runnable(circuit)?;
        if repetitions == 0 {
            return Ok(RunResult::new(0));
        }
        if self.can_parallelize(circuit) {
            self.run_parallel_samples(circuit, repetitions)
        } else {
            self.run_trajectories(circuit, repetitions)
        }
    }

    /// Evolves the initial state through the circuit once (measurements
    /// skipped) and returns the final state — handy for computing ideal
    /// distributions or inspecting backends. Fails for circuits whose
    /// non-unitary operations the backend cannot apply.
    pub fn final_state(&self, circuit: &Circuit) -> Result<S, SimError> {
        self.check_runnable(circuit)?;
        let mut rng = self.make_rng();
        let mut state = self.initial_state.clone();
        for op in circuit.all_operations() {
            if op.is_measurement() {
                continue;
            }
            (self.apply_op)(&mut state, op, &mut rng)?;
        }
        Ok(state)
    }

    /// Runs a parameterized circuit once per resolver (the Cirq
    /// `run_sweep` equivalent, used by the QAOA grid search of Sec. 4.4).
    /// Returns one [`RunResult`] per resolver, in order.
    pub fn run_sweep(
        &self,
        circuit: &Circuit,
        resolvers: &[bgls_circuit::ParamResolver],
        repetitions: u64,
    ) -> Result<Vec<RunResult>, SimError> {
        resolvers
            .iter()
            .map(|r| self.run(&circuit.resolve(r), repetitions))
            .collect()
    }

    /// Samples `repetitions` bitstrings from the circuit's *final* state
    /// (measurement operations are ignored). This is the raw gate-by-gate
    /// sampler used by the overlap experiments of Figs. 4–5.
    pub fn sample_final_bitstrings(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<Vec<BitString>, SimError> {
        self.check_runnable(circuit)?;
        let stripped = circuit.without_measurements();
        let n = self.initial_state.num_qubits();
        if self.can_parallelize(&stripped) {
            let mut rng = self.make_rng();
            let map = self.evolve_multiplicity_map(&stripped, repetitions, &mut rng)?;
            let mut out = Vec::with_capacity(repetitions as usize);
            let mut entries: Vec<(BitString, u64)> = map.into_iter().collect();
            entries.sort_unstable();
            for (b, m) in entries {
                out.extend(std::iter::repeat_n(b, m as usize));
            }
            Ok(out)
        } else {
            let seed = self.sample_base_seed();
            let run_one = |rep: u64| -> Result<BitString, SimError> {
                let mut rng = rep_rng(seed, rep);
                let (b, _state) = self.trajectory_once(&stripped, n, &mut rng, None)?;
                Ok(b)
            };
            if self.options.parallel_trajectories && repetitions > 1 {
                (0..repetitions)
                    .into_par_iter()
                    .map(run_one)
                    .collect::<Result<Vec<_>, _>>()
            } else {
                (0..repetitions).map(run_one).collect()
            }
        }
    }

    fn sample_base_seed(&self) -> u64 {
        self.options
            .seed
            .unwrap_or_else(|| StdRng::from_entropy().gen())
    }

    // ---- sample-parallelized path -------------------------------------

    fn run_parallel_samples(
        &self,
        circuit: &Circuit,
        repetitions: u64,
    ) -> Result<RunResult, SimError> {
        let mut rng = self.make_rng();
        let mut result = RunResult::new(repetitions);
        let mut state = self.initial_state.clone();
        let n = self.initial_state.num_qubits();
        let mut map: FxHashMap<BitString, u64> = FxHashMap::default();
        map.insert(BitString::zeros(n), repetitions);

        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Measure { key } => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    for (b, m) in &map {
                        result.record(key, b.restrict(&qs), *m);
                    }
                }
                _ => {
                    self.step_multiplicity_map(&mut state, op, &mut map, &mut rng)?;
                }
            }
        }
        Ok(result)
    }

    /// Evolves the multiplicity map over all non-measurement operations and
    /// returns the final map.
    fn evolve_multiplicity_map(
        &self,
        circuit: &Circuit,
        repetitions: u64,
        rng: &mut StdRng,
    ) -> Result<FxHashMap<BitString, u64>, SimError> {
        let n = self.initial_state.num_qubits();
        let mut state = self.initial_state.clone();
        let mut map: FxHashMap<BitString, u64> = FxHashMap::default();
        map.insert(BitString::zeros(n), repetitions);
        for op in circuit.all_operations() {
            if op.is_measurement() {
                continue;
            }
            self.step_multiplicity_map(&mut state, op, &mut map, rng)?;
        }
        Ok(map)
    }

    /// One gate-by-gate step on the whole multiplicity map: apply the
    /// operation once, then redistribute every unique bitstring's
    /// multiplicity across its candidates.
    fn step_multiplicity_map(
        &self,
        state: &mut S,
        op: &Operation,
        map: &mut FxHashMap<BitString, u64>,
        rng: &mut StdRng,
    ) -> Result<(), SimError> {
        (self.apply_op)(state, op, rng)?;
        if self.skip_update(op) {
            return Ok(());
        }
        let support: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
        let mut next: FxHashMap<BitString, u64> = FxHashMap::default();
        next.reserve(map.len());
        let mut probs = Vec::with_capacity(1 << support.len());
        for (b, &m) in map.iter() {
            let candidates = b.candidates(&support);
            probs.clear();
            probs.extend(
                candidates
                    .iter()
                    .map(|c| (self.compute_probability)(state, *c)),
            );
            let counts = multinomial_split(m, &probs, rng)?;
            for (c, cnt) in candidates.iter().zip(&counts) {
                if *cnt > 0 {
                    *next.entry(*c).or_insert(0) += *cnt;
                }
            }
        }
        *map = next;
        Ok(())
    }

    fn skip_update(&self, op: &Operation) -> bool {
        self.options.skip_diagonal_updates && op.as_gate().map(Gate::is_diagonal).unwrap_or(false)
    }

    // ---- trajectory path ----------------------------------------------

    fn run_trajectories(&self, circuit: &Circuit, repetitions: u64) -> Result<RunResult, SimError> {
        let n = self.initial_state.num_qubits();
        let terminal = circuit.measurements_are_terminal();
        let seed = self.sample_base_seed();

        let run_one = |rep: u64| -> Result<RunResult, SimError> {
            let mut rng = rep_rng(seed, rep);
            let mut result = RunResult::new(1);
            let mut recorder = |key: &str, outcome: BitString| {
                result.record(key, outcome, 1);
            };
            self.trajectory_once_with_measure(circuit, n, &mut rng, terminal, &mut recorder)?;
            Ok(result)
        };

        if self.options.parallel_trajectories && repetitions > 1 {
            (0..repetitions)
                .into_par_iter()
                .map(run_one)
                .try_reduce(
                    || RunResult::new(0),
                    |mut a, b| {
                        a.merge(b);
                        Ok(a)
                    },
                )
                .map(|mut r| {
                    // try_reduce counts merged reps; normalize the field
                    let total = repetitions;
                    r = normalize_reps(r, total);
                    r
                })
        } else {
            let mut result = RunResult::new(0);
            for rep in 0..repetitions {
                result.merge(run_one(rep)?);
            }
            Ok(normalize_reps(result, repetitions))
        }
    }

    /// Walks the circuit once (no measurement handling), returning the final
    /// bitstring and state.
    fn trajectory_once(
        &self,
        circuit: &Circuit,
        n: usize,
        rng: &mut StdRng,
        mut bits: Option<BitString>,
    ) -> Result<(BitString, S), SimError> {
        let mut state = self.initial_state.clone();
        let b = bits.get_or_insert(BitString::zeros(n));
        for op in circuit.all_operations() {
            if op.is_measurement() {
                continue;
            }
            (self.apply_op)(&mut state, op, rng)?;
            if !self.skip_update(op) {
                *b = self.resample(&state, *b, op, rng)?;
            }
        }
        Ok((*b, state))
    }

    /// Full trajectory including measurement recording and (when needed)
    /// collapse.
    fn trajectory_once_with_measure(
        &self,
        circuit: &Circuit,
        n: usize,
        rng: &mut StdRng,
        terminal: bool,
        record: &mut dyn FnMut(&str, BitString),
    ) -> Result<(), SimError> {
        let mut state = self.initial_state.clone();
        let mut b = BitString::zeros(n);
        for op in circuit.all_operations() {
            match &op.kind {
                OpKind::Measure { key } => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    record(key, b.restrict(&qs));
                    if !terminal {
                        // Collapse so later gates see the post-measurement
                        // state of this trajectory.
                        for &q in &qs {
                            state.project(q, b.get(q))?;
                        }
                    }
                }
                _ => {
                    (self.apply_op)(&mut state, op, rng)?;
                    if !self.skip_update(op) {
                        b = self.resample(&state, b, op, rng)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The core gate-by-gate update: resample the bitstring over the
    /// operation's support from the current state's candidate
    /// probabilities.
    fn resample(
        &self,
        state: &S,
        b: BitString,
        op: &Operation,
        rng: &mut StdRng,
    ) -> Result<BitString, SimError> {
        let support: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
        let candidates = b.candidates(&support);
        let probs: Vec<f64> = candidates
            .iter()
            .map(|c| (self.compute_probability)(state, *c))
            .collect();
        let idx = categorical(&probs, rng)?;
        Ok(candidates[idx])
    }
}

fn normalize_reps(mut r: RunResult, total: u64) -> RunResult {
    // merge() accumulates per-rep counts; rebuild with the true repetition
    // count for reporting.
    let mut out = RunResult::new(total);
    for key in r.keys().into_iter().map(str::to_string).collect::<Vec<_>>() {
        if let Some(h) = r.histogram(&key) {
            for (bits, count) in h.iter_sorted() {
                out.record(&key, bits, count);
            }
        }
    }
    let _ = &mut r;
    out
}

/// Per-repetition RNG derived from a base seed (SplitMix-style stream
/// separation so parallel trajectories are independent yet reproducible).
fn rep_rng(seed: u64, rep: u64) -> StdRng {
    let mut z = seed ^ rep.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Draws an index from unnormalized non-negative weights.
pub fn categorical(weights: &[f64], rng: &mut impl Rng) -> Result<usize, SimError> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() || !total.is_finite() {
        return Err(SimError::ZeroProbabilityEvent);
    }
    let mut r = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return Ok(i);
        }
        r -= w;
    }
    // floating point slack: return the last positive-weight index
    weights
        .iter()
        .rposition(|&w| w > 0.0)
        .ok_or(SimError::ZeroProbabilityEvent)
}

/// Splits `m` trials across categories with the given unnormalized weights,
/// exactly equivalent in distribution to `m` independent categorical draws
/// (chained binomials). This is the multiplicity-map redistribution step.
pub fn multinomial_split(
    m: u64,
    weights: &[f64],
    rng: &mut impl Rng,
) -> Result<Vec<u64>, SimError> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || total.is_nan() || !total.is_finite() {
        return Err(SimError::ZeroProbabilityEvent);
    }
    let mut counts = vec![0u64; weights.len()];
    let mut remaining = m;
    let mut mass_left = total;
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if i == weights.len() - 1 {
            counts[i] = remaining;
            break;
        }
        let p = (w / mass_left).clamp(0.0, 1.0);
        let draw = if p >= 1.0 {
            remaining
        } else if p <= 0.0 {
            0
        } else {
            Binomial::new(remaining, p)
                .map_err(|_| SimError::ZeroProbabilityEvent)?
                .sample(rng)
        };
        counts[i] = draw;
        remaining -= draw;
        mass_left -= w;
        if mass_left <= 0.0 {
            // numerical underflow: dump the rest in this bin
            counts[i] += remaining;
            remaining = 0;
        }
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::testing::RefState;
    use bgls_circuit::{Channel, Gate, Operation, Qubit};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        for i in 1..n {
            c.push(
                Operation::gate(Gate::Cnot, vec![Qubit(i as u32 - 1), Qubit(i as u32)]).unwrap(),
            );
        }
        c.push(Operation::measure(Qubit::range(n), "z").unwrap());
        c
    }

    #[test]
    fn run_requires_measurement() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1));
        assert!(matches!(sim.run(&c, 10), Err(SimError::NoMeasurements)));
    }

    #[test]
    fn ghz_samples_only_all_zero_or_all_one() {
        let sim = Simulator::new(RefState::zero(3)).with_seed(7);
        let result = sim.run(&ghz(3), 1000).unwrap();
        let h = result.histogram("z").unwrap();
        assert_eq!(h.total(), 1000);
        let zeros = h.count_value(0b000);
        let ones = h.count_value(0b111);
        assert_eq!(zeros + ones, 1000, "only GHZ outcomes allowed");
        // both branches occur with ~50%: loose 5-sigma bound
        assert!(zeros > 380 && zeros < 620, "zeros = {zeros}");
    }

    #[test]
    fn trajectory_path_matches_parallel_path_distribution() {
        let c = ghz(2);
        let par = Simulator::new(RefState::zero(2)).with_seed(1);
        let mut opts = SimulatorOptions {
            parallelize_samples: false,
            seed: Some(2),
            ..Default::default()
        };
        opts.parallel_trajectories = false;
        let traj = Simulator::new(RefState::zero(2)).with_options(opts);
        let hp = par.run(&c, 2000).unwrap();
        let ht = traj.run(&c, 2000).unwrap();
        let fp = hp
            .histogram("z")
            .unwrap()
            .frequency(BitString::from_u64(2, 0));
        let ft = ht
            .histogram("z")
            .unwrap()
            .frequency(BitString::from_u64(2, 0));
        assert!((fp - 0.5).abs() < 0.05, "parallel freq {fp}");
        assert!((ft - 0.5).abs() < 0.05, "trajectory freq {ft}");
    }

    #[test]
    fn deterministic_with_seed() {
        let c = ghz(3);
        let r1 = Simulator::new(RefState::zero(3))
            .with_seed(99)
            .run(&c, 100)
            .unwrap();
        let r2 = Simulator::new(RefState::zero(3))
            .with_seed(99)
            .run(&c, 100)
            .unwrap();
        assert_eq!(
            r1.histogram("z").unwrap().count_value(0),
            r2.histogram("z").unwrap().count_value(0)
        );
    }

    #[test]
    fn x_gates_give_deterministic_bitstring() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::X, vec![Qubit(2)]).unwrap());
        c.push(Operation::measure(Qubit::range(3), "m").unwrap());
        let sim = Simulator::new(RefState::zero(3)).with_seed(3);
        let h = sim.run(&c, 50).unwrap();
        assert_eq!(h.histogram("m").unwrap().count_value(0b101), 50);
    }

    #[test]
    fn sample_final_bitstrings_without_measurement() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        let sim = Simulator::new(RefState::zero(1)).with_seed(5);
        let samples = sim.sample_final_bitstrings(&c, 500).unwrap();
        assert_eq!(samples.len(), 500);
        let ones = samples.iter().filter(|b| b.get(0)).count();
        assert!(ones > 180 && ones < 320, "ones = {ones}");
    }

    #[test]
    fn measurement_key_restricts_to_listed_qubits() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        // measure only qubit 1, key "one"
        c.push(Operation::measure(vec![Qubit(1)], "one").unwrap());
        let sim = Simulator::new(RefState::zero(2)).with_seed(1);
        let r = sim.run(&c, 10).unwrap();
        let h = r.histogram("one").unwrap();
        assert_eq!(h.width(), 1);
        assert_eq!(h.count_value(1), 10);
    }

    #[test]
    fn noisy_circuit_uses_trajectories_and_flips_sometimes() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.3).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(11),
            parallel_trajectories: false,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 2000).unwrap();
        let flips = r.histogram("m").unwrap().count_value(1);
        // expect ~600
        assert!(flips > 450 && flips < 750, "flips = {flips}");
    }

    #[test]
    fn parallel_trajectories_match_sequential_statistics() {
        let mut c = Circuit::new();
        c.push(Operation::channel(Channel::bit_flip(0.5).unwrap(), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(21),
            parallel_trajectories: true,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 4000).unwrap();
        assert_eq!(r.repetitions(), 4000);
        let h = r.histogram("m").unwrap();
        assert_eq!(h.total(), 4000);
        let ones = h.count_value(1);
        assert!(ones > 1800 && ones < 2200, "ones = {ones}");
    }

    #[test]
    fn mid_circuit_measurement_collapses_state() {
        // H(0); measure(0); CNOT(0 -> 1); measure(1): outcomes must agree.
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "a").unwrap());
        c.push(Operation::gate(Gate::Cnot, vec![Qubit(0), Qubit(1)]).unwrap());
        c.push(Operation::measure(vec![Qubit(1)], "b").unwrap());
        let opts = SimulatorOptions {
            seed: Some(8),
            parallel_trajectories: false,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(2)).with_options(opts);
        let r = sim.run(&c, 400).unwrap();
        let a1 = r.histogram("a").unwrap().count_value(1);
        let b1 = r.histogram("b").unwrap().count_value(1);
        assert_eq!(a1, b1, "mid-circuit collapse must correlate a and b");
        assert!(a1 > 140 && a1 < 260);
    }

    #[test]
    fn skip_diagonal_updates_preserves_distribution() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::T, vec![Qubit(0)]).unwrap());
        c.push(Operation::gate(Gate::H, vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let opts = SimulatorOptions {
            seed: Some(17),
            skip_diagonal_updates: true,
            ..Default::default()
        };
        let sim = Simulator::new(RefState::zero(1)).with_options(opts);
        let r = sim.run(&c, 4000).unwrap();
        // P(0) = cos^2(pi/8) ~= 0.8536
        let f0 = r.histogram("m").unwrap().frequency(BitString::zeros(1));
        assert!((f0 - 0.8536).abs() < 0.03, "f0 = {f0}");
    }

    #[test]
    fn final_state_evolves_without_sampling() {
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::X, vec![Qubit(1)]).unwrap());
        c.push(Operation::measure(Qubit::range(2), "z").unwrap());
        let sim = Simulator::new(RefState::zero(2)).with_seed(1);
        let st = sim.final_state(&c).unwrap();
        assert!((st.probability(BitString::from_u64(2, 0b10)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn run_sweep_resolves_each_point() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rx(Param::symbol("t")), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let resolvers = [
            ParamResolver::from_pairs([("t", 0.0)]),
            ParamResolver::from_pairs([("t", std::f64::consts::PI)]),
        ];
        let sim = Simulator::new(RefState::zero(1)).with_seed(2);
        let results = sim.run_sweep(&c, &resolvers, 100).unwrap();
        assert_eq!(results.len(), 2);
        // t = 0: always 0; t = pi: always 1
        assert_eq!(results[0].histogram("m").unwrap().count_value(0), 100);
        assert_eq!(results[1].histogram("m").unwrap().count_value(1), 100);
    }

    #[test]
    fn run_sweep_fails_on_unbound_symbol() {
        use bgls_circuit::{Param, ParamResolver};
        let mut c = Circuit::new();
        c.push(Operation::gate(Gate::Rz(Param::symbol("x")), vec![Qubit(0)]).unwrap());
        c.push(Operation::measure(vec![Qubit(0)], "m").unwrap());
        let sim = Simulator::new(RefState::zero(1));
        let err = sim.run_sweep(&c, &[ParamResolver::new()], 5);
        assert!(matches!(err, Err(SimError::Circuit(_))));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = [0u32; 3];
        for _ in 0..30000 {
            counts[categorical(&[1.0, 2.0, 1.0], &mut rng).unwrap()] += 1;
        }
        assert!((counts[1] as f64 / 30000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn categorical_zero_total_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(matches!(
            categorical(&[0.0, 0.0], &mut rng),
            Err(SimError::ZeroProbabilityEvent)
        ));
    }

    #[test]
    fn multinomial_split_conserves_total() {
        let mut rng = StdRng::seed_from_u64(0);
        for m in [0u64, 1, 17, 1000, 123456] {
            let counts = multinomial_split(m, &[0.1, 0.4, 0.3, 0.2], &mut rng).unwrap();
            assert_eq!(counts.iter().sum::<u64>(), m);
        }
    }

    #[test]
    fn multinomial_split_matches_expectation() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = multinomial_split(1_000_000, &[1.0, 3.0], &mut rng).unwrap();
        let f = counts[0] as f64 / 1e6;
        assert!((f - 0.25).abs() < 0.005, "f = {f}");
    }

    #[test]
    fn multinomial_with_zero_weight_bins() {
        let mut rng = StdRng::seed_from_u64(4);
        let counts = multinomial_split(1000, &[0.0, 1.0, 0.0], &mut rng).unwrap();
        assert_eq!(counts, vec![0, 1000, 0]);
    }

    #[test]
    fn run_zero_repetitions_is_empty() {
        let sim = Simulator::new(RefState::zero(2));
        let r = sim.run(&ghz(2), 0).unwrap();
        assert_eq!(r.repetitions(), 0);
    }

    #[test]
    fn circuit_wider_than_state_rejected() {
        let sim = Simulator::new(RefState::zero(1));
        assert!(matches!(
            sim.run(&ghz(3), 5),
            Err(SimError::QubitOutOfRange { .. })
        ));
    }

    #[test]
    fn custom_probability_hook_is_used() {
        // A hook that inverts probabilities would break GHZ correlations;
        // here we just count invocations to prove the hook wiring.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        let state = RefState::zero(2);
        let apply: ApplyFn<RefState> = Arc::new(|s, op, rng| {
            let default = Simulator::new(s.clone());
            let _ = default; // the default hook body, inlined:
            match &op.kind {
                OpKind::Gate(g) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    s.apply_gate(g, &qs)
                }
                OpKind::Channel(c) => {
                    let qs: Vec<usize> = op.support().iter().map(|q| q.index()).collect();
                    s.apply_kraus(c, &qs, rng).map(|_| ())
                }
                OpKind::Measure { .. } => Ok(()),
            }
        });
        let prob: ProbFn<RefState> = Arc::new(|s, b| {
            CALLS.fetch_add(1, Ordering::Relaxed);
            s.probability(b)
        });
        let sim = Simulator::with_hooks(state, apply, prob, false).with_seed(1);
        let _ = sim.run(&ghz(2), 10).unwrap();
        assert!(CALLS.load(Ordering::Relaxed) > 0);
    }
}
